"""Setup shim for offline editable installs (no `wheel` package available).

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works in the
network-less environment this repository targets.
"""

from setuptools import setup

setup()
