"""Table III — Helpfulness of Lectures and Tutorials (1-4).

Paper:

    Lecture                  3±0.9
    In-class lab             3.6±0.7
    Hadoop cluster tutorial  2.9±0.82

Shape claim: "the students favored the in-class labs over the
lectures" — the ordering lab > lecture > tutorial must reproduce.
"""

from benchmarks.conftest import banner, show
from repro.survey.dataset import synthesize_responses
from repro.survey.stats import summarize_responses
from repro.survey.tables import table3_helpfulness

TOLERANCE = 0.05


def bench_table3_helpfulness(benchmark):
    responses = benchmark(synthesize_responses, seed=2013)
    table, deviations = table3_helpfulness(responses)
    banner("Table III: Helpfulness of Lectures and Tutorials — reproduced")
    show(table.render())
    show(f"max deviation: {max(deviations.values()):.4f}")
    assert max(deviations.values()) < TOLERANCE

    summary = summarize_responses(responses)
    lab = summary["usefulness"]["In-class lab"][0]
    lecture = summary["usefulness"]["Lecture"][0]
    tutorial = summary["usefulness"]["Hadoop cluster tutorial"][0]
    assert lab > lecture >= tutorial
