"""Ablation A1 — rack-aware replica placement vs. uniform random.

The HDFS lecture teaches Hadoop's default placement (writer-local,
off-rack second, same-remote-rack third).  This ablation removes the
policy and places replicas uniformly at random, then measures what the
policy actually buys on a two-rack cluster:

- *write traffic*: default placement crosses racks once per block
  (2nd replica) instead of a random number of times;
- *map locality*: the writer-local replica makes node-local maps easy.
"""

from benchmarks.conftest import banner, show
from repro.cluster.builder import build_hadoop_cluster
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.hdfs.placement import ReplicaPlacementPolicy
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.util.textable import TextTable


class RandomPlacementPolicy(ReplicaPlacementPolicy):
    """The ablated policy: uniform random distinct nodes."""

    def choose_targets(self, num_replicas, candidates, writer=None, exclude=()):
        excluded = set(exclude)
        pool = [c for c in candidates if c not in excluded]
        targets = []
        while pool and len(targets) < num_replicas:
            pick = self.rng.choice(pool)
            targets.append(pick)
            pool.remove(pick)
        return targets


def _run(policy_cls):
    hardware = build_hadoop_cluster(num_workers=8, nodes_per_rack=4)
    cluster = MapReduceCluster(
        hardware=hardware,
        hdfs_config=HdfsConfig(block_size=8 * 1024, replication=3),
        seed=31,
    )
    namenode = cluster.hdfs.namenode
    namenode.placement = policy_cls(
        cluster.hdfs.topology, cluster.hdfs.rng.child("ablation")
    )
    client = cluster.client(node="node0")
    client.put_text("/data/in.txt", "hadoop scale " * 8000)
    write_traffic = dict(cluster.hdfs.network.counters.as_dict())
    report = cluster.run_job(
        WordCountWithCombinerJob(), "/data/in.txt", "/out",
        require_success=True,
    )
    return write_traffic, report


def bench_ablation_placement(benchmark):
    results = benchmark.pedantic(
        lambda: (_run(ReplicaPlacementPolicy), _run(RandomPlacementPolicy)),
        rounds=1,
        iterations=1,
    )
    (default_traffic, default_report), (random_traffic, random_report) = results
    banner("Ablation A1: rack-aware placement vs uniform random "
           "(8 nodes / 2 racks, replication 3)")
    table = TextTable(
        ["Policy", "Write off-rack bytes", "Data-local maps", "Off-rack maps"]
    )
    table.add_row(
        ["rack-aware (default)", default_traffic["off_rack"],
         default_report.data_local_maps, default_report.off_rack_maps]
    )
    table.add_row(
        ["uniform random", random_traffic["off_rack"],
         random_report.data_local_maps, random_report.off_rack_maps]
    )
    show(table.render())
    show("rack-aware placement writes exactly one cross-rack copy per "
         "block; random placement crosses ~1.7x per block on 2 racks")

    # Rack-aware: exactly one off-rack hop per block's pipeline, so the
    # random policy must cost measurably more cross-rack write traffic.
    assert default_traffic["off_rack"] < random_traffic["off_rack"]
    assert random_traffic["off_rack"] >= 1.2 * default_traffic["off_rack"]
    # With three replicas on eight nodes, both policies let the
    # scheduler keep every map at worst rack-local.
    assert default_report.off_rack_maps == 0
    assert (
        default_report.data_local_maps + default_report.rack_local_maps
        == default_report.num_maps
    )
