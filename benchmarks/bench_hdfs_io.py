"""HDFS data-path benchmark — chunk memos + block cache vs re-CRC-everything.

The pre-PR data path re-checksummed entire blocks on every read and
every block report, and continuation probes fetched *whole* blocks to
peel an 8 KB prefix.  The rebuilt path checks each chunk's CRC at most
once (verified memo), serves repeated reads from a generation-keyed
block cache, and reads ranges.  Four rows price the old path against
the new on the same simulated cluster:

- ``cold_read``     first-ever read of a course file
- ``warm_reread``   the same file read five more times
- ``block_report``  repeated ``send_block_report`` on a loaded DataNode
- ``classroom``     the paper's workload shape: the same course dataset,
                    five wordcount jobs back to back

The first three rows flip only ``HdfsConfig`` knobs
(``checksum_memo=False`` + ``block_cache_bytes=0`` is the pre-memo
verifier), so their simulated clocks are asserted identical — the
speedup must be host-side only.  The classroom row additionally
restores the seed's whole-block continuation probes in the old arm
(ranged reads are part of this PR, and knobs alone cannot un-ship
them); there the two arms legitimately disagree on simulated
bytes-read, so the row asserts identical job *outputs* instead, and
the bit-identical cache-on/off property lives in
``tests/properties/test_hdfs_datapath.py``.

The classroom row's headline speedup is the workload's *data-path
seconds* — host time inside ``BlockFetcher.read_block`` — because
map/shuffle Python is identical in both arms and caps the end-to-end
ratio (Amdahl: zlib's CRC runs ~15x faster per byte than the cheapest
possible tokenisation, so even a 5x data-path win moves total wall
clock by ~1.4x).  Both numbers are reported.

The >=2x wall-clock assertions (warm re-read, classroom) are CPU-bound,
not parallelism-bound, so they run in full mode on any host; quick mode
(``--quick`` / ``REPRO_BENCH_QUICK=1``) shrinks the data and keeps the
identity checks only.

Writes ``BENCH_hdfs_io.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import banner, quick_mode, show
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce import blockio
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import perf_stats
from repro.util.rng import RngStream

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_hdfs_io.json"

#: The two HdfsConfig shapes under test (block size et al. filled per row).
NEW_PATH = dict(checksum_memo=True, block_cache_bytes=256 * 1024 * 1024)
OLD_PATH = dict(checksum_memo=False, block_cache_bytes=0)

WARM_READS = 5
CLASSROOM_JOBS = 5
REPORT_ROUNDS = 20


def _long_line_corpus(
    nbytes: int, min_words: int, max_words: int, seed: int = 7
) -> str:
    """Course-dataset stand-in with few, long words and long *lines*:
    the byte volume of a real corpus without drowning the storage layer
    in per-record map-side Python (PRs 1/4 already benchmarked that
    side).  Records longer than a block — log archives, serialized
    feature rows — are exactly where the seed's continuation probes
    re-fetched whole blocks over and over; randomised line lengths keep
    block boundaries from accidentally landing next to a newline."""
    rng = RngStream(seed).child("bench-hdfs-io")
    vocab = [
        "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(8)) * 2048
        for _ in range(40)
    ]
    word_counts = list(range(min_words, max_words + 1))
    lines: list[str] = []
    size = 0
    while size < nbytes:
        line = " ".join(
            rng.choice(vocab) for _ in range(rng.choice(word_counts))
        )
        lines.append(line)
        size += len(line) + 1
    return "\n".join(lines) + "\n"


class _instrumented_reads:
    """Times every ``BlockFetcher.read_block`` call (the workload's
    HDFS data-path seconds), optionally restoring the seed's read
    semantics: every ranged request fetches — and re-verifies — the
    whole block, then slices the prefix.  That whole-block mode is the
    pre-PR data path the classroom row prices against."""

    def __init__(self, seed_semantics: bool):
        self.seed_semantics = seed_semantics
        self.seconds = 0.0

    def __enter__(self):
        real = blockio.BlockFetcher.read_block
        self._real = real
        seed_semantics = self.seed_semantics

        def timed_read(fetcher, path, block_index, node, max_bytes=None, offset=0):
            start = time.perf_counter()
            try:
                if not seed_semantics:
                    return real(fetcher, path, block_index, node, max_bytes, offset)
                read = real(fetcher, path, block_index, node)
                data = read.data
                if offset:
                    data = data[offset:]
                if max_bytes is not None:
                    data = data[:max_bytes]
                read.data = data
                return read
            finally:
                self.seconds += time.perf_counter() - start

        blockio.BlockFetcher.read_block = timed_read
        return self

    def __exit__(self, *exc):
        blockio.BlockFetcher.read_block = self._real


# ---------------------------------------------------------------------------
# rows 1 + 2: cold read / warm re-read through DFSClient


def _read_rows(file_bytes: int, block_size: int, mode: dict) -> dict:
    config = HdfsConfig(
        block_size=block_size, replication=2, checksum_chunk_size=64 * 1024, **mode
    )
    cluster = HdfsCluster(num_datanodes=3, config=config, seed=17)
    client = cluster.client(node="node0")
    payload = b"\xa5" * file_bytes
    client.put_bytes("/bench/data.bin", payload)

    start = time.perf_counter()
    first = client.read_bytes("/bench/data.bin")
    cold = time.perf_counter() - start
    assert first.data == payload

    start = time.perf_counter()
    for _ in range(WARM_READS):
        warm_result = client.read_bytes("/bench/data.bin")
    warm = time.perf_counter() - start
    assert warm_result.data == payload

    return {
        "cold_wall_seconds": cold,
        "warm_wall_seconds": warm,
        "sim_elapsed_per_read": first.elapsed,
        "cache": {
            name: dn.cache.stats() for name, dn in sorted(cluster.datanodes.items())
        },
    }


# ---------------------------------------------------------------------------
# row 3: block reports, chunk-memo walk vs whole-block re-CRC


def _report_row(file_bytes: int, block_size: int, mode: dict) -> dict:
    config = HdfsConfig(
        block_size=block_size, replication=1, checksum_chunk_size=64 * 1024, **mode
    )
    cluster = HdfsCluster(num_datanodes=2, config=config, seed=17)
    cluster.client(node="node0").put_bytes("/bench/data.bin", b"\x5a" * file_bytes)
    loaded = max(cluster.datanodes.values(), key=lambda dn: dn.used_bytes)
    start = time.perf_counter()
    for _ in range(REPORT_ROUNDS):
        loaded.send_block_report()
    wall = time.perf_counter() - start
    return {
        "report_rounds": REPORT_ROUNDS,
        "blocks_reported": len(loaded.blocks),
        "bytes_held": loaded.used_bytes,
        "wall_seconds": wall,
    }


# ---------------------------------------------------------------------------
# row 4: five wordcount jobs over the same course dataset


def _classroom_row(corpus: str, block_size: int, mode: dict) -> dict:
    hdfs_config = HdfsConfig(block_size=block_size, replication=2, **mode)
    perf = perf_stats()
    with MapReduceCluster(num_workers=4, seed=11, hdfs_config=hdfs_config) as mr:
        mr.client().put_text("/course/corpus.txt", corpus)
        start = time.perf_counter()
        outputs = []
        for run in range(CLASSROOM_JOBS):
            job = WordCountWithCombinerJob(JobConf(name=f"wc{run}", num_reduces=2))
            mr.run_job(job, "/course", f"/out{run}", require_success=True)
            outputs.append(tuple(sorted(mr.read_output(f"/out{run}"))))
        wall = time.perf_counter() - start
        cache_stats = {
            name: dn.cache.stats()
            for name, dn in sorted(mr.hdfs.datanodes.items())
        }
        for stats in cache_stats.values():
            perf.hdfs_cache_hits += stats["hits"]
            perf.hdfs_cache_misses += stats["misses"]
            perf.hdfs_cache_evictions += stats["evictions"]
        return {
            "jobs": CLASSROOM_JOBS,
            "wall_seconds": wall,
            "outputs": outputs,
            "cache": cache_stats,
        }


# ---------------------------------------------------------------------------


def _experiment(quick: bool) -> dict:
    if quick:
        file_bytes, block_size = 2 * 1024 * 1024, 4 * 1024 * 1024
        corpus_bytes, mr_block = 256 * 1024, 64 * 1024
        min_words, max_words = 4, 8  # ~64-130 KB lines over 64 KB blocks
    else:
        file_bytes, block_size = 48 * 1024 * 1024, 64 * 1024 * 1024
        corpus_bytes, mr_block = 32 * 1024 * 1024, 2 * 1024 * 1024
        min_words, max_words = 256, 384  # ~4-6 MB lines over 2 MB blocks

    corpus = _long_line_corpus(corpus_bytes, min_words, max_words)
    rows: dict[str, dict] = {}

    new_read = _read_rows(file_bytes, block_size, NEW_PATH)
    old_read = _read_rows(file_bytes, block_size, OLD_PATH)
    assert new_read["sim_elapsed_per_read"] == old_read["sim_elapsed_per_read"], (
        "cache/memo moved simulated read time"
    )
    rows["cold_read"] = {
        "file_bytes": file_bytes,
        "block_size": block_size,
        "new_wall_seconds": new_read["cold_wall_seconds"],
        "old_wall_seconds": old_read["cold_wall_seconds"],
        "speedup": old_read["cold_wall_seconds"]
        / max(new_read["cold_wall_seconds"], 1e-9),
    }
    rows["warm_reread"] = {
        "file_bytes": file_bytes,
        "reads": WARM_READS,
        "new_wall_seconds": new_read["warm_wall_seconds"],
        "old_wall_seconds": old_read["warm_wall_seconds"],
        "speedup": old_read["warm_wall_seconds"]
        / max(new_read["warm_wall_seconds"], 1e-9),
        "new_cache": new_read["cache"],
    }

    new_report = _report_row(file_bytes, block_size, NEW_PATH)
    old_report = _report_row(file_bytes, block_size, OLD_PATH)
    assert new_report["blocks_reported"] == old_report["blocks_reported"]
    rows["block_report"] = {
        "rounds": REPORT_ROUNDS,
        "blocks": new_report["blocks_reported"],
        "bytes_held": new_report["bytes_held"],
        "chunked_memo_wall_seconds": new_report["wall_seconds"],
        "whole_block_wall_seconds": old_report["wall_seconds"],
        "speedup": old_report["wall_seconds"]
        / max(new_report["wall_seconds"], 1e-9),
    }

    with _instrumented_reads(seed_semantics=False) as new_reads:
        new_class = _classroom_row(corpus, mr_block, NEW_PATH)
    with _instrumented_reads(seed_semantics=True) as old_reads:
        old_class = _classroom_row(corpus, mr_block, OLD_PATH)
    assert new_class["outputs"] == old_class["outputs"], (
        "data path changed job outputs"
    )
    rows["classroom"] = {
        "jobs": CLASSROOM_JOBS,
        "corpus_bytes": len(corpus),
        "block_size": mr_block,
        "new_wall_seconds": new_class["wall_seconds"],
        "old_wall_seconds": old_class["wall_seconds"],
        "wall_speedup": old_class["wall_seconds"]
        / max(new_class["wall_seconds"], 1e-9),
        "new_datapath_seconds": new_reads.seconds,
        "old_datapath_seconds": old_reads.seconds,
        "speedup": old_reads.seconds / max(new_reads.seconds, 1e-9),
        "cache_hits": sum(s["hits"] for s in new_class["cache"].values()),
        "cache_misses": sum(s["misses"] for s in new_class["cache"].values()),
        "note": (
            "old arm = checksum_memo off, cache off, whole-block probes; "
            "speedup is the workload's HDFS data-path seconds (time inside "
            "BlockFetcher.read_block) — map/shuffle Python, identical in "
            "both arms, caps the end-to-end ratio at wall_speedup (Amdahl)"
        ),
    }

    payload = {
        "benchmark": "hdfs_io",
        "quick": quick,
        "identity_checks": {
            "read_rows_sim_time_identical": True,
            "classroom_outputs_identical": True,
        },
        "rows": rows,
    }
    if not quick:
        RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_hdfs_io(benchmark, request):
    quick = quick_mode(request)
    payload = benchmark.pedantic(_experiment, args=(quick,), rounds=1, iterations=1)
    banner("HDFS data path: chunk memos + block cache vs re-CRC-everything")
    rows = payload["rows"]
    for name in ("cold_read", "warm_reread", "block_report"):
        row = rows[name]
        old = row.get("old_wall_seconds", row.get("whole_block_wall_seconds"))
        new = row.get("new_wall_seconds", row.get("chunked_memo_wall_seconds"))
        show(
            f"{name:14s} old {old * 1000:9.1f} ms   new {new * 1000:9.1f} ms"
            f"   {row['speedup']:6.2f}x"
        )
    cls = rows["classroom"]
    show(
        f"{'classroom':14s} old {cls['old_datapath_seconds'] * 1000:9.1f} ms"
        f"   new {cls['new_datapath_seconds'] * 1000:9.1f} ms"
        f"   {cls['speedup']:6.2f}x  (data-path seconds; "
        f"end-to-end {cls['wall_speedup']:.2f}x)"
    )
    show(
        f"\nclassroom cache: {cls['cache_hits']} hits / "
        f"{cls['cache_misses']} misses over {cls['jobs']} jobs"
    )
    show("sim read clocks identical, job outputs identical: True")

    if quick:
        show("quick mode: timing assertions skipped (identity only)")
        return
    assert rows["warm_reread"]["speedup"] >= 2.0, (
        f"warm re-read only {rows['warm_reread']['speedup']:.2f}x"
    )
    assert rows["classroom"]["speedup"] >= 2.0, (
        f"classroom workload only {rows['classroom']['speedup']:.2f}x"
    )
    show(f"results written to {RESULT_FILE.name}")
