"""Figure 1 — HPC (compute/storage separated) vs Hadoop (co-located).

The paper's Figure 1 is an architecture diagram; its claim is why the
module exists: "the typical computation/storage cluster architecture of
supercomputing clusters sometimes fails to support data-intensive
computing".  This benchmark makes the diagram quantitative: a full-scan
workload swept over node counts on both architectures.

Expected shape:
- the Hadoop curve scales ~linearly (every node brings a disk);
- the HPC curve flattens at the parallel store's saturation point
  (aggregate backbone / per-client NIC = 32 clients here);
- past saturation, co-located storage wins by a growing factor.
"""

from benchmarks.conftest import banner, show
from repro.core.figures import figure1_scan_sweep
from repro.util.textable import TextTable
from repro.util.units import format_duration


def bench_figure1_architecture(benchmark):
    sweep = benchmark(figure1_scan_sweep)
    banner("Figure 1: scan time of 10 TB, HPC vs Hadoop architecture")
    table = TextTable(
        ["Nodes", "HPC (central storage)", "Hadoop (data-local)", "Speedup"]
    )
    for point in sweep:
        table.add_row(
            [
                point.num_nodes,
                format_duration(point.hpc_seconds),
                format_duration(point.hadoop_seconds),
                f"{point.hadoop_speedup:.1f}x",
            ]
        )
    show(table.render())

    by_n = {p.num_nodes: p for p in sweep}
    # Hadoop scales ~linearly with nodes.
    assert by_n[128].hadoop_seconds < by_n[4].hadoop_seconds / 25
    # HPC stops improving at the backbone saturation point (32 clients).
    assert by_n[128].hpc_seconds > by_n[32].hpc_seconds * 0.99
    # The crossover: beyond saturation Hadoop wins by a growing factor.
    assert by_n[32].hadoop_speedup < by_n[64].hadoop_speedup < (
        by_n[128].hadoop_speedup
    )
    assert by_n[128].hadoop_speedup > 2.0
