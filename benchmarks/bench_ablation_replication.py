"""Ablation A3 — replication factor vs durability under node loss.

Replication 3 is the HDFS default the course teaches; this ablation
quantifies why.  For each replication factor, kill k of 8 DataNodes
simultaneously (before re-replication can react) and count missing
blocks.  Storage cost is the other axis of the trade-off.
"""

from benchmarks.conftest import banner, show
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.util.rng import RngStream
from repro.util.textable import TextTable

NUM_BLOCKS = 60
NODES = 8


def _loss_after_failures(replication: int, failures: int, seed: int) -> tuple:
    cluster = HdfsCluster(
        num_datanodes=NODES,
        config=HdfsConfig(
            block_size=1024,
            replication=replication,
            # Freeze the repair machinery: we measure the instantaneous
            # exposure window, before re-replication reacts.
            replication_check_interval=10**9,
        ),
        seed=seed,
    )
    client = cluster.client()
    client.put_bytes("/data/file.bin", b"\xab" * (NUM_BLOCKS * 1024))
    stored = cluster.total_stored_bytes()
    rng = RngStream(seed).child("kill")
    victims = list(cluster.datanodes)
    rng.shuffle(victims)
    for name in victims[:failures]:
        cluster.crash_datanode(name)
    cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
    missing = len(cluster.namenode.missing_blocks())
    return missing, stored


def _sweep():
    rows = []
    for replication in (1, 2, 3):
        for failures in (1, 2):
            # Average over a few placements.
            losses = [
                _loss_after_failures(replication, failures, seed)[0]
                for seed in (1, 2, 3)
            ]
            _, stored = _loss_after_failures(replication, failures, 1)
            rows.append(
                (replication, failures, sum(losses) / len(losses), stored)
            )
    return rows


def bench_ablation_replication(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    banner(f"Ablation A3: replication vs durability "
           f"({NUM_BLOCKS} blocks on {NODES} nodes, simultaneous failures)")
    table = TextTable(
        ["Replication", "Nodes killed", "Avg missing blocks", "Bytes stored"]
    )
    for replication, failures, missing, stored in rows:
        table.add_row([replication, failures, f"{missing:.1f}", stored])
    show(table.render())
    show("replication 3 pays 3x storage and survives any two-node loss; "
         "replication 1 loses ~1/8 of the data per dead node")

    by_key = {(r, f): m for r, f, m, _ in rows}
    # More replication, less loss — monotone in both axes.
    assert by_key[(1, 1)] > 0
    assert by_key[(1, 2)] > by_key[(1, 1)] * 1.5
    assert by_key[(2, 1)] == 0
    assert by_key[(2, 2)] >= 0
    assert by_key[(3, 1)] == 0
    assert by_key[(3, 2)] == 0  # the default survives two failures
    # Storage scales linearly with replication.
    stored = {r: s for r, _f, _m, s in rows}
    assert stored[3] == 3 * stored[1]
