"""Table V — ACM/IEEE PDC learning outcomes the module covers.

The paper maps six knowledge units (at Familiarity/Usage/Assessment
levels) to the module's lectures and assignments.  The reproduction
regenerates the table and *executes* the coverage: every outcome's
implementing artifact in this repository must resolve, and the module
versions must actually contain lectures/assignments touching each
knowledge unit's topic.
"""

from benchmarks.conftest import banner, show
from repro.core.module import MODULE_VERSIONS
from repro.survey.curriculum import (
    TABLE5_OUTCOMES,
    curriculum_table,
    validate_coverage,
)


def bench_table5_curriculum(benchmark):
    failures = benchmark(validate_coverage)
    banner("Table V: PDC learning outcomes — reproduced, with the code "
           "artifact implementing each outcome")
    show(curriculum_table(include_artifacts=True).render())
    assert failures == []
    assert len(TABLE5_OUTCOMES) == 6

    levels = [outcome.level for outcome in TABLE5_OUTCOMES]
    assert levels.count("Familiarity") == 3
    assert levels.count("Usage") == 2
    assert levels.count("Assessment") == 1

    # The module's content actually teaches both halves: every offering
    # from v2 on has MapReduce and HDFS lectures AND labs.
    for version in MODULE_VERSIONS[1:]:
        topics = {(lec.topic, lec.kind) for lec in version.lectures}
        assert ("mapreduce", "lecture") in topics
        assert {"hdfs"} <= {t for t, _ in topics}
