"""Claim C3 (Section II.A) — the Version-1 deadline meltdown, and the
Version-2 fix.

Paper, Version 1 (shared dedicated cluster): deadline congestion, heap
leaks crashing TaskTracker+DataNode daemons, 15+ minute restarts,
resubmissions creating under-replicated blocks, a corrupted cluster —
"only about one third of the students ... were able to complete the
second assignment."

Paper, Version 2 (per-student myHadoop clusters): "all of the students
completed both MapReduce assignments on time."

The benchmark replays the same 39-student class (same behavioural
parameters, same seed) on both platforms.
"""

from benchmarks.conftest import banner, show
from repro.core.classroom import ClassroomScenario, run_classroom
from repro.util.textable import TextTable
from repro.util.units import HOUR, MINUTE


def _scenario(platform: str, seed: int) -> ClassroomScenario:
    return ClassroomScenario(
        name=f"semester-{platform}-{seed}",
        platform=platform,
        num_students=39,
        window=48 * HOUR,
        mean_head_start=10 * HOUR,
        buggy_probability=0.55,
        fix_probability=0.45,
        instructor_reaction_delay=45 * MINUTE,
        input_bytes=120 * 1024,
        seed=seed,
    )


def _run_both():
    v1 = run_classroom(_scenario("dedicated", seed=2012))
    v2 = run_classroom(_scenario("myhadoop", seed=2012))
    return v1, v2


def bench_claim_deadline_cascade(benchmark):
    v1, v2 = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    banner("Claim C3: the deadline cascade — shared cluster (v1) vs "
           "per-student myHadoop clusters (v2)")
    table = TextTable(
        ["Metric", "v1 shared (Fall 2012)", "v2 myHadoop (Spring 2013)"]
    )
    table.add_row(
        ["completion",
         f"{v1.completed}/{v1.num_students} ({v1.completion_fraction:.0%})",
         f"{v2.completed}/{v2.num_students} ({v2.completion_fraction:.0%})"]
    )
    table.add_row(["job submissions", v1.total_job_submissions,
                   v2.total_job_submissions])
    table.add_row(["daemon crashes", v1.daemon_crashes, v2.daemon_crashes])
    table.add_row(["cluster restarts", v1.cluster_restarts, v2.cluster_restarts])
    table.add_row(
        ["restart downtime",
         f"{v1.restart_downtime / 60:.0f} min",
         f"{v2.restart_downtime / 60:.0f} min"]
    )
    table.add_row(["max under-replicated blocks", v1.max_under_replicated,
                   v2.max_under_replicated])
    table.add_row(["missing blocks at deadline",
                   v1.missing_blocks_at_deadline,
                   v2.missing_blocks_at_deadline])
    show(table.render())
    show("paper: v1 ~1/3 completed on a corrupted cluster; v2 everyone "
         "finished on time")

    # Shape: the shared cluster melts down...
    assert v1.daemon_crashes > 10
    assert v1.cluster_restarts >= 2
    # each restart costs at least the 15-minute integrity rescan...
    assert v1.restart_downtime >= v1.cluster_restarts * 10 * MINUTE
    assert v1.max_under_replicated > 0
    # ...and completion collapses toward the paper's one-third...
    assert v1.completion_fraction < 0.6
    # ...while isolation keeps most of the class on track.
    assert v2.completion_fraction > 0.75
    assert v2.completion_fraction > v1.completion_fraction + 0.2
    assert v2.cluster_restarts == 0
    assert v2.missing_blocks_at_deadline == 0
