"""Table IV — Lowest CS level at which to introduce Hadoop MapReduce.

Paper (counts over 29 responses):

    Senior 7, Junior 14, Sophomore 6, Freshman 2

Shape claims: the majority chose junior-or-higher, yet "more than 25% of
the responses still thought that this module could be taught at
sophomore or freshman level".
"""

from benchmarks.conftest import banner, show
from repro.survey.dataset import synthesize_responses
from repro.survey.stats import summarize_responses
from repro.survey.tables import table4_level


def bench_table4_level(benchmark):
    responses = benchmark(synthesize_responses, seed=2013)
    table, deviations = table4_level(responses)
    banner("Table IV: Lowest level to introduce Hadoop MapReduce — reproduced")
    show(table.render())
    assert max(deviations.values()) == 0  # counts are exact

    counts = summarize_responses(responses)["year_level_counts"]
    majority_junior_up = counts["Senior"] + counts["Junior"]
    lower = counts["Sophomore"] + counts["Freshman"]
    assert majority_junior_up > len(responses) / 2
    assert lower / len(responses) > 0.25
