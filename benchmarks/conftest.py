"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table/figure/claim from the paper,
prints it next to the published numbers, and asserts the *shape* —
orderings, rough factors, crossovers — not absolute values (our
substrate is a simulator, not the authors' testbed).
"""

from __future__ import annotations


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show(text: str) -> None:
    print(text)
