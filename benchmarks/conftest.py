"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table/figure/claim from the paper,
prints it next to the published numbers, and asserts the *shape* —
orderings, rough factors, crossovers — not absolute values (our
substrate is a simulator, not the authors' testbed).

``--quick`` (or ``REPRO_BENCH_QUICK=1``) asks perf benchmarks to run a
shrunken workload: identity/shape checks survive, timing assertions and
result-file writes are skipped.  This is what the CI smoke job runs.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink perf benchmarks to smoke-test size (no timing asserts)",
    )


def quick_mode(request) -> bool:
    """Is this benchmark run in quick/smoke mode?"""
    try:
        if request.config.getoption("--quick"):
            return True
    except ValueError:  # option not registered (run from another rootdir)
        pass
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show(text: str) -> None:
    print(text)
