"""Shuffle-transport benchmark — shm descriptors vs framed blobs vs pickle.

The pooled backends' historical bottleneck was IPC: shipping map output
as a pickled list of per-record Writables cost more than the map work
itself.  The framed transport packs each partition into one binary
blob (``repro.mapreduce.wire``); the shm transport goes one step
further and leaves the blob in a shared-memory segment, shipping only
a ``(segment, offset, length)`` descriptor across the pool
(``repro.mapreduce.shm``).  This benchmark measures all three
transports end-to-end (same WordCount, pooled backend) at three corpus
sizes, surfaces the shm PerfStats (``shm_bytes``, ``segments_created``,
``segments_attached``, ``copy_avoided_bytes``), plus the raw
codec-vs-pickle byte and time ratios on the actual map-output payload
shape.

Outputs are asserted bit-identical between transports at every size —
that check runs on every host.  The framed-beats-object wall-clock
assertion (>=1.3x at the largest corpus) is gated on >=2 usable cores:
on one core all transports are pure overhead over serial and only
their relative byte costs are meaningful.

Writes ``BENCH_shuffle.json`` at the repo root.  Quick mode
(``--quick`` / ``REPRO_BENCH_QUICK=1``) runs the smallest corpus only.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

from benchmarks.conftest import banner, quick_mode, show
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce import wire
from repro.mapreduce.backend import create_backend, usable_cores
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.counters import perf_stats
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.types import IntWritable, Text
from repro.util.rng import RngStream

CORPUS_SIZES = (256 * 1024, 1024 * 1024, 2 * 1024 * 1024)
SPLIT_SIZE = 128 * 1024
NUM_REDUCES = 4
WORKERS = 4
ROUNDS = 2
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_shuffle.json"


def _run_job(corpus: str, transport: str):
    fs = LinuxFileSystem()
    fs.write_file("/data/corpus.txt", corpus)
    config = MapReduceConfig(shuffle_transport=transport)
    perf = perf_stats()
    perf.reset()
    with LocalJobRunner(
        localfs=fs,
        backend=create_backend("pooled", WORKERS),
        mr_config=config,
        split_size=SPLIT_SIZE,
    ) as runner:
        job = WordCountWithCombinerJob(
            JobConf(name="bench-shuffle", num_reduces=NUM_REDUCES)
        )
        start = time.perf_counter()
        result = runner.run(job, "/data/corpus.txt", "/out")
        wall = time.perf_counter() - start
    return {
        "wall": wall,
        "pairs": tuple(sorted(result.pairs)),
        "sim_seconds": result.simulated_seconds,
        "perf": perf.as_dict(),
    }


def _best(corpus: str, transport: str, rounds: int):
    best = None
    for _ in range(rounds):
        run = _run_job(corpus, transport)
        if best is None or run["wall"] < best["wall"]:
            best = run
    return best


def _codec_vs_pickle(corpus: str) -> dict:
    """Byte/time cost of both transports on the map-output payload shape
    ((Text(word), IntWritable(1)) per token, the pre-combine stream)."""
    pairs = [(Text(w), IntWritable(1)) for w in corpus.split()]
    t0 = time.perf_counter()
    blob, _ = wire.encode_pairs(pairs)
    encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    decoded = wire.decode_pair_list(blob)
    decode_s = time.perf_counter() - t0
    assert len(decoded) == len(pairs)
    t0 = time.perf_counter()
    pickled = pickle.dumps(pairs, pickle.HIGHEST_PROTOCOL)
    pickle_dump_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pickle.loads(pickled)
    pickle_load_s = time.perf_counter() - t0
    return {
        "records": len(pairs),
        "framed_bytes": len(blob),
        "pickled_bytes": len(pickled),
        "bytes_ratio_pickle_over_framed": len(pickled) / len(blob),
        "encode_seconds": encode_s,
        "decode_seconds": decode_s,
        "pickle_dump_seconds": pickle_dump_s,
        "pickle_load_seconds": pickle_load_s,
    }


def _experiment(quick: bool) -> dict:
    sizes = CORPUS_SIZES[:1] if quick else CORPUS_SIZES
    rounds = 1 if quick else ROUNDS
    gen = ZipfTextGenerator(RngStream(29).child("bench-shuffle"))
    by_size = {}
    for corpus_bytes in sizes:
        corpus = gen.text_of_bytes(corpus_bytes)
        framed = _best(corpus, "framed", rounds)
        shared = _best(corpus, "shm", rounds)
        plain = _best(corpus, "object", rounds)
        assert framed["pairs"] == plain["pairs"] == shared["pairs"], (
            f"transport changed job output at {corpus_bytes} bytes"
        )
        assert (
            framed["sim_seconds"]
            == plain["sim_seconds"]
            == shared["sim_seconds"]
        ), f"transport changed simulated time at {corpus_bytes} bytes"
        shm_perf = shared["perf"]
        by_size[str(corpus_bytes)] = {
            "outputs_identical": True,
            "framed_wall_seconds": framed["wall"],
            "shm_wall_seconds": shared["wall"],
            "object_wall_seconds": plain["wall"],
            "framed_speedup_vs_object": (
                plain["wall"] / framed["wall"] if framed["wall"] else float("inf")
            ),
            "shm_speedup_vs_object": (
                plain["wall"] / shared["wall"] if shared["wall"] else float("inf")
            ),
            "framed_perf": framed["perf"],
            "shm_perf": shm_perf,
            "shm_accounting": {
                "shm_bytes": shm_perf["shm_bytes"],
                "segments_created": shm_perf["segments_created"],
                "segments_attached": shm_perf["segments_attached"],
                "copy_avoided_bytes": shm_perf["copy_avoided_bytes"],
            },
            "codec_vs_pickle": _codec_vs_pickle(corpus),
        }
    payload = {
        "benchmark": "shuffle_transport",
        "quick": quick,
        "host_cores": usable_cores(),
        "workers": WORKERS,
        "split_size": SPLIT_SIZE,
        "num_reduces": NUM_REDUCES,
        "outputs_identical": all(
            entry["outputs_identical"] for entry in by_size.values()
        ),
        "by_corpus_bytes": by_size,
    }
    if not quick:
        RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_shuffle_transport(benchmark, request):
    quick = quick_mode(request)
    payload = benchmark.pedantic(
        _experiment, args=(quick,), rounds=1, iterations=1
    )
    banner("Shuffle transport: shm descriptors vs wire frames vs pickle")
    cores = payload["host_cores"]
    show(f"host cores: {cores}; pooled w={WORKERS}; {NUM_REDUCES} reduces"
         + ("; QUICK" if quick else ""))
    for size, entry in payload["by_corpus_bytes"].items():
        ratio = entry["codec_vs_pickle"]
        acct = entry["shm_accounting"]
        show(
            f"{int(size) // 1024:5d} KiB   object {entry['object_wall_seconds'] * 1000:8.1f} ms"
            f"   framed {entry['framed_wall_seconds'] * 1000:8.1f} ms"
            f" ({entry['framed_speedup_vs_object']:.2f}x)"
            f"   shm {entry['shm_wall_seconds'] * 1000:8.1f} ms"
            f" ({entry['shm_speedup_vs_object']:.2f}x)"
        )
        show(
            f"            shm: {acct['segments_created']} segments, "
            f"{acct['shm_bytes']} bytes shared, "
            f"{acct['segments_attached']} attaches, "
            f"{acct['copy_avoided_bytes']} copy bytes avoided"
            f"   wire/pickle bytes {ratio['framed_bytes']}/{ratio['pickled_bytes']}"
            f" ({ratio['bytes_ratio_pickle_over_framed']:.2f}x smaller)"
        )
    show(f"\noutputs identical across transports: {payload['outputs_identical']}")
    assert payload["outputs_identical"]
    if not quick:
        show(f"results written to {RESULT_FILE.name}")

    # The codec must beat pickle on bytes regardless of host shape, and
    # the shm rows must show the descriptor path actually ran.
    for entry in payload["by_corpus_bytes"].values():
        assert entry["codec_vs_pickle"]["bytes_ratio_pickle_over_framed"] > 1.0
        acct = entry["shm_accounting"]
        assert acct["segments_created"] > 0, "shm run never published"
        assert acct["copy_avoided_bytes"] > 0, "reducers never read descriptors"

    if quick:
        show("quick mode: timing assertions skipped (identity only)")
    elif cores >= 2:
        biggest = payload["by_corpus_bytes"][str(CORPUS_SIZES[-1])]
        speedup = biggest["framed_speedup_vs_object"]
        assert speedup >= 1.3, (
            f"expected framed >=1.3x over object at "
            f"{CORPUS_SIZES[-1]} bytes, got {speedup:.2f}x"
        )
    else:
        show("single-core host: transport speedup assertion skipped")
