"""Claim C4 (Section II.B) — ghost daemons and the 15-minute wait.

"If students exited from their reserved nodes without explicitly
stopping Hadoop, the Hadoop daemons became orphaned while still bound
to the ports ... myHadoop scripts would not be able to start a new
Hadoop cluster due to required ports being blocked off.  If the
orphaned daemons belonged to the same student, they could be terminated
individually ... Otherwise, the student would have to wait 15 minutes
for the scheduler to clean up these daemons."

The benchmark replays all three sub-cases and measures the victim's
actual waiting time.
"""

from benchmarks.conftest import banner, show
from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.hdfs.config import HdfsConfig
from repro.myhadoop.pbs import PbsScheduler
from repro.myhadoop.provision import MyHadoopConfig, MyHadoopProvisioner
from repro.sim.engine import Simulation
from repro.util.errors import PortInUseError
from repro.util.textable import TextTable
from repro.util.units import MINUTE


def _config(user: str) -> MyHadoopConfig:
    return MyHadoopConfig(
        user=user,
        num_nodes=4,
        hdfs=HdfsConfig(block_size=4096, replication=2),
    )


def _run_scenarios():
    sim = Simulation()
    topology = ClusterTopology.regular(num_nodes=32, nodes_per_rack=16)
    scheduler = PbsScheduler(sim, topology)
    provisioner = MyHadoopProvisioner(sim, scheduler, pfs=ParallelFileSystem())
    results = {}

    # Case A: clean handoff — the previous student stopped properly.
    r_a = scheduler.qsub("ann", 4, 3600)
    cluster_a = provisioner.start_cluster(r_a, _config("ann"))
    provisioner.stop_cluster(cluster_a)
    scheduler.release(r_a)
    r_b = scheduler.qsub("ben", 4, 3600)
    t0 = sim.now
    provisioner.start_cluster(r_b, _config("ben"))
    results["clean handoff"] = sim.now - t0
    provisioner.stop_cluster(provisioner._clusters_on_node[r_b.node_names()[0]])
    scheduler.release(r_b)

    # Case B: other-student ghosts — must wait for the cleanup sweep.
    r_c = scheduler.qsub("cat", 4, 3600)
    cluster_c = provisioner.start_cluster(r_c, _config("cat"))
    provisioner.abandon_cluster(cluster_c)
    scheduler.release(r_c)
    r_d = scheduler.qsub("dan", 4, 3600)
    t0 = sim.now
    blocked = 0
    while True:
        try:
            provisioner.start_cluster(r_d, _config("dan"))
            break
        except PortInUseError:
            blocked += 1
            sim.run_for(1 * MINUTE)  # retry every minute, like a student
    results["other-user ghosts"] = sim.now - t0
    results["blocked retries"] = blocked
    provisioner.stop_cluster(provisioner._clusters_on_node[r_d.node_names()[0]])
    scheduler.release(r_d)

    # Case C: own ghosts — kill them yourself and restart immediately.
    r_e = scheduler.qsub("eve", 4, 3600)
    cluster_e = provisioner.start_cluster(r_e, _config("eve"))
    provisioner.abandon_cluster(cluster_e)
    scheduler.release(r_e)
    r_f = scheduler.qsub("eve", 4, 3600)
    t0 = sim.now
    try:
        provisioner.start_cluster(r_f, _config("eve"))
    except PortInUseError:
        provisioner.kill_user_daemons("eve", r_f.node_names())
        provisioner.start_cluster(r_f, _config("eve"))
    results["own ghosts (self-kill)"] = sim.now - t0
    return results


def bench_claim_ghost_daemons(benchmark):
    results = benchmark.pedantic(_run_scenarios, rounds=1, iterations=1)
    banner("Claim C4: ghost daemons and startup delays")
    table = TextTable(["Scenario", "Time until cluster started"])
    for name in ("clean handoff", "other-user ghosts", "own ghosts (self-kill)"):
        table.add_row([name, f"{results[name] / 60:.1f} min"])
    show(table.render())
    show(f"(victim of other-user ghosts was blocked "
         f"{results['blocked retries']} times before the sweep)")
    show("paper: same-student ghosts killable immediately; otherwise "
         "wait up to 15 minutes for the scheduler's cleanup")

    # Shape: clean and self-kill starts are fast; other-user ghosts cost
    # up to one cleanup period (15 min) and strictly dominate.
    assert results["clean handoff"] < 1 * MINUTE
    assert results["own ghosts (self-kill)"] < 1 * MINUTE
    assert results["blocked retries"] >= 1
    assert 1 * MINUTE < results["other-user ghosts"] <= 16 * MINUTE
