"""Claim C1 (Section III.B) — side-file access strategy costs ~10x.

"The optimized implementation of this external access with respect to
the map tasks can make the program run one order of magnitude faster.
... Having individual mappers reading from the same additional data
file increases runtimes to several hours, and implementing a customized
Java object to preprocess the additional data can reduce the runtimes
to minutes."  And for the serial assignment: "the best implementation
... can run as fast as several minutes, while the worst implementation
takes a little over half an hour".

The benchmark runs the genre-statistics job with all three strategies
on the same synthetic MovieLens data (serially, as assignment 1
specifies) and compares simulated runtimes.
"""

from benchmarks.conftest import banner, show
from repro.datasets.movielens import generate_movielens
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.movie_genres import STRATEGIES, GenreStatsJob
from repro.mapreduce.local_runner import LocalJobRunner
from repro.util.textable import TextTable
from repro.util.units import format_duration

#: Scaled-up MovieLens: enough records for the naive penalty to bite.
NUM_RATINGS = 6_000
NUM_MOVIES = 400


def _run_all_strategies():
    data = generate_movielens(
        seed=17, num_ratings=NUM_RATINGS, num_movies=NUM_MOVIES, num_users=300
    )
    results = {}
    for strategy in STRATEGIES:
        localfs = LinuxFileSystem()
        localfs.write_file("/ratings.dat", data.ratings_text)
        localfs.write_file("/movies.dat", data.movies_text)
        runner = LocalJobRunner(localfs=localfs, split_size=64 * 1024)
        results[strategy] = runner.run(
            GenreStatsJob(movies_path="/movies.dat", strategy=strategy),
            "/ratings.dat",
            "/out",
        )
    return results


def bench_claim_sidefile(benchmark):
    results = benchmark.pedantic(_run_all_strategies, rounds=1, iterations=1)
    banner("Claim C1: side-file access strategy (genre statistics, serial)")
    table = TextTable(
        ["Strategy", "Simulated runtime", "Slowdown vs cached"]
    )
    cached = results["cached"].simulated_seconds
    for strategy in ("cached", "per_task", "naive"):
        runtime = results[strategy].simulated_seconds
        table.add_row(
            [strategy, format_duration(runtime), f"{runtime / cached:.1f}x"]
        )
    show(table.render())
    show("paper: best 'several minutes', worst 'a little over half an "
         "hour' serially; an order of magnitude apart")

    # Identical answers across strategies.
    baseline = sorted(results["cached"].pairs)
    for strategy in STRATEGIES:
        assert sorted(results[strategy].pairs) == baseline

    # The shape: naive is an order of magnitude slower than cached.
    naive = results["naive"].simulated_seconds
    per_task = results["per_task"].simulated_seconds
    assert naive >= 10 * cached, (naive, cached)
    assert cached <= per_task <= naive
