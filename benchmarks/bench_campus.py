"""Campus-scale benchmark — the O(active) engine under a 50k-job semester.

Three drills over :mod:`repro.core.campus`:

1. **Scale sweep** (students x clusters, 1k -> 50k jobs): every job must
   succeed, and engine events per job must stay ~flat — the witness
   that heartbeats, liveness checks and scheduling are O(active), not
   O(everything ever submitted).  Wall-seconds per simulated hour are
   recorded alongside.
2. **Multi-tenant fairness**: one course floods the cluster right
   before its deadline.  Under FIFO everyone queues behind the binge;
   under the fair scheduler with a quota cap the other tenants' mean
   wait must improve while the flooding tenant still finishes all jobs
   (starvation in neither direction).
3. **Chaos replay**: with a worker crash/restart agent running, the
   same scenario must produce bit-identical digests from (a) a second
   cold start and (b) a mid-run snapshot restored and run to the end.

A fourth, cheap, always-on check runs a 10,000-student cluster for a
short slice and asserts the event queue stays bounded by outstanding
submissions — 10k students polling ride one shared timer wheel, not
10k self-rescheduling event chains.

Writes ``BENCH_campus.json`` at the repo root.  Quick mode (``--quick``
/ ``REPRO_BENCH_QUICK=1``) shrinks every drill and skips the file
write; identity, fairness-direction and O(active) assertions still run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import banner, quick_mode, show
from repro.core.campus import CampusClusterRun, CampusScenario, run_campus
from repro.util.units import HOUR, MINUTE

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_campus.json"

#: (students, clusters, jobs_per_student) -> 1k, 10k, 50k total jobs.
SWEEP_FULL = ((1_000, 1, 1), (2_000, 2, 5), (10_000, 8, 5))
SWEEP_QUICK = ((200, 1, 1), (800, 1, 1))

#: events-per-job may grow by at most this factor across the sweep.
LINEARITY_FACTOR = 3.0


def _sweep_point(students: int, clusters: int, jobs_each: int) -> dict:
    scenario = CampusScenario(
        name=f"sweep-{students}x{clusters}",
        num_students=students,
        num_clusters=clusters,
        jobs_per_student=jobs_each,
        window=2 * HOUR,
        seed=17,
    )
    start = time.perf_counter()
    report = run_campus(scenario)
    wall = time.perf_counter() - start
    sim_hours = report.sim_seconds / 3600.0
    return {
        "students": students,
        "clusters": clusters,
        "jobs": report.jobs_submitted,
        "jobs_succeeded": report.jobs_succeeded,
        "events_processed": report.events_processed,
        "events_per_job": report.events_per_job,
        "sim_hours": sim_hours,
        "wall_seconds": wall,
        "wall_seconds_per_sim_hour": wall / sim_hours if sim_hours else 0.0,
        "digests": [c.digest for c in report.clusters],
    }


def _fairness_drill(quick: bool) -> dict:
    base = dict(
        name="fairness",
        num_students=120 if quick else 240,
        num_clusters=1,
        jobs_per_student=3,
        window=20 * MINUTE,
        users=("cs1060", "cs4060", "research"),
        user_weights=(0.25, 0.25, 0.5),
        flood_user="research",
        flood_window=2 * MINUTE,
        seed=11,
    )
    fifo = run_campus(CampusScenario(**base, scheduler="fifo"))
    fair = run_campus(
        CampusScenario(
            **base, scheduler="fair", user_quotas={"research": 8}
        )
    )
    light = ("cs1060", "cs4060")

    def mean_light(report) -> float:
        waits = report.per_user_mean_wait()
        return sum(waits[u] for u in light) / len(light)

    return {
        "fifo_mean_wait": {
            u: w for u, w in sorted(fifo.per_user_mean_wait().items())
        },
        "fair_mean_wait": {
            u: w for u, w in sorted(fair.per_user_mean_wait().items())
        },
        "fifo_completed": fifo.per_user_completed(),
        "fair_completed": fair.per_user_completed(),
        "light_wait_fifo": mean_light(fifo),
        "light_wait_fair": mean_light(fair),
        "all_succeeded": (
            fifo.jobs_succeeded == fifo.jobs_submitted
            and fair.jobs_succeeded == fair.jobs_submitted
        ),
    }


def _chaos_scenario(quick: bool) -> CampusScenario:
    return CampusScenario(
        name="chaos",
        # Cluster 0 of the 10k-student / 8-cluster campus (quick: a
        # scaled-down stand-in) with the crash/restart agent running.
        num_students=120 if quick else 10_000,
        num_clusters=1 if quick else 8,
        jobs_per_student=2 if quick else 5,
        window=30 * MINUTE if quick else 2 * HOUR,
        chaos_interval=5 * MINUTE,
        seed=3,
    )


def _chaos_drill(quick: bool) -> dict:
    scenario = _chaos_scenario(quick)
    cold = CampusClusterRun(scenario, 0)
    cold_stats = cold.run_to_completion()
    cold.close()

    run = CampusClusterRun(scenario, 0)
    run.sim.run_until(run.sim.now + scenario.window / 2)
    snapshot = run.sim.snapshot(run)
    original_stats = run.run_to_completion()
    run.close()

    _sim, (restored,) = snapshot.restore()
    restored_stats = restored.run_to_completion()
    restored.close()

    return {
        "students_in_cluster": scenario.students_of_cluster(0),
        "jobs": cold_stats.jobs_submitted,
        "chaos_crashes": cold_stats.chaos_crashes,
        "cold_digest": cold_stats.digest,
        "original_digest": original_stats.digest,
        "restored_digest": restored_stats.digest,
        "replay_identical": (
            cold_stats.digest
            == original_stats.digest
            == restored_stats.digest
        ),
    }


def _wheel_smoke() -> dict:
    """10,000 students on one cluster: the queue must hold scheduled
    submissions plus O(1) wheel/daemon events, never per-student pollers."""
    scenario = CampusScenario(
        name="wheel-smoke",
        num_students=10_000,
        num_clusters=1,
        jobs_per_student=1,
        window=2 * HOUR,
        seed=5,
    )
    run = CampusClusterRun(scenario, 0)
    planned = run._planned
    run.sim.run_until(run.sim.now + 10 * MINUTE)
    submitted = run.stats.jobs_submitted
    pending = run.sim.pending()
    events = run.sim.events_processed
    run.close()
    return {
        "students": scenario.num_students,
        "planned_jobs": planned,
        "submitted_after_10min": submitted,
        "pending_events": pending,
        "events_processed": events,
        # Future submissions sit in the queue by design; everything else
        # (wheels, in-flight task completions) must be a small constant.
        "non_submission_pending": pending - (planned - submitted),
    }


def _experiment(quick: bool) -> dict:
    sweep = [
        _sweep_point(*point)
        for point in (SWEEP_QUICK if quick else SWEEP_FULL)
    ]
    # Determinism: replaying the smallest point must reproduce digests.
    replay = _sweep_point(*(SWEEP_QUICK if quick else SWEEP_FULL)[0])
    payload = {
        "benchmark": "campus_scale",
        "quick": quick,
        "sweep": sweep,
        "replay_identical": replay["digests"] == sweep[0]["digests"],
        "fairness": _fairness_drill(quick),
        "chaos": _chaos_drill(quick),
        "wheel_smoke": _wheel_smoke(),
    }
    if not quick:
        RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_campus(benchmark, request):
    quick = quick_mode(request)
    payload = benchmark.pedantic(
        _experiment, args=(quick,), rounds=1, iterations=1
    )

    banner("Campus-scale simulation: O(active) engine + indexed scheduler")
    show("  students x clusters      jobs    events/job   wall s/sim h")
    for point in payload["sweep"]:
        show(
            f"  {point['students']:7d} x {point['clusters']:<2d}      "
            f"{point['jobs']:8d}    {point['events_per_job']:8.2f}   "
            f"{point['wall_seconds_per_sim_hour']:10.2f}"
        )

    fairness = payload["fairness"]
    show(
        f"\n  fairness: light-tenant mean wait "
        f"{fairness['light_wait_fifo'] / 60:.2f} min (fifo) -> "
        f"{fairness['light_wait_fair'] / 60:.2f} min (fair + quota)"
    )
    chaos = payload["chaos"]
    show(
        f"  chaos replay: {chaos['jobs']} jobs, "
        f"{chaos['chaos_crashes']} crashes, digests "
        f"{'identical' if chaos['replay_identical'] else 'DIVERGED'} "
        f"(cold / rerun / mid-run restore)"
    )
    smoke = payload["wheel_smoke"]
    show(
        f"  wheel smoke: {smoke['students']} students, "
        f"{smoke['non_submission_pending']} non-submission events queued"
    )
    if not quick:
        show(f"  results written to {RESULT_FILE.name}")

    # -- identity ------------------------------------------------------
    assert payload["replay_identical"], "cold replay diverged"
    assert chaos["replay_identical"], "chaos replay diverged"

    # -- every job must finish -----------------------------------------
    for point in payload["sweep"]:
        assert point["jobs_succeeded"] == point["jobs"], (
            f"{point['jobs'] - point['jobs_succeeded']} jobs failed at "
            f"{point['students']}x{point['clusters']}"
        )

    # -- O(active) guard: events per job ~flat across the sweep --------
    per_job = [p["events_per_job"] for p in payload["sweep"]]
    assert max(per_job) <= min(per_job) * LINEARITY_FACTOR, (
        f"events/job grew superlinearly across the sweep: {per_job}"
    )

    # -- fairness direction --------------------------------------------
    assert fairness["all_succeeded"]
    assert fairness["light_wait_fair"] < fairness["light_wait_fifo"], (
        "fair scheduling did not improve light tenants' wait"
    )
    assert (
        fairness["fair_completed"]["research"]
        == fairness["fifo_completed"]["research"]
    ), "quota cap starved the flooding tenant outright"

    # -- shared wheel keeps the queue O(outstanding work) --------------
    assert smoke["non_submission_pending"] < 200, (
        f"{smoke['non_submission_pending']} non-submission events queued "
        f"for 10k students: pollers are not sharing the wheel"
    )

    if quick:
        show("  quick mode: shrunken workload, no result file")
