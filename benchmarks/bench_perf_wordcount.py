"""Host-parallelism benchmark — pooled execution backends vs serial.

Unlike the other benchmarks (which reproduce *simulated* results from
the paper), this one measures the reproduction itself: real wall-clock
of an identical WordCount over a Zipf corpus under the serial backend
and the pooled (process) backend at 1/2/4 workers.  The pooled runs
must produce bit-identical output pairs and simulated seconds — the
determinism contract — while finishing faster on multi-core hosts.

Writes ``BENCH_parallelism.json`` next to the repo root with the raw
timings, so perf trajectories across PRs are machine-readable.  The
>=1.5x speedup assertion is gated on the host actually having >=2
usable cores: on a single-core (or affinity-pinned) host, parallel
speedup is physically impossible and only the identity checks apply.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import banner, show
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.backend import create_backend
from repro.mapreduce.config import JobConf
from repro.mapreduce.local_runner import LocalJobRunner
from repro.util.rng import RngStream

CORPUS_BYTES = 2 * 1024 * 1024
SPLIT_SIZE = 128 * 1024  # 16 map tasks
NUM_REDUCES = 4
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 2  # best-of to damp scheduler noise
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_parallelism.json"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _run_once(corpus: str, backend_name: str, workers: int):
    fs = LinuxFileSystem()
    fs.write_file("/data/corpus.txt", corpus)
    backend = create_backend(backend_name, workers)
    with LocalJobRunner(
        localfs=fs, backend=backend, split_size=SPLIT_SIZE
    ) as runner:
        job = WordCountWithCombinerJob(
            JobConf(name="bench-wc", num_reduces=NUM_REDUCES)
        )
        start = time.perf_counter()
        result = runner.run(job, "/data/corpus.txt", "/out")
        wall = time.perf_counter() - start
    return wall, tuple(sorted(result.pairs)), result.simulated_seconds


def _measure(corpus: str, backend_name: str, workers: int):
    best = None
    for _ in range(ROUNDS):
        wall, pairs, sim_seconds = _run_once(corpus, backend_name, workers)
        if best is None or wall < best[0]:
            best = (wall, pairs, sim_seconds)
    return best


def _experiment() -> dict:
    corpus = ZipfTextGenerator(RngStream(23).child("bench")).text_of_bytes(
        CORPUS_BYTES
    )
    serial_wall, serial_pairs, serial_sim = _measure(corpus, "serial", 0)
    runs = {"serial": {"wall_seconds": serial_wall, "workers": 0}}
    for workers in WORKER_COUNTS:
        wall, pairs, sim_seconds = _measure(corpus, "pooled", workers)
        assert pairs == serial_pairs, "pooled output differs from serial"
        assert sim_seconds == serial_sim, "pooled simulated time differs"
        runs[f"pooled-{workers}"] = {
            "wall_seconds": wall,
            "workers": workers,
            "speedup_vs_serial": serial_wall / wall if wall else float("inf"),
        }
    payload = {
        "benchmark": "parallelism_wordcount",
        "corpus_bytes": CORPUS_BYTES,
        "split_size": SPLIT_SIZE,
        "num_reduces": NUM_REDUCES,
        "host_cores": _usable_cores(),
        "outputs_identical": True,
        "simulated_seconds": serial_sim,
        "runs": runs,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_perf_wordcount(benchmark):
    payload = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    banner("Execution-backend parallelism: WordCount on a Zipf corpus")
    cores = payload["host_cores"]
    serial_wall = payload["runs"]["serial"]["wall_seconds"]
    show(f"host cores: {cores}; corpus: {payload['corpus_bytes']} bytes; "
         f"16 maps / {NUM_REDUCES} reduces")
    show(f"serial        {serial_wall * 1000:8.1f} ms   1.00x")
    for workers in WORKER_COUNTS:
        run = payload["runs"][f"pooled-{workers}"]
        show(
            f"pooled w={workers}    {run['wall_seconds'] * 1000:8.1f} ms   "
            f"{run['speedup_vs_serial']:.2f}x"
        )
    show(f"\noutputs + simulated clocks identical across backends: "
         f"{payload['outputs_identical']}")
    show(f"results written to {RESULT_FILE.name}")

    # Parallel speedup needs parallel hardware; the determinism checks
    # above always apply.
    if cores >= 2:
        at4 = payload["runs"]["pooled-4"]["speedup_vs_serial"]
        assert at4 >= 1.5, f"expected >=1.5x at 4 workers, got {at4:.2f}x"
    else:
        show("single-core host: speedup assertion skipped (identity only)")
