"""Host-parallelism benchmark — pooled execution backends vs serial.

Unlike the other benchmarks (which reproduce *simulated* results from
the paper), this one measures the reproduction itself: real wall-clock
of an identical WordCount over a Zipf corpus under the serial backend,
the pooled (process) backend at 1/2/4 workers — once with the framed
transport (blobs pickled across the pool) and once with the
shared-memory transport (only descriptors cross; blobs live in shm
segments) — and the ``auto`` backend.  Every pooled run must produce
bit-identical output pairs and simulated seconds — the determinism
contract — while finishing faster on multi-core hosts.  Per-stage
host timings (serialize / decode / merge / shm accounting) are
recorded per run.

Writes ``BENCH_parallelism.json`` next to the repo root with the raw
timings, so perf trajectories across PRs are machine-readable.  The
numbers carry an explicit ``speedup_meaningful`` flag: timing ratios
only mean something when the host actually has >=2 usable cores
(``usable_cores`` respects cgroup/affinity limits — the number the
pool can really use, not what ``os.cpu_count`` brags).  Speedup
assertions are tiered accordingly — >=4 cores demands shm pooled-4
>= 2.0x and framed pooled-4 >= 1.5x, 2-3 cores demands shm pooled-2
>= 1.2x, and below that only the identity checks apply — plus the
check that ``auto`` notices a single core and stays within 10% of
serial.  On a single-core host the recorded ratios are just scheduler
noise around 1.0x and must be read as such.

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the corpus
and skips repetition: identity checks (including an shm pass — the CI
bench-smoke shm identity gate) at CI-smoke cost, no timing assertions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import banner, quick_mode, show
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.backend import create_backend, usable_cores
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.counters import C, perf_stats
from repro.mapreduce.local_runner import LocalJobRunner
from repro.util.rng import RngStream

CORPUS_BYTES = 2 * 1024 * 1024
QUICK_CORPUS_BYTES = 256 * 1024
SPLIT_SIZE = 128 * 1024  # 16 map tasks at full size
NUM_REDUCES = 4
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 2  # best-of to damp scheduler noise
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_parallelism.json"


def _run_once(corpus: str, backend_name: str, workers: int, transport: str):
    fs = LinuxFileSystem()
    fs.write_file("/data/corpus.txt", corpus)
    backend = create_backend(backend_name, workers)
    config = MapReduceConfig(shuffle_transport=transport)
    perf = perf_stats()
    perf.reset()
    with LocalJobRunner(
        localfs=fs, backend=backend, mr_config=config, split_size=SPLIT_SIZE
    ) as runner:
        job = WordCountWithCombinerJob(
            JobConf(name="bench-wc", num_reduces=NUM_REDUCES)
        )
        start = time.perf_counter()
        result = runner.run(job, "/data/corpus.txt", "/out")
        wall = time.perf_counter() - start
        chosen = getattr(runner.backend, "chosen", backend_name)
    return {
        "wall": wall,
        "pairs": tuple(sorted(result.pairs)),
        "sim_seconds": result.simulated_seconds,
        "shuffled_bytes": result.counters.get(C.MAP_OUTPUT_BYTES),
        "perf": perf.as_dict(),
        "chosen": chosen,
    }


def _measure(corpus: str, backend_name: str, workers: int, rounds: int,
             transport: str = "framed"):
    best = None
    for _ in range(rounds):
        run = _run_once(corpus, backend_name, workers, transport)
        if best is None or run["wall"] < best["wall"]:
            best = run
    return best


def _experiment(quick: bool) -> dict:
    corpus_bytes = QUICK_CORPUS_BYTES if quick else CORPUS_BYTES
    rounds = 1 if quick else ROUNDS
    worker_counts = (2,) if quick else WORKER_COUNTS
    corpus = ZipfTextGenerator(RngStream(23).child("bench")).text_of_bytes(
        corpus_bytes
    )
    serial = _measure(corpus, "serial", 0, rounds)
    runs = {
        "serial": {"wall_seconds": serial["wall"], "workers": 0},
    }
    for workers in worker_counts:
        for transport in ("framed", "shm"):
            pooled = _measure(corpus, "pooled", workers, rounds, transport)
            assert pooled["pairs"] == serial["pairs"], (
                f"pooled/{transport} output differs from serial"
            )
            assert pooled["sim_seconds"] == serial["sim_seconds"], (
                f"pooled/{transport} simulated time differs"
            )
            key = (
                f"pooled-{workers}"
                if transport == "framed"
                else f"pooled-{workers}-shm"
            )
            runs[key] = {
                "wall_seconds": pooled["wall"],
                "workers": workers,
                "transport": transport,
                "speedup_vs_serial": (
                    serial["wall"] / pooled["wall"]
                    if pooled["wall"]
                    else float("inf")
                ),
                "perf": pooled["perf"],
            }
    auto = _measure(corpus, "auto", 0, rounds)
    assert auto["pairs"] == serial["pairs"], "auto output differs from serial"
    assert auto["sim_seconds"] == serial["sim_seconds"]
    runs["auto"] = {
        "wall_seconds": auto["wall"],
        "workers": 0,
        "chose": auto["chosen"],
        "speedup_vs_serial": (
            serial["wall"] / auto["wall"] if auto["wall"] else float("inf")
        ),
    }
    payload = {
        "benchmark": "parallelism_wordcount",
        "quick": quick,
        "corpus_bytes": corpus_bytes,
        "split_size": SPLIT_SIZE,
        "num_reduces": NUM_REDUCES,
        "host_cores": usable_cores(),
        "speedup_meaningful": usable_cores() >= 2,
        "shuffle_transports": ["framed", "shm"],
        "bytes_shuffled": serial["shuffled_bytes"],
        "outputs_identical": True,
        "simulated_seconds": serial["sim_seconds"],
        "runs": runs,
    }
    if not quick:
        RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_perf_wordcount(benchmark, request):
    quick = quick_mode(request)
    payload = benchmark.pedantic(
        _experiment, args=(quick,), rounds=1, iterations=1
    )
    banner("Execution-backend parallelism: WordCount on a Zipf corpus")
    cores = payload["host_cores"]
    serial_wall = payload["runs"]["serial"]["wall_seconds"]
    show(f"host cores: {cores}; corpus: {payload['corpus_bytes']} bytes; "
         f"{NUM_REDUCES} reduces; transports: framed + shm"
         + ("; QUICK" if quick else ""))
    if not payload["speedup_meaningful"]:
        show("(single usable core: speedups below are scheduler noise)")
    show(f"serial          {serial_wall * 1000:8.1f} ms   1.00x")
    for key, run in payload["runs"].items():
        if key == "serial":
            continue
        extra = f"  chose={run['chose']}" if "chose" in run else ""
        show(
            f"{key:14s}  {run['wall_seconds'] * 1000:8.1f} ms   "
            f"{run['speedup_vs_serial']:.2f}x{extra}"
        )
    show(f"\noutputs + simulated clocks identical across backends and "
         f"transports: {payload['outputs_identical']}")
    if not quick:
        show(f"results written to {RESULT_FILE.name}")

    # ``auto`` must never make things worse: on a single-core host it
    # selects serial and lands within 10% of the serial wall-clock.
    auto_run = payload["runs"]["auto"]
    if cores < 2:
        assert auto_run["chose"] == "serial"
        if not quick:
            assert auto_run["wall_seconds"] <= serial_wall * 1.10, (
                f"auto (serial) took {auto_run['wall_seconds']:.2f}s vs "
                f"serial {serial_wall:.2f}s"
            )

    # Parallel speedup needs parallel hardware; the determinism checks
    # above always apply.  Quick mode never asserts timings, and hosts
    # below the tier's core floor skip (never fail) the timing bar.
    if quick:
        show("quick mode: timing assertions skipped (identity only)")
    elif cores >= 4:
        shm4 = payload["runs"]["pooled-4-shm"]["speedup_vs_serial"]
        framed4 = payload["runs"]["pooled-4"]["speedup_vs_serial"]
        assert shm4 >= 2.0, f"expected shm >=2.0x at 4 workers, got {shm4:.2f}x"
        assert framed4 >= 1.5, (
            f"expected framed >=1.5x at 4 workers, got {framed4:.2f}x"
        )
    elif cores >= 2:
        shm2 = payload["runs"]["pooled-2-shm"]["speedup_vs_serial"]
        assert shm2 >= 1.2, f"expected shm >=1.2x at 2 workers, got {shm2:.2f}x"
    else:
        show("single-core host: speedup assertions skipped (identity only)")
