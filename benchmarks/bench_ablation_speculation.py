"""Ablation A4 — speculative execution on a heterogeneous cluster.

One node's disk reads at 10 KB/s (a dying drive), so its node-local
maps run ~10x the cluster average.

The advanced-MapReduce lecture covers speculation; this ablation builds
the situation it exists for — one straggler node with a disk an order
of magnitude slower — and measures job completion with speculation off
vs on.  On a *homogeneous* cluster, speculation must not fire at all
(no wasted duplicate work).
"""

from benchmarks.conftest import banner, show
from repro.cluster.builder import build_hadoop_cluster
from repro.cluster.hardware import NodeSpec
from repro.cluster.topology import ClusterTopology
from repro.hdfs.config import HdfsConfig
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.streaming import streaming_job
from repro.util.textable import TextTable
from repro.util.units import MB


def _heterogeneous_cluster(seed: int) -> MapReduceCluster:
    topology = ClusterTopology()
    fast = NodeSpec()
    # A dying disk: reads crawl, so node-local maps on this node take
    # several times the cluster average.
    slow = NodeSpec(disk_read_bw=10 * 1024)  # 10 KB/s reads
    from repro.cluster.hardware import Node

    for i in range(7):
        topology.add_node(Node(name=f"node{i}", spec=fast), "rack0")
    topology.add_node(Node(name="node7", spec=slow), "rack0")
    from repro.cluster.builder import HadoopHardware
    from repro.cluster.network import NetworkModel

    hardware = HadoopHardware(
        topology=topology, network=NetworkModel(topology=topology)
    )
    return MapReduceCluster(
        hardware=hardware,
        hdfs_config=HdfsConfig(block_size=128 * 1024, replication=3),
        seed=seed,
    )


#: Line-oriented workload (balanced splits — no record straddles the
#: whole file, which would manufacture a fake straggler).
WORKLOAD = "word stream flowing by\n" * 180_000


def _wc(speculative: bool):
    return streaming_job(
        "spec" if speculative else "nospec",
        lambda k, v: ((w, 1) for w in v.split()),
        lambda k, vs: [(k, sum(vs))],
        combine_fn=lambda k, vs: [(k, sum(vs))],
        conf=JobConf(
            name="spec" if speculative else "nospec",
            speculative_execution=speculative,
        ),
    )


def _run_pair():
    results = {}
    for speculative in (False, True):
        cluster = _heterogeneous_cluster(seed=37)
        cluster.client(node="node0").put_text("/data/in.txt", WORKLOAD)
        report = cluster.run_job(
            _wc(speculative), "/data/in.txt", "/out", require_success=True
        )
        results[speculative] = report
    # Control: homogeneous cluster with speculation on.
    homogeneous = MapReduceCluster(
        hardware=build_hadoop_cluster(num_workers=8),
        hdfs_config=HdfsConfig(block_size=64 * 1024, replication=3),
        seed=37,
    )
    homogeneous.client(node="node0").put_text("/data/in.txt", WORKLOAD)
    control = homogeneous.run_job(
        _wc(True), "/data/in.txt", "/out", require_success=True
    )
    return results, control


def bench_ablation_speculation(benchmark):
    results, control = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    off, on = results[False], results[True]
    banner("Ablation A4: speculative execution with one dying-disk straggler node")
    table = TextTable(
        ["Configuration", "Job elapsed", "Killed speculative attempts"]
    )
    table.add_row(["heterogeneous, speculation OFF",
                   f"{off.elapsed:.0f}s", off.killed_attempts])
    table.add_row(["heterogeneous, speculation ON",
                   f"{on.elapsed:.0f}s", on.killed_attempts])
    table.add_row(["homogeneous, speculation ON (control)",
                   f"{control.elapsed:.0f}s", control.killed_attempts])
    show(table.render())
    show("speculation clones the straggler's task onto a fast node and "
         "keeps the first finisher; on a healthy cluster it stays quiet")

    assert on.elapsed < off.elapsed * 0.8  # the straggler no longer gates
    assert on.killed_attempts >= 1  # a losing twin was killed
    assert control.killed_attempts == 0  # and no spurious speculation
    assert on.succeeded and off.succeeded
