"""Claim C2 (Section III.A) — the combiner trade-off.

"The students observe the tradeoff between increased map task run time
(observed through Hadoop's JobTracker's web interface) versus reduced
network traffic (observed through final MapReduce job report)."  The
airline examples then push the same idea further: combiner with a
custom value class, and in-mapper combining via node-level memory.

Two sub-experiments on a cluster:
1. WordCount with vs without a combiner;
2. the three airline-delay variants.
"""

from benchmarks.conftest import banner, show
from repro.datasets.airline import generate_airline
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.config import HdfsConfig
from repro.jobs.airline_delay import (
    AirlineDelayCombinerJob,
    AirlineDelayInMapperJob,
    AirlineDelayNaiveJob,
)
from repro.jobs.wordcount import WordCountJob, WordCountWithCombinerJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.util.rng import RngStream
from repro.util.textable import TextTable


def _make_cluster(seed=19):
    return MapReduceCluster(
        num_workers=8,
        hdfs_config=HdfsConfig(block_size=32 * 1024, replication=3),
        seed=seed,
    )


def _run_experiments():
    cluster = _make_cluster()
    text = ZipfTextGenerator(RngStream(19).child("wc")).text_of_bytes(
        300 * 1024
    )
    cluster.client().put_text("/data/corpus.txt", text)
    wc_plain = cluster.run_job(
        WordCountJob(), "/data/corpus.txt", "/out/wc-plain",
        require_success=True,
    )
    wc_combined = cluster.run_job(
        WordCountWithCombinerJob(), "/data/corpus.txt", "/out/wc-comb",
        require_success=True,
    )

    airline = generate_airline(seed=19, num_rows=8000)
    cluster.client().put_text("/data/airline.csv", airline.csv_text)
    air_reports = {}
    for name, job_cls in (
        ("v1 naive", AirlineDelayNaiveJob),
        ("v2 combiner", AirlineDelayCombinerJob),
        ("v3 in-mapper", AirlineDelayInMapperJob),
    ):
        air_reports[name] = cluster.run_job(
            job_cls(), "/data/airline.csv",
            f"/out/air-{name.split()[0]}", require_success=True,
        )
    return wc_plain, wc_combined, air_reports


def bench_claim_combiner(benchmark):
    wc_plain, wc_combined, air_reports = benchmark.pedantic(
        _run_experiments, rounds=1, iterations=1
    )
    banner("Claim C2: combiner trade-off (WordCount and airline delay)")
    table = TextTable(["Job", "Avg map time", "Shuffle bytes"])
    table.add_row(
        ["WordCount (no combiner)", f"{wc_plain.avg_map_time:.2f}s",
         wc_plain.shuffle_bytes]
    )
    table.add_row(
        ["WordCount (combiner)", f"{wc_combined.avg_map_time:.2f}s",
         wc_combined.shuffle_bytes]
    )
    for name, report in air_reports.items():
        table.add_row(
            [f"airline {name}", f"{report.avg_map_time:.2f}s",
             report.shuffle_bytes]
        )
    show(table.render())
    show("paper: combiner => map time up, network traffic down; "
         "in-mapper combining trades memory for the combiner class")

    # WordCount: combiner slashes shuffle traffic at a map-time premium.
    assert wc_combined.shuffle_bytes < wc_plain.shuffle_bytes / 3
    assert wc_combined.avg_map_time >= wc_plain.avg_map_time

    # Airline: each variant shuffles no more than the previous.
    naive = air_reports["v1 naive"].shuffle_bytes
    combiner = air_reports["v2 combiner"].shuffle_bytes
    in_mapper = air_reports["v3 in-mapper"].shuffle_bytes
    assert combiner < naive / 5
    assert in_mapper <= combiner
