"""Table I — Level of Proficiency (0-10), before/after the module.

Paper (Fall 2013, 29 of 39 surveys returned):

    Topic             Before      After
    Java              6.6±1.2     7.3±1.1
    Linux             5.86±1.7    7.1±1.7
    Networking        4.38±1.6    6.29±1.5
    Hadoop MapReduce  0.03±0.2    4.53±1.16

The benchmark synthesizes 29 integer response vectors, recomputes the
table from raw responses, and checks every cell matches the published
value to print precision.
"""

from benchmarks.conftest import banner, show
from repro.survey.dataset import synthesize_responses
from repro.survey.tables import table1_proficiency

TOLERANCE = 0.05


def bench_table1_proficiency(benchmark):
    responses = benchmark(synthesize_responses, seed=2013)
    table, deviations = table1_proficiency(responses)
    banner("Table I: Level of Proficiency — reproduced from synthesized "
           "responses (paper values in module docstring)")
    show(table.render())
    show(f"max |reproduced - reported| over all cells: "
         f"{max(deviations.values()):.4f}")
    assert max(deviations.values()) < TOLERANCE
    # Shape: every topic improves; Hadoop improves the most.
    from repro.survey.stats import improvement_per_topic

    gains = improvement_per_topic(responses)
    assert all(g > 0 for g in gains.values())
    assert max(gains, key=gains.get) == "Hadoop MapReduce"
