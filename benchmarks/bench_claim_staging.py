"""Claim C5 (Section III.C) — dataset sizing and staging times.

"As the size of the Google Trace data is relatively large (171GB), it
can take over an hour for students to stage the data into the temporary
Hadoop cluster. ... The [Yahoo] data is large enough to be impractical
on a serial execution yet small enough so that it takes less than five
minutes to load the data into the HDFS file system."

The ingest bandwidth is *measured*, not assumed: a scaled synthetic
staging run on a live simulated cluster yields the effective single
client ``-put`` rate, which then prices the real dataset sizes.
"""

from benchmarks.conftest import banner, show
from repro.datasets.catalog import DATASET_CATALOG, staging_time
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.util.textable import TextTable
from repro.util.units import HOUR, MB, MINUTE, format_duration, format_size

#: Bytes actually pushed through the simulated cluster to measure rate.
PROBE_BYTES = 4 * 1024 * 1024


def _measure_ingest_bw() -> float:
    """Effective bytes/second of one client staging into 8-node HDFS.

    The client sits outside the cluster (the paper's path: home
    directory on the parallel FS -> `hadoop fs -put` across the machine
    room), so the transfer rides the oversubscribed uplink.  The paper's
    two bounds (171 GB "over an hour", 10 GB "less than five minutes")
    bracket the effective rate between ~34 and ~47 MB/s; a 3:1
    oversubscribed gigabit path lands at ~42 MB/s.
    """
    from repro.cluster.builder import build_hadoop_cluster

    hardware = build_hadoop_cluster(num_workers=8, rack_oversubscription=3.0)
    cluster = HdfsCluster(
        hardware=hardware,
        config=HdfsConfig(block_size=1 * MB, replication=3),
        seed=23,
    )
    client = cluster.client()  # a login node outside the cluster
    result = client.put_bytes("/stage/probe.bin", b"\x5a" * PROBE_BYTES)
    return PROBE_BYTES / result.elapsed


def bench_claim_staging(benchmark):
    ingest_bw = benchmark.pedantic(_measure_ingest_bw, rounds=1, iterations=1)
    banner("Claim C5: staging the course datasets into a fresh HDFS")
    show(f"measured single-client ingest rate: {format_size(ingest_bw)}/s "
         f"(replication 3, client outside the cluster)")
    table = TextTable(["Dataset", "Real size", "Staging time", "Role"])
    times = {}
    for key, info in DATASET_CATALOG.items():
        seconds = staging_time(info, ingest_bw)
        times[key] = seconds
        table.add_row(
            [info.name, format_size(info.real_size_bytes),
             format_duration(seconds), info.assignment]
        )
    show(table.render())
    show("paper: Google trace 'over an hour' (semester projects only); "
         "Yahoo 'less than five minutes' (weekly assignments)")

    # The shape the paper's dataset-selection argument rests on.
    assert times["google_trace"] > 1 * HOUR
    assert times["yahoo_music"] < 5 * MINUTE
    assert times["movielens"] < 1 * MINUTE
    assert times["airline"] < 10 * MINUTE
    assert times["google_trace"] > 10 * times["yahoo_music"]
