"""Workloads on the fast engine: compiled sparklite + multi-stage SQL.

PR 10's claim is not that a simulated cluster beats an in-process
loop — it is that the high-level workload layer now *compiles onto*
the fast MapReduce engine and inherits its optimisations while staying
bit-identical to the reference evaluators.  So this benchmark measures
and asserts the structural observables of that compilation:

- **identity** (always, every host): compiled PageRank and n-gram
  runs equal the in-memory evaluator's answers exactly; the MovieLens
  and airline multi-stage SQL joins equal pure-Python ground truth;
- **stage reuse**: ``cache()`` materializes the PageRank link table
  once — later iterations hit the HDFS materialization instead of
  re-running the shuffle (job counts prove it);
- **predicate pushdown**: a WHERE clause naming one side of a join
  filters map-side, shrinking the join stage's shuffle;
- **stage rollups**: every row carries per-stage counters and host
  PerfStats deltas (``last_plan`` for sparklite, per-stage job
  counters for Hive) so regressions show up in the JSON, not just in
  wall time.

Writes ``BENCH_workloads.json`` at the repo root.  Quick mode
(``--quick`` / ``REPRO_BENCH_QUICK=1``) shrinks every dataset and
skips the file write; all identity and structure assertions still run.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from benchmarks.conftest import banner, quick_mode, show
from repro.datasets.airline import generate_airline
from repro.datasets.movielens import generate_movielens
from repro.datasets.shakespeare import generate_shakespeare
from repro.hive import ColumnType, HiveLite, TableSchema
from repro.jobs.ngrams import ngram_counts, ngram_reference
from repro.jobs.pagerank import generate_web_graph, pagerank
from repro.mapreduce.backend import usable_cores
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.counters import perf_stats
from repro.sparklite import SparkLiteContext

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_workloads.json"


def _compiled_context() -> SparkLiteContext:
    return SparkLiteContext.on_mapreduce(num_workers=4, seed=1)


def _stage_rollup(plan: list[dict]) -> list[dict]:
    """last_plan, with counter values coerced to plain ints for JSON."""
    return [
        {
            "stage": stage["stage"],
            "job": stage["job"],
            "counters": {
                name: int(value or 0)
                for name, value in stage["counters"].items()
            },
            "perf": stage["perf"],
        }
        for stage in plan
    ]


def _report_rollup(reports) -> list[dict]:
    """Per-stage counters of interest out of Hive stage reports."""
    interesting = (
        "Map input records",
        "Map output records",
        "Reduce output records",
        "HDFS bytes read",
        "HDFS bytes written",
    )
    rollup = []
    for report in reports:
        counters = {
            name: int(value)
            for group in report.counters.as_dict().values()
            for name, value in group.items()
            if name in interesting
        }
        rollup.append({"job": report.name, "counters": counters})
    return rollup


# --------------------------------------------------------------------------
# workload 1: iterative PageRank


def _bench_pagerank(quick: bool) -> dict:
    pages, iterations = (30, 2) if quick else (60, 4)
    graph = generate_web_graph(seed=3, num_pages=pages, avg_degree=4)

    t0 = time.perf_counter()
    local = pagerank(SparkLiteContext.local(3), graph.edges, iterations)
    local_wall = time.perf_counter() - t0

    sc = _compiled_context()
    t0 = time.perf_counter()
    compiled = pagerank(sc, graph.edges, iterations)
    compiled_wall = time.perf_counter() - t0
    runner = sc._compiled_runner()

    assert compiled.ranks == local.ranks, "compiled PageRank diverged"
    # cache() pays off: the link table's shuffle runs once, later
    # iterations read the HDFS materialization.
    assert runner.cache_hits >= iterations, "cached stages were not reused"
    jobs_per_iteration = 4  # join, contributions+zero-rank reduce, 2 counts
    assert runner.jobs_run <= 2 + jobs_per_iteration * iterations + 1, (
        f"stage reuse regressed: {runner.jobs_run} jobs for "
        f"{iterations} iterations"
    )
    return {
        "pages": pages,
        "edges": len(graph.edges),
        "iterations": iterations,
        "bit_identical_to_local": True,
        "local_wall_seconds": local_wall,
        "compiled_wall_seconds": compiled_wall,
        "jobs_run": runner.jobs_run,
        "stages_run": runner.stages_run,
        "cached_stage_hits": runner.cache_hits,
        "final_action_stages": _stage_rollup(runner.last_plan),
    }


# --------------------------------------------------------------------------
# workload 2: the n-gram corpus pipeline


def _bench_ngrams(quick: bool) -> dict:
    words = 400 if quick else 2000
    corpus = generate_shakespeare(seed=5, num_plays=2, words_per_play=words)
    lines = corpus.text.splitlines()

    t0 = time.perf_counter()
    local = ngram_counts(
        SparkLiteContext.local(3).parallelize(lines, 4), n=2
    ).collect()
    local_wall = time.perf_counter() - t0

    sc = _compiled_context()
    t0 = time.perf_counter()
    compiled = ngram_counts(sc.parallelize(lines, 4), n=2).collect()
    compiled_wall = time.perf_counter() - t0

    assert compiled == local, "compiled n-gram pipeline diverged"
    assert dict(compiled) == ngram_reference(corpus.text, n=2)
    return {
        "corpus_lines": len(lines),
        "distinct_bigrams": len(compiled),
        "bit_identical_to_local": True,
        "local_wall_seconds": local_wall,
        "compiled_wall_seconds": compiled_wall,
        "stages": _stage_rollup(sc.last_plan),
    }


# --------------------------------------------------------------------------
# workloads 3+4: multi-stage SQL joins


def _movielens_hive(quick: bool):
    num_ratings = 800 if quick else 4000
    data = generate_movielens(seed=5, num_ratings=num_ratings, num_movies=80)
    hive = HiveLite(MapReduceCluster(num_workers=4, seed=1), multi_stage=True)
    hive.create_table(
        TableSchema(
            name="ratings",
            columns=(
                ("user_id", ColumnType.INT),
                ("movie_id", ColumnType.INT),
                ("rating", ColumnType.FLOAT),
                ("ts", ColumnType.INT),
            ),
            location="/warehouse/ratings.dat",
            delimiter="::",
        ),
        data=data.ratings_text,
    )
    hive.create_table(
        TableSchema(
            name="movies",
            columns=(
                ("id", ColumnType.INT),
                ("title", ColumnType.STRING),
                ("genres", ColumnType.STRING),
            ),
            location="/warehouse/movies.dat",
            delimiter="::",
        ),
        data=data.movies_text,
    )
    return data, hive


def _movielens_ground_truth(data, min_rating: float) -> dict[str, list]:
    titles = {}
    for line in data.movies_text.splitlines():
        movie_id, title, _genres = line.split("::")
        titles[int(movie_id)] = title
    stats: dict[str, list] = {}
    for line in data.ratings_text.splitlines():
        user, movie, rating, _ts = line.split("::")
        if float(rating) >= min_rating and int(movie) in titles:
            entry = stats.setdefault(titles[int(movie)], [0, 0.0])
            entry[0] += 1
            entry[1] += float(rating)
    return stats


def _bench_movielens_join(quick: bool) -> dict:
    data, hive = _movielens_hive(quick)
    sql = (
        "SELECT movies.title, COUNT(*), AVG(ratings.rating) FROM ratings "
        "JOIN movies ON ratings.movie_id = movies.id "
        "WHERE ratings.rating >= 3 "
        "GROUP BY movies.title ORDER BY COUNT(*) DESC LIMIT 10"
    )
    perf = perf_stats()
    before = perf.snapshot()
    t0 = time.perf_counter()
    result = hive.execute(sql)
    wall = time.perf_counter() - t0

    truth = _movielens_ground_truth(data, min_rating=3.0)
    for title, count, avg in result.rows:
        t_count, t_sum = truth[title]
        assert count == t_count, f"{title}: count {count} != {t_count}"
        assert math.isclose(avg, t_sum / t_count, rel_tol=1e-9)
    counts = [row[1] for row in result.rows]
    assert counts == sorted(counts, reverse=True)

    # Predicate pushdown: the WHERE runs map-side, so the join stage
    # shuffles fewer records than the two tables' parsed rows.
    join_counters = {
        name: value
        for group in result.stage_reports[0].counters.as_dict().values()
        for name, value in group.items()
    }
    parsed_rows = data.ratings_text.count("\n") + data.movies_text.count("\n")
    assert join_counters["Map output records"] < parsed_rows, (
        "WHERE was not pushed below the join shuffle"
    )
    return {
        "ratings_rows": data.ratings_text.count("\n"),
        "movies_rows": data.movies_text.count("\n"),
        "result_rows": len(result.rows),
        "matches_ground_truth": True,
        "wall_seconds": wall,
        "join_map_output_records": int(join_counters["Map output records"]),
        "pushdown_effective": True,
        "stages": _report_rollup(result.stage_reports),
        "perf": perf.delta_since(before),
    }


def _bench_airline_join(quick: bool) -> dict:
    from repro.datasets.airline import CARRIERS

    num_rows = 2000 if quick else 8000
    data = generate_airline(seed=7, num_rows=num_rows)
    hive = HiveLite(MapReduceCluster(num_workers=4, seed=1), multi_stage=True)
    hive.create_table(
        TableSchema(
            name="flights",
            columns=(
                ("year", ColumnType.INT),
                ("month", ColumnType.INT),
                ("day", ColumnType.INT),
                ("dow", ColumnType.INT),
                ("dep_time", ColumnType.INT),
                ("carrier", ColumnType.STRING),
                ("flight_num", ColumnType.INT),
                ("arr_delay", ColumnType.INT),
                ("dep_delay", ColumnType.INT),
                ("origin", ColumnType.STRING),
                ("dest", ColumnType.STRING),
                ("distance", ColumnType.INT),
                ("cancelled", ColumnType.INT),
            ),
            location="/warehouse/flights.csv",
            skip_header=True,
        ),
        data=data.csv_text,
    )
    hive.create_table(
        TableSchema(
            name="carriers",
            columns=(
                ("code", ColumnType.STRING),
                ("mean_delay", ColumnType.FLOAT),
            ),
            location="/warehouse/carriers.csv",
        ),
        data="\n".join(f"{code},{mean}" for code, mean, _ in CARRIERS) + "\n",
    )
    # "NA" delay rows (cancelled flights) fail INT parsing and drop out
    # map-side — the same rows the ground truth excludes.
    sql = (
        "SELECT carriers.code, AVG(flights.arr_delay) FROM flights "
        "JOIN carriers ON flights.carrier = carriers.code "
        "GROUP BY carriers.code ORDER BY AVG(flights.arr_delay) LIMIT 5"
    )
    t0 = time.perf_counter()
    result = hive.execute(sql)
    wall = time.perf_counter() - t0

    truth = data.true_average_delays()
    for code, avg in result.rows:
        assert math.isclose(avg, truth[code], rel_tol=1e-9), (
            f"{code}: {avg} != {truth[code]}"
        )
    assert result.rows[0][0] == data.best_carrier()
    averages = [row[1] for row in result.rows]
    assert averages == sorted(averages)
    return {
        "flight_rows": data.num_rows,
        "carriers": len(CARRIERS),
        "result_rows": len(result.rows),
        "matches_ground_truth": True,
        "best_carrier": result.rows[0][0],
        "wall_seconds": wall,
        "stages": _report_rollup(result.stage_reports),
    }


# --------------------------------------------------------------------------


def _experiment(quick: bool) -> dict:
    payload = {
        "benchmark": "workloads_on_fast_engine",
        "quick": quick,
        "host_cores": usable_cores(),
        "pagerank": _bench_pagerank(quick),
        "ngrams": _bench_ngrams(quick),
        "movielens_join": _bench_movielens_join(quick),
        "airline_join": _bench_airline_join(quick),
    }
    if not quick:
        RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_workloads(benchmark, request):
    quick = quick_mode(request)
    payload = benchmark.pedantic(
        _experiment, args=(quick,), rounds=1, iterations=1
    )
    banner("Workloads on the fast engine (compiled sparklite + SQL stages)")
    show(f"host cores: {payload['host_cores']}" + ("; QUICK" if quick else ""))

    pr = payload["pagerank"]
    show(
        f"pagerank     {pr['pages']} pages x {pr['iterations']} iters: "
        f"{pr['jobs_run']} jobs, {pr['cached_stage_hits']} cached-stage hits, "
        f"compiled {pr['compiled_wall_seconds'] * 1000:.0f} ms "
        f"(local {pr['local_wall_seconds'] * 1000:.0f} ms), bit-identical"
    )
    ng = payload["ngrams"]
    show(
        f"ngrams       {ng['corpus_lines']} lines -> "
        f"{ng['distinct_bigrams']} bigrams in {len(ng['stages'])} stage(s), "
        f"compiled {ng['compiled_wall_seconds'] * 1000:.0f} ms, bit-identical"
    )
    ml = payload["movielens_join"]
    show(
        f"movielens    {ml['ratings_rows']} ratings JOIN {ml['movies_rows']} "
        f"movies: {len(ml['stages'])} stages, map-side pushdown kept shuffle "
        f"at {ml['join_map_output_records']} records, matches ground truth"
    )
    al = payload["airline_join"]
    show(
        f"airline      {al['flight_rows']} flights JOIN {al['carriers']} "
        f"carriers: best carrier {al['best_carrier']}, "
        f"{len(al['stages'])} stages, matches ground truth"
    )
    assert ml["stages"] and al["stages"] and len(al["stages"]) >= 3
    if not quick:
        show(f"results written to {RESULT_FILE.name}")
