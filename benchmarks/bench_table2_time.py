"""Table II — Time to Complete (banded 1-4 scale).

Paper:

    First Assignment        3.5±0.7
    Second Assignment       3.1±0.9
    Set up Hadoop cluster   2.5±1.1

Shape claims checked: both assignments average near the "2-4 hours"
band despite being two- and three-week assignments, and cluster setup
sits in the "30 minutes to 2 hours" band ("the majority of the students
were able to set up their Hadoop cluster within the HDFS in-class lab").
"""

from benchmarks.conftest import banner, show
from repro.survey.dataset import synthesize_responses
from repro.survey.stats import summarize_responses
from repro.survey.tables import table2_time

TOLERANCE = 0.05


def bench_table2_time(benchmark):
    responses = benchmark(synthesize_responses, seed=2013)
    table, deviations = table2_time(responses)
    banner("Table II: Time to Complete — reproduced")
    show(table.render())
    show(f"max deviation: {max(deviations.values()):.4f}")
    assert max(deviations.values()) < TOLERANCE

    summary = summarize_responses(responses)
    first = summary["time_taken"]["First Assignment"][0]
    second = summary["time_taken"]["Second Assignment"][0]
    setup = summary["time_taken"]["Set up Hadoop cluster"][0]
    # The second assignment, "despite being twice as long", took no more
    # time; setup was the cheapest activity.
    assert second <= first
    assert setup < second
