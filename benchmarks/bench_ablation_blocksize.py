"""Ablation A2 — block size: parallelism vs per-task overhead.

"dfs.block.size" is the knob the HDFS lab has students reason about:
small blocks mean many map tasks (parallel, but each pays JVM startup
and scheduling latency); huge blocks mean few tasks (cheap, but
under-parallel and coarse for locality).  The sweep shows the U-shape
and where 2012-era Hadoop's 64 MB default sits conceptually.
"""

from benchmarks.conftest import banner, show
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.hdfs.config import HdfsConfig
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.util.rng import RngStream
from repro.util.textable import TextTable

DATA_BYTES = 512 * 1024
BLOCK_SIZES = (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 512 * 1024)


def _sweep():
    text = ZipfTextGenerator(RngStream(33).child("bs")).text_of_bytes(
        DATA_BYTES
    )
    actual_bytes = len(text.encode("utf-8"))
    results = [("__bytes__", actual_bytes)]
    for block_size in BLOCK_SIZES:
        cluster = MapReduceCluster(
            num_workers=8,
            hdfs_config=HdfsConfig(block_size=block_size, replication=2),
            seed=33,
        )
        cluster.client().put_text("/data/in.txt", text)
        report = cluster.run_job(
            WordCountWithCombinerJob(), "/data/in.txt", "/out",
            require_success=True,
        )
        results.append((block_size, report))
    return results


def bench_ablation_blocksize(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _tag, actual_bytes = results.pop(0)
    banner(f"Ablation A2: block size sweep over {actual_bytes // 1024} KB "
           f"of text on 8 workers (16 map slots)")
    table = TextTable(["Block size", "Map tasks", "Avg map time", "Job elapsed"])
    for block_size, report in results:
        table.add_row(
            [f"{block_size // 1024} KB", report.num_maps,
             f"{report.avg_map_time:.2f}s", f"{report.elapsed:.0f}s"]
        )
    show(table.render())
    show("tiny blocks: task-startup overhead dominates; huge blocks: "
         "the cluster's slots sit idle")

    by_size = {bs: r for bs, r in results}
    smallest, largest = BLOCK_SIZES[0], BLOCK_SIZES[-1]
    # One map per block throughout.
    for block_size, report in results:
        expected = -(-actual_bytes // block_size)  # ceil
        assert report.num_maps == expected
    # The extremes both lose to a middle setting.
    middle_elapsed = min(
        by_size[bs].elapsed for bs in BLOCK_SIZES[1:-1]
    )
    assert by_size[smallest].elapsed > middle_elapsed
    assert by_size[largest].elapsed > middle_elapsed
