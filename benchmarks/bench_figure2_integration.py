"""Figure 2 — the HDFS/MapReduce integration picture, regenerated live.

The paper's Figure 2 shows four layers: HDFS file abstraction, NameNode
block metadata in memory, JobTracker task placement driven by block
locations, and the physical ``blk_xxx`` files on each node's Linux file
system.  This benchmark loads a file, runs WordCount, and regenerates
each layer's content from the live cluster, asserting the cross-layer
invariants the figure's arrows assert visually.
"""

import re

from benchmarks.conftest import banner, show
from repro.core.figures import figure2_integration_text
from repro.core.platforms import build_teaching_cluster


def bench_figure2_integration(benchmark):
    text = benchmark.pedantic(
        figure2_integration_text, kwargs={"seed": 3}, rounds=1, iterations=1
    )
    banner("Figure 2: HDFS/MapReduce integration, regenerated")
    show(text)

    # Layer consistency: every block in NameNode metadata appears on at
    # least one node's physical listing, and vice versa.
    metadata_section = text.split("JobTracker")[0]
    physical_section = text.split("Physical view")[1]
    metadata_blocks = set(re.findall(r"blk_\d+", metadata_section))
    physical_blocks = set(re.findall(r"blk_\d+", physical_section))
    assert metadata_blocks
    assert metadata_blocks <= physical_blocks | metadata_blocks
    assert physical_blocks & metadata_blocks

    # The JobTracker layer shows locality-driven placement.
    assert "node_local" in text or "rack_local" in text
    # And the memory-residency captions the paper stresses.
    assert "block metadata lives in memory" in text
    assert "detailed job progress lives in memory" in text.lower()
