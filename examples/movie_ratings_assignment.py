#!/usr/bin/env python
"""Assignment 1 + 2, end to end: the MovieLens/Yahoo pipeline.

Part 1 (serial, no HDFS — assignment 1): per-genre rating statistics
with all three side-file strategies, plus the top-rater question with
its custom composite output value.

Part 2 (on HDFS — assignment 2): the same genre-stats "jar" rerun on
the cluster, HDFS shell observations, then the best-rated Yahoo album.

Run:  python examples/movie_ratings_assignment.py
"""

from repro.datasets.movielens import generate_movielens
from repro.datasets.yahoo_music import generate_yahoo_music
from repro.core.platforms import build_teaching_cluster
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.album_rating import AlbumRatingJob, best_album_from_output
from repro.jobs.movie_genres import GenreStatsJob, parse_stats_value
from repro.jobs.top_rater import RaterProfileWritable, TopRaterJob
from repro.mapreduce.local_runner import LocalJobRunner
from repro.util.textable import TextTable
from repro.util.units import format_duration


def part1_serial() -> None:
    print("=" * 68)
    print("PART 1 (serial, no HDFS): MovieLens genre statistics + top rater")
    print("=" * 68)
    data = generate_movielens(seed=5, num_ratings=4000, num_movies=200)
    print(f"ratings: {data.num_ratings}, movies: {data.num_movies}, "
          f"users: {data.num_users}")

    table = TextTable(["Side-file strategy", "Simulated serial runtime"])
    last_pairs = None
    for strategy in ("naive", "per_task", "cached"):
        localfs = LinuxFileSystem()
        localfs.write_file("/home/student/ratings.dat", data.ratings_text)
        localfs.write_file("/home/student/movies.dat", data.movies_text)
        runner = LocalJobRunner(localfs=localfs, split_size=64 * 1024)
        result = runner.run(
            GenreStatsJob(
                movies_path="/home/student/movies.dat", strategy=strategy
            ),
            "/home/student/ratings.dat",
            "/home/student/out-genres",
        )
        table.add_row([strategy, format_duration(result.simulated_seconds)])
        last_pairs = result.pairs
    print(table.render())
    print("  (the paper: worst implementation 'a little over half an "
          "hour', best 'several minutes')")

    print("\nper-genre statistics (cached strategy):")
    for genre, value in sorted(last_pairs):
        stats = parse_stats_value(value)
        print(f"  {genre:<12} count={int(stats['count']):5d} "
              f"mean={stats['mean']:.3f}")

    localfs = LinuxFileSystem()
    localfs.write_file("/home/student/ratings.dat", data.ratings_text)
    localfs.write_file("/home/student/movies.dat", data.movies_text)
    top = LocalJobRunner(localfs=localfs, split_size=64 * 1024).run(
        TopRaterJob(movies_path="/home/student/movies.dat"),
        "/home/student/ratings.dat",
        "/home/student/out-top",
    )
    user, profile_text = top.pairs[0]
    profile = RaterProfileWritable.decode(profile_text)
    print(f"\ntop rater: user {user} with {profile.num_ratings} ratings; "
          f"favorite genre: {profile.favorite_genre}")
    assert int(user) == data.top_rater()


def part2_hdfs() -> None:
    print()
    print("=" * 68)
    print("PART 2 (on HDFS): rerun the jar + Yahoo best album")
    print("=" * 68)
    platform = build_teaching_cluster(num_workers=4, seed=5, block_size=16384)
    data = generate_movielens(seed=5, num_ratings=2000, num_movies=100)
    platform.put_text("/data/ratings.dat", data.ratings_text)
    platform.put_text("/data/movies.dat", data.movies_text)
    result = platform.run_job(
        GenreStatsJob(movies_path="/data/movies.dat"),
        "/data/ratings.dat",
        "/out/genres",
    )
    print(f"genre stats on HDFS: {result.report.num_maps} maps, "
          f"{result.report.data_local_maps} data-local, "
          f"elapsed {result.report.elapsed:.0f}s")

    shell = platform.shell()
    print("\nHDFS observations (what assignment 2 asks you to record):")
    print(shell.run("-stat", "/data/ratings.dat").output)
    print(shell.run("-count", "/data").output)

    music = generate_yahoo_music(seed=5, num_ratings=3000, num_albums=50)
    platform.put_text("/data/yahoo/ratings.txt", music.ratings_text)
    platform.put_text("/data/yahoo/songs.txt", music.songs_text)
    albums = platform.run_job(
        AlbumRatingJob(songs_path="/data/yahoo/songs.txt"),
        "/data/yahoo/ratings.txt",
        "/out/albums",
    )
    album, avg = best_album_from_output(albums.output_pairs(), min_ratings=5)
    print(f"\nbest-rated album (>=5 ratings): album {album} "
          f"averaging {avg:.2f}/100")
    assert album == music.best_album(min_ratings=5)


if __name__ == "__main__":
    part1_serial()
    part2_hdfs()
