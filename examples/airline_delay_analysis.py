#!/usr/bin/env python
"""The airline-delay lab: three algorithm designs, one answer.

Reproduces the in-class MapReduce lab (Sections II.B / III.A): compute
the average arrival delay per airline three ways — naive, combiner with
a custom (sum, count) value class, and in-mapper combining — and watch
the shuffle-vs-map-time trade-off in the job reports.

Run:  python examples/airline_delay_analysis.py
"""

from repro.datasets.airline import generate_airline
from repro.hdfs.config import HdfsConfig
from repro.jobs.airline_delay import (
    AirlineDelayCombinerJob,
    AirlineDelayInMapperJob,
    AirlineDelayNaiveJob,
)
from repro.mapreduce.cluster import MapReduceCluster
from repro.util.textable import TextTable


def main() -> None:
    print("generating synthetic Airline On-Time data...")
    airline = generate_airline(seed=42, num_rows=6000)
    print(f"  {airline.num_rows} flight records, "
          f"{airline.size_bytes / 1024:.0f} KB")

    cluster = MapReduceCluster(
        num_workers=8,
        hdfs_config=HdfsConfig(block_size=32 * 1024, replication=3),
        seed=42,
    )
    cluster.client().put_text("/data/airline.csv", airline.csv_text)

    variants = [
        ("v1 naive (no combiner possible on averages)", AirlineDelayNaiveJob),
        ("v2 combiner + custom SumCount value class", AirlineDelayCombinerJob),
        ("v3 in-mapper combining via node memory", AirlineDelayInMapperJob),
    ]
    table = TextTable(
        ["Variant", "Avg map time", "Shuffle bytes", "Elapsed"]
    )
    outputs = []
    for i, (label, job_cls) in enumerate(variants):
        report = cluster.run_job(
            job_cls(), "/data/airline.csv", f"/out/v{i + 1}",
            require_success=True,
        )
        outputs.append(dict(cluster.read_output(f"/out/v{i + 1}")))
        table.add_row(
            [label, f"{report.avg_map_time:.2f}s", report.shuffle_bytes,
             f"{report.elapsed:.0f}s"]
        )
    print()
    print(table.render())

    # All three agree, and they agree with the generator's ground truth.
    assert outputs[0].keys() == outputs[1].keys() == outputs[2].keys()
    truth = airline.true_average_delays()
    print("\nper-airline average arrival delay (vs ground truth):")
    for carrier in sorted(truth, key=truth.get):
        print(f"  {carrier}: computed {float(outputs[1][carrier]):6.2f}  "
              f"truth {truth[carrier]:6.2f}")
    print(f"\nbest on-time performer: {airline.best_carrier()}")


if __name__ == "__main__":
    main()
