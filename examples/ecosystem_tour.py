#!/usr/bin/env python
"""The Version-4 ecosystem lecture, runnable: HBase, Hive, and Spark.

Fall 2013 added "one lecture introducing HBase/Hive ... to provide a
more comprehensive view of the Hadoop ecosystem", and the paper's
conclusion points at the next wave: resource managers, in-memory
computing, interactive processing, distributed data stores.  This tour
runs all three higher layers over one simulated HDFS:

1. HBase-lite — random access on top of append-only HDFS, with a
   region split and a WAL crash recovery;
2. Hive-lite — SQL compiled to the same MapReduce the course teaches;
3. Spark-lite — in-memory RDDs whose lineage survives an executor loss.

Run:  python examples/ecosystem_tour.py
"""

from repro.datasets.airline import generate_airline
from repro.hbase import Get, HBaseCluster, Put
from repro.hbase.region import RegionConfig
from repro.hive import ColumnType, HiveLite, TableSchema
from repro.mapreduce.cluster import MapReduceCluster
from repro.hdfs.config import HdfsConfig
from repro.sparklite import SparkLiteContext


def hbase_demo() -> None:
    print("=" * 68)
    print("1. HBase-lite: random access over HDFS")
    print("=" * 68)
    hb = HBaseCluster(
        num_servers=3,
        seed=8,
        wal_sync_every=1,
        region_config=RegionConfig(
            memstore_flush_bytes=1024, split_threshold_bytes=4096
        ),
    )
    table = hb.create_table("users", families=["profile"])
    for i in range(100):
        table.put(
            Put(row=f"user{i:04d}")
            .add("profile", "name", f"Student {i}")
            .add("profile", "year", str(2010 + i % 4))
        )
    print(f"100 rows written; regions now: "
          f"{[e.spec.name for e in hb.master.regions_of('users')]}")
    print(f"random read: user0042 -> "
          f"{table.get(Get(row='user0042')).value('profile', 'name')}")
    hfiles = [p for p in hb.hdfs_footprint() if "hfile" in p]
    print(f"it's all HDFS underneath: {len(hfiles)} HFiles on disk")

    victim = hb.master.regions_of("users")[0].server
    hb.crash_server(victim)
    replayed = hb.recover(victim)
    print(f"crashed {victim}; master reassigned its regions and replayed "
          f"{replayed} WAL edits")
    assert table.get(Get(row="user0042")).value("profile", "name") == (
        "Student 42"
    )
    print("all 100 rows intact after recovery:", table.count() == 100)


def hive_demo() -> None:
    print()
    print("=" * 68)
    print("2. Hive-lite: SQL compiled to MapReduce")
    print("=" * 68)
    cluster = MapReduceCluster(
        num_workers=4,
        hdfs_config=HdfsConfig(block_size=16 * 1024, replication=2),
        seed=8,
    )
    hive = HiveLite(cluster)
    airline = generate_airline(seed=8, num_rows=3000)
    hive.create_table(
        TableSchema(
            name="flights",
            columns=(
                ("year", ColumnType.INT), ("month", ColumnType.INT),
                ("day", ColumnType.INT), ("dow", ColumnType.INT),
                ("deptime", ColumnType.INT), ("carrier", ColumnType.STRING),
                ("flightnum", ColumnType.INT), ("arrdelay", ColumnType.INT),
                ("depdelay", ColumnType.INT), ("origin", ColumnType.STRING),
                ("dest", ColumnType.STRING), ("distance", ColumnType.INT),
                ("cancelled", ColumnType.INT),
            ),
            location="/warehouse/flights.csv",
            skip_header=True,
        ),
        data=airline.csv_text,
    )
    sql = ("SELECT carrier, AVG(arrdelay), COUNT(*) FROM flights "
           "WHERE cancelled = 0 GROUP BY carrier "
           "ORDER BY AVG(arrdelay) LIMIT 5")
    print(hive.explain(sql))
    print()
    result = hive.execute(sql)
    print(result.render())
    print(f"(one MapReduce job: {result.report.num_maps} maps, "
          f"combiner installed automatically)")


def spark_demo() -> None:
    print()
    print("=" * 68)
    print("3. Spark-lite: in-memory RDDs with lineage recovery")
    print("=" * 68)
    from repro.hdfs.cluster import HdfsCluster

    hdfs = HdfsCluster(
        num_datanodes=4,
        config=HdfsConfig(block_size=2048, replication=2),
        seed=8,
    )
    hdfs.client().put_text(
        "/data/log.txt",
        "\n".join(f"evt{i % 7} payload {i}" for i in range(400)) + "\n",
    )
    sc = SparkLiteContext.on_cluster(hdfs)
    events = (
        sc.text_file("/data/log.txt")
        .map(lambda line: (line.split()[0], 1))
        .reduce_by_key(lambda a, b: a + b)
        .cache()
    )
    print("event histogram:", dict(events.collect()))
    print("lineage:")
    print("\n".join("  " + line for line in events.lineage()))

    victim = next(iter(sc.executors))
    lost = sc.crash_executor(victim)
    before = sc.recomputations
    again = dict(events.collect())
    print(f"crashed {victim} (lost {lost} cached partitions); "
          f"lineage recomputed {sc.recomputations - before} partitions; "
          f"answers unchanged: {again == dict(events.collect())}")


def yarn_demo() -> None:
    print()
    print("=" * 68)
    print("4. YARN-lite: one resource manager, many kinds of work")
    print("=" * 68)
    from repro.util.units import GB
    from repro.yarn import Application, Resource, TaskSpec, YarnCluster

    cluster = YarnCluster(
        num_nodes=2,
        policy="fair",
        node_capacity=Resource(memory=8 * GB, vcores=4),
    )
    batch = Application(
        "nightly-batch",
        [TaskSpec(name=f"b{i}", duration=8.0) for i in range(40)],
    )
    query = Application(
        "ad-hoc-query",
        [TaskSpec(name=f"q{i}", duration=2.0) for i in range(4)],
    )
    cluster.submit(batch)
    cluster.sim.run_for(2.0)
    cluster.submit(query)
    cluster.run_until_finished(query, timeout=3600)
    print(f"fair scheduling: the 4-container query finished at "
          f"t={cluster.sim.now:.0f}s while the 40-container batch is at "
          f"{batch.progress:.0%}")
    cluster.run_until_finished(batch, timeout=3600)
    print(f"batch finished at t={cluster.sim.now:.0f}s; "
          f"{cluster.rm.containers_allocated} containers allocated in total")


if __name__ == "__main__":
    hbase_demo()
    hive_demo()
    spark_demo()
    yarn_demo()
