#!/usr/bin/env python
"""Replay the Fall 2012 deadline meltdown — then fix it the 2013 way.

Simulates 39 students against an assignment deadline twice:

1. Version 1: one shared 8-node cluster.  Procrastination piles jobs up
   near the deadline; leaky submissions crash TaskTracker and DataNode
   daemons together; restarts take 15+ minutes of block re-scanning;
   resubmissions during recovery create under-replicated blocks.
2. Version 2+: per-student myHadoop clusters on the supercomputer.
   The same students, the same bugs — but every crash is contained.

Run:  python examples/classroom_deadline_simulation.py
"""

from repro.core.classroom import ClassroomScenario, run_classroom
from repro.util.units import HOUR, MINUTE


def scenario(platform: str) -> ClassroomScenario:
    return ClassroomScenario(
        name=f"demo-{platform}",
        platform=platform,
        num_students=39,
        window=48 * HOUR,
        mean_head_start=10 * HOUR,
        buggy_probability=0.55,
        fix_probability=0.45,
        instructor_reaction_delay=45 * MINUTE,
        input_bytes=120 * 1024,
        seed=2012,
    )


def main() -> None:
    print("Simulating Fall 2012: 39 students, one shared cluster, one "
          "deadline...")
    v1 = run_classroom(scenario("dedicated"))
    print()
    print(v1.describe())
    print("\nselected timeline events:")
    interesting = [
        (t, msg)
        for t, msg in v1.timeline
        if "restart" in msg or "notified" in msg
    ][:10]
    for t, msg in interesting:
        print(f"  [{t / 3600:6.2f}h] {msg}")

    print("\n" + "-" * 68)
    print("Simulating Spring 2013: same class, per-student myHadoop "
          "clusters...")
    v2 = run_classroom(scenario("myhadoop"))
    print()
    print(v2.describe())

    print("\n" + "=" * 68)
    print(f"completion: shared cluster {v1.completion_fraction:.0%}  ->  "
          f"isolated clusters {v2.completion_fraction:.0%}")
    print("(the paper: 'only about one third of the students ... were able "
          "to complete' vs 'all of the students completed both MapReduce "
          "assignments on time')")


if __name__ == "__main__":
    main()
