#!/usr/bin/env python
"""Workloads on the fast engine: compiled sparklite + multi-stage SQL.

Three PR 10 workloads, each riding the MapReduce engine underneath:

1. iterative PageRank — an RDD program whose every iteration compiles
   to a join + reduce stage pair, with ``cache()`` materializing the
   link table in HDFS once;
2. the n-gram corpus pipeline — vectorised tokenize in the map stage,
   one shuffle;
3. a MovieLens SQL join — ``SELECT ... JOIN ... GROUP BY ... ORDER BY
   ... LIMIT`` lowered to repartition-join, aggregation, and
   total-order sort jobs chained through HDFS temp files.

Run:  python examples/workloads_on_fast_engine.py
"""

from repro.datasets.movielens import generate_movielens
from repro.datasets.shakespeare import generate_shakespeare
from repro.hive import ColumnType, HiveLite, TableSchema
from repro.jobs.ngrams import ngram_counts, top_ngrams
from repro.jobs.pagerank import generate_web_graph, pagerank
from repro.sparklite import SparkLiteContext


def print_stage_plan(sc: SparkLiteContext) -> None:
    for stage in sc.last_plan:
        counters = stage["counters"]
        print(
            f"  stage {stage['stage']:<14} map_in={counters['Map input records']:>5} "
            f"reduce_out={counters['Reduce output records']:>5}"
        )


def pagerank_on_mapreduce() -> None:
    print("=" * 68)
    print("1. PageRank, compiled onto MapReduce stages")
    print("=" * 68)
    sc = SparkLiteContext.on_mapreduce(num_workers=4, seed=1)
    graph = generate_web_graph(seed=3, num_pages=60, avg_degree=4)
    result = pagerank(sc, graph.edges, iterations=4)
    runner = sc._compiled_runner()
    print(f"pages: {graph.num_pages}, edges: {len(graph.edges)}, "
          f"iterations: {result.iterations}")
    print(f"stages run: {runner.stages_run}, "
          f"cached-stage hits: {runner.cache_hits}")
    print("top pages by rank:")
    for page, rank in result.top(5):
        print(f"  page {page:>3}  rank {rank:.4f}")


def ngrams_on_mapreduce() -> None:
    print()
    print("=" * 68)
    print("2. N-gram pipeline over the vectorised tokenizer")
    print("=" * 68)
    sc = SparkLiteContext.on_mapreduce(num_workers=4, seed=1)
    corpus = generate_shakespeare(seed=5, num_plays=2, words_per_play=800)
    lines = sc.parallelize(corpus.text.splitlines(), 4)
    counts = ngram_counts(lines, n=2)
    top = top_ngrams(counts, k=5)
    print("most frequent bigrams:")
    for gram, count in top:
        print(f"  {gram:<24} {count}")
    print("last action's stage rollup:")
    print_stage_plan(sc)


def movielens_sql_join() -> None:
    print()
    print("=" * 68)
    print("3. MovieLens SQL join as chained MapReduce stages")
    print("=" * 68)
    data = generate_movielens(seed=5, num_ratings=4000, num_movies=120)
    from repro.mapreduce.cluster import MapReduceCluster

    hive = HiveLite(MapReduceCluster(num_workers=4, seed=1), multi_stage=True)
    hive.create_table(
        TableSchema(
            name="ratings",
            columns=(
                ("user_id", ColumnType.INT),
                ("movie_id", ColumnType.INT),
                ("rating", ColumnType.FLOAT),
                ("ts", ColumnType.INT),
            ),
            location="/warehouse/ratings.dat",
            delimiter="::",
        ),
        data=data.ratings_text,
    )
    hive.create_table(
        TableSchema(
            name="movies",
            columns=(
                ("id", ColumnType.INT),
                ("title", ColumnType.STRING),
                ("genres", ColumnType.STRING),
            ),
            location="/warehouse/movies.dat",
            delimiter="::",
        ),
        data=data.movies_text,
    )
    sql = (
        "SELECT movies.title, COUNT(*), AVG(ratings.rating) FROM ratings "
        "JOIN movies ON ratings.movie_id = movies.id "
        "WHERE ratings.rating >= 3 "
        "GROUP BY movies.title ORDER BY COUNT(*) DESC LIMIT 5"
    )
    print(hive.explain(sql))
    result = hive.execute(sql)
    print(f"\nstages run: {len(result.stage_reports)}")
    print("most-rated well-liked movies:")
    for title, count, avg in result.rows:
        print(f"  {title:<32} ratings={count:>3}  avg={avg:.2f}")


if __name__ == "__main__":
    pagerank_on_mapreduce()
    ngrams_on_mapreduce()
    movielens_sql_join()
