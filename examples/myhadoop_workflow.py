#!/usr/bin/env python
"""The myHadoop workflow: your own Hadoop cluster on a shared machine.

Walks the full Versions-2-4 student experience: qsub a reservation,
provision a personal Hadoop cluster with the (modified) myHadoop
scripts, stage data, run a job, export results — then demonstrates the
two classic failure modes: wrong paths, and another student's ghost
daemons squatting on your ports.

Run:  python examples/myhadoop_workflow.py
"""

from repro.core.platforms import build_myhadoop_platform
from repro.hdfs.config import HdfsConfig
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.myhadoop.provision import MyHadoopConfig
from repro.myhadoop.submission import BatchSubmission
from repro.util.errors import BadPathError, PortInUseError
from repro.util.units import MINUTE


def main() -> None:
    env = build_myhadoop_platform(seed=3, supercomputer_nodes=64)
    print(f"supercomputer: {len(env.topology)} nodes, "
          f"{env.topology.num_racks()} racks "
          f"(parallel FS file locking: "
          f"{env.pfs.supports_file_locking})")

    # --- the happy path ------------------------------------------------
    home = LinuxFileSystem()
    home.write_file("/home/alice/shakespeare.txt",
                    "to be or not to be\n" * 200)
    config = MyHadoopConfig(
        user="alice",
        num_nodes=8,
        hdfs=HdfsConfig(block_size=4096, replication=2),
    )
    submission = BatchSubmission(
        env.scheduler, env.provisioner, config, home, walltime=2 * 3600
    )
    submission.add_stage_in("/home/alice/shakespeare.txt",
                            "/user/alice/input.txt")
    submission.add_job(
        WordCountWithCombinerJob(),
        "/user/alice/input.txt",
        "/user/alice/wc-out",
        export_local="/home/alice/results.txt",
    )
    result = submission.run()
    print("\n--- alice's PBS output file " + "-" * 27)
    print(result.render_log())
    print("exported results:",
          home.read_text("/home/alice/results.txt").replace("\n", "  "))

    # --- failure mode 1: the classic wrong-path configuration ----------
    print("\n--- failure mode 1: bad paths " + "-" * 25)
    try:
        MyHadoopConfig(user="bob", data_dir="/home/bob/hdfs-data").validate()
    except BadPathError as exc:
        print(f"myhadoop-configure: {exc}")

    # --- failure mode 2: ghost daemons ----------------------------------
    print("\n--- failure mode 2: ghost daemons " + "-" * 21)
    r_bob = env.scheduler.qsub("bob", 4, 3600)
    bob_cluster = env.provisioner.start_cluster(
        r_bob, MyHadoopConfig(user="bob", num_nodes=4,
                              hdfs=HdfsConfig(block_size=4096, replication=2))
    )
    env.provisioner.abandon_cluster(bob_cluster)  # logs out, no stop-all.sh
    env.scheduler.release(r_bob)
    print(f"bob abandoned daemons on {bob_cluster.node_names}")

    r_carol = env.scheduler.qsub("carol", 4, 3600)
    print(f"carol got nodes {r_carol.node_names()} (LIFO reuse)")
    try:
        env.provisioner.start_cluster(
            r_carol,
            MyHadoopConfig(user="carol", num_nodes=4,
                           hdfs=HdfsConfig(block_size=4096, replication=2)),
        )
    except PortInUseError as exc:
        print(f"carol's start-all.sh failed: {exc}")
    print("carol waits for the scheduler's 15-minute cleanup sweep...")
    env.sim.run_for(16 * MINUTE)
    carol_cluster = env.provisioner.start_cluster(
        r_carol,
        MyHadoopConfig(user="carol", num_nodes=4,
                       hdfs=HdfsConfig(block_size=4096, replication=2)),
    )
    print(f"carol's cluster is up on {carol_cluster.node_names}")
    env.provisioner.stop_cluster(carol_cluster)
    env.scheduler.release(r_carol)


if __name__ == "__main__":
    main()
