#!/usr/bin/env python
"""Version 1's second assignment: mine the Google cluster trace.

Finds the computing job with the largest number of task resubmissions,
using the two-job MapReduce chain — and then demonstrates why the
assignment was hard in Fall 2012 by crashing a worker mid-run and
letting the framework's resubmission machinery (the very thing the
assignment measures in the trace!) recover.

Run:  python examples/google_trace_analysis.py
"""

from repro.datasets.google_trace import EVENT_NAMES, generate_google_trace
from repro.hdfs.config import HdfsConfig
from repro.jobs.trace_resubmissions import find_max_resubmission_job
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.streaming import streaming_job


def main() -> None:
    print("generating a Google-cluster-trace-style task event log...")
    trace = generate_google_trace(seed=99, num_jobs=60, flaky_fraction=0.2)
    print(f"  {trace.num_jobs} jobs, {trace.num_events} events, "
          f"{trace.size_bytes / 1024:.0f} KB "
          f"(the real trace: 171 GB)")
    print(f"  event vocabulary: {', '.join(EVENT_NAMES.values())}")

    cluster = MapReduceCluster(
        num_workers=8,
        hdfs_config=HdfsConfig(block_size=16 * 1024, replication=3),
        seed=99,
    )
    cluster.client().put_text("/data/trace.csv", trace.events_text)

    job_id, resubs = find_max_resubmission_job(
        cluster, "/data/trace.csv", "/work/trace"
    )
    print(f"\nanswer: job {job_id} with {resubs} task resubmissions")
    assert (job_id, resubs) == trace.max_resubmission_job()
    print("  (matches the generator's ground truth)")

    # Now live the assignment's lesson: our own framework resubmits too.
    print("\ncrashing a worker mid-job to watch MapReduce recover...")
    wc = streaming_job(
        "survivor",
        lambda k, v: ((f"evt{v.split(',')[4]}", 1) for v in [v] if "," in v),
        lambda k, vs: [(k, sum(vs))],
        conf=JobConf(name="survivor"),
    )
    running = cluster.submit(wc, "/data/trace.csv", "/work/survivor")
    cluster.hdfs.wait_until(
        lambda: any(t.output is not None for t in running.map_tasks),
        timeout=600,
        step=0.5,
    )
    victim = next(t.completed_on for t in running.map_tasks if t.completed_on)
    cluster.crash_worker(victim)
    print(f"  crashed {victim} (TaskTracker + DataNode together)")
    cluster.wait_for_job(running, timeout=24 * 3600)
    report = running.report()
    print(f"  job state: {report.state}; our own task resubmissions: "
          f"{report.total_resubmissions}; killed attempts: "
          f"{report.killed_attempts}")
    print("\nevent-type histogram from the recovered job:")
    for key, value in sorted(cluster.read_output("/work/survivor")):
        name = EVENT_NAMES.get(int(key.replace("evt", "")), key)
        print(f"  {name:<10} {value}")


if __name__ == "__main__":
    main()
