#!/usr/bin/env python
"""Quickstart: a four-node Hadoop cluster in five minutes.

Builds a teaching cluster, loads a file, runs WordCount, and then pokes
at everything the course's HDFS lab has students observe: the shell,
fsck, the dfsadmin report, and the Figure-2 layered view of where the
bytes actually live.

Run:  python examples/quickstart.py
"""

from repro.core.platforms import build_teaching_cluster
from repro.hdfs.fsck import fsck
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.webui import render_integration_view


def main() -> None:
    # 1. A cluster: 4 workers, each running a DataNode + TaskTracker.
    platform = build_teaching_cluster(num_workers=4, seed=7, block_size=2048)
    print(f"cluster up: {platform.description}")

    # 2. Load data into HDFS (it splits into blocks and replicates).
    text = "to be or not to be that is the question\n" * 200
    platform.put_text("/user/demo/input.txt", text)
    status = platform.mr.client().status("/user/demo/input.txt")
    print(
        f"loaded {status.length} bytes as {status.block_count} blocks "
        f"(replication {status.replication})"
    )

    # 3. Run WordCount (with the reducer reused as a combiner).
    result = platform.run_job(
        WordCountWithCombinerJob(), "/user/demo/input.txt", "/user/demo/out"
    )
    print("\n--- job report " + "-" * 40)
    print(result.report.render())

    top = sorted(result.output_pairs(), key=lambda kv: -int(kv[1]))[:5]
    print("\ntop words:", ", ".join(f"{w}={c}" for w, c in top))

    # 4. The things students are asked to observe.
    shell = platform.shell()
    print("\n--- hadoop fs -ls /user/demo " + "-" * 26)
    print(shell.run("-ls", "/user/demo").output)
    print("\n--- hadoop fsck / " + "-" * 37)
    print(fsck(platform.mr.hdfs.namenode).render())
    print("\n--- Figure 2, live " + "-" * 36)
    print(
        render_integration_view(platform.mr, path="/user/demo")
    )


if __name__ == "__main__":
    main()
