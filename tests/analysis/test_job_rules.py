"""MRJ0xx job rules: each buggy fixture trips exactly its own rule.

The fixtures under ``fixtures/`` are the "student submissions" of the
lint story — one deliberately-planted bug class per file.  Precision
matters as much as recall: a fixture that also trips a *neighbouring*
rule means the rules overlap and the diagnostic would confuse the
student it is aimed at.
"""

from pathlib import Path

import pytest

from repro.analysis import JOB_RULES, lint_jobs, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

FIXTURE_RULES = {
    "buggy_mrj001_random.py": "MRJ001",
    "buggy_mrj002_input_mutation.py": "MRJ002",
    "buggy_mrj003_unhashable_key.py": "MRJ003",
    "buggy_mrj004_emit_alias.py": "MRJ004",
    "buggy_mrj005_stateful.py": "MRJ005",
    "buggy_mrj006_sidefile.py": "MRJ006",
    "buggy_mrj007_avg_combiner.py": "MRJ007",
}


class TestFixtureCatalog:
    def test_one_fixture_per_job_rule(self):
        assert sorted(FIXTURE_RULES.values()) == sorted(JOB_RULES)

    def test_fixture_files_exist(self):
        on_disk = {p.name for p in FIXTURES.glob("buggy_mrj*.py")}
        assert on_disk == set(FIXTURE_RULES)


class TestEachFixtureTripsExactlyItsRule:
    @pytest.mark.parametrize(
        "filename,rule",
        sorted(FIXTURE_RULES.items()),
        ids=[rule for _, rule in sorted(FIXTURE_RULES.items())],
    )
    def test_fixture(self, filename, rule):
        findings = lint_paths([str(FIXTURES / filename)], families=("jobs",))
        assert findings, f"{filename} produced no findings"
        assert {f.rule for f in findings} == {rule}

    def test_findings_carry_location_and_hint(self):
        findings = lint_paths(
            [str(FIXTURES / "buggy_mrj001_random.py")], families=("jobs",)
        )
        (finding,) = findings
        assert finding.line > 0
        assert finding.path.endswith("buggy_mrj001_random.py")
        assert finding.hint
        assert finding.severity in ("error", "warning")


class TestInterproceduralNondeterminism:
    """The mrlint 2.0 demo pair: the effect is two calls from map()."""

    def test_helper_chain_is_flagged(self):
        findings = lint_paths(
            [str(FIXTURES / "interproc_mrj001_buggy.py")], families=("jobs",)
        )
        assert {f.rule for f in findings} == {"MRJ001"}
        # The message names the chain, not just the leaf call.
        assert any("sample" in f.message for f in findings)

    def test_seeded_helper_chain_is_clean(self):
        findings = lint_paths(
            [str(FIXTURES / "interproc_mrj001_clean.py")], families=("jobs",)
        )
        assert findings == []


class TestReferenceJobsAreClean:
    def test_lint_jobs_is_clean(self):
        """Every shipped job in repro.jobs and examples/ passes mrlint."""
        assert lint_jobs() == []
