"""MRS2xx sparklite rules: closure traps flagged, clean pipelines pass."""

from pathlib import Path

import pytest

from repro.analysis import SPARKLITE_RULES, lint_paths, lint_source
from repro.sparklite import lint_rdd_pipeline

FIXTURES = Path(__file__).parent / "fixtures"

FIXTURE_RULES = {
    "buggy_mrs201_nondet_closure.py": "MRS201",
    "buggy_mrs202_captured_counter.py": "MRS202",
    "buggy_mrs203_nested_action.py": "MRS203",
    "buggy_mrs204_mean_reduce.py": "MRS204",
}


def sparklite_lint(source: str):
    return lint_source(source, "pipeline.py", families=("sparklite",))


class TestFixtureCatalog:
    def test_one_fixture_per_rule(self):
        assert sorted(FIXTURE_RULES.values()) == sorted(SPARKLITE_RULES)

    def test_fixture_files_exist(self):
        on_disk = {p.name for p in FIXTURES.glob("buggy_mrs*.py")}
        assert on_disk == set(FIXTURE_RULES)


class TestEachFixtureTripsExactlyItsRule:
    @pytest.mark.parametrize(
        "filename,rule",
        sorted(FIXTURE_RULES.items()),
        ids=[rule for _, rule in sorted(FIXTURE_RULES.items())],
    )
    def test_fixture(self, filename, rule):
        findings = lint_paths(
            [str(FIXTURES / filename)], families=("sparklite",)
        )
        assert findings, f"{filename} produced no findings"
        assert {f.rule for f in findings} == {rule}

    def test_clean_pipeline_fixture_passes(self):
        findings = lint_paths(
            [str(FIXTURES / "clean_sparklite_pipeline.py")],
            families=("sparklite",),
        )
        assert findings == []


class TestClosureResolution:
    """MRS201 is exactly as interprocedural as MRJ001."""

    def test_inline_lambda(self):
        src = (
            "import random\n"
            "def pipeline(sc):\n"
            "    rdd = sc.parallelize(range(10))\n"
            "    return rdd.map(lambda x: x + random.random()).collect()\n"
        )
        assert {f.rule for f in sparklite_lint(src)} == {"MRS201"}

    def test_helper_behind_a_helper(self):
        src = (
            "import random\n"
            "def noise():\n"
            "    return random.random()\n"
            "def jitter(x):\n"
            "    return x + noise()\n"
            "def pipeline(sc):\n"
            "    return sc.parallelize(range(10)).map(jitter).collect()\n"
        )
        findings = sparklite_lint(src)
        assert {f.rule for f in findings} == {"MRS201"}
        assert any("noise" in f.message for f in findings)

    def test_seeded_rng_closure_is_clean(self):
        src = (
            "import random\n"
            "def pipeline(sc, seed):\n"
            "    rng = random.Random(seed)\n"
            "    keep = rng.random()\n"
            "    rdd = sc.parallelize(range(10))\n"
            "    return rdd.map(lambda x: x * 2).collect()\n"
        )
        assert sparklite_lint(src) == []

    def test_shared_helper_reported_once(self):
        src = (
            "import time\n"
            "def stamp(x):\n"
            "    return (x, time.time())\n"
            "def pipeline(sc):\n"
            "    a = sc.parallelize(range(5)).map(stamp)\n"
            "    b = sc.parallelize(range(5)).map(stamp)\n"
            "    return a.union(b).collect()\n"
        )
        findings = sparklite_lint(src)
        assert len([f for f in findings if f.rule == "MRS201"]) == 1


class TestAssociativity:
    def test_associative_reduce_is_clean(self):
        src = (
            "def pipeline(sc):\n"
            "    return sc.parallelize(range(10)).reduce(lambda a, b: a + b)\n"
        )
        assert sparklite_lint(src) == []

    def test_constant_scale_in_mapper_is_not_flagged(self):
        # x * 2 - 1 touches one value; only combining arithmetic counts.
        src = (
            "def pipeline(sc):\n"
            "    rdd = sc.parallelize(range(10)).map(lambda x: x * 2 - 1)\n"
            "    return rdd.reduce(lambda a, b: a + b)\n"
        )
        assert sparklite_lint(src) == []

    def test_reduce_by_key_subtraction_flagged(self):
        src = (
            "def pipeline(sc):\n"
            "    pairs = sc.parallelize([('a', 1), ('a', 2)])\n"
            "    return pairs.reduce_by_key(lambda a, b: a - b).collect()\n"
        )
        assert {f.rule for f in sparklite_lint(src)} == {"MRS204"}


class TestEntryPoint:
    def test_lint_rdd_pipeline_on_fixture(self):
        findings = lint_rdd_pipeline(
            str(FIXTURES / "buggy_mrs204_mean_reduce.py")
        )
        assert {f.rule for f in findings} == {"MRS204"}

    def test_lint_rdd_pipeline_default_examples_clean(self):
        assert lint_rdd_pipeline() == []
