"""MRJ001 fixture: unseeded randomness inside map().

Sampling looks harmless on one laptop run; under speculative execution
or failure recovery the re-executed attempt samples *different* records
and the job's output changes between runs.
"""

import random

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


class RandomSampleMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for token in value.value.split():
            if random.random() < 0.1:
                context.write(token, 1)
