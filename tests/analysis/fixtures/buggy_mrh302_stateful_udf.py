"""MRH302 fixture: a UDF that numbers rows through module state.

Row ids depend on which executor saw which rows in which order — the
"ids" are neither stable nor unique across attempts.
"""

_ROW_IDS = {}


def row_id(value):
    _ROW_IDS[value] = len(_ROW_IDS)
    return str(_ROW_IDS[value])


def build(engine):
    engine.register_udf("row_id", row_id)
    return engine
