"""Interprocedural MRJ001 demo: map() -> sample() -> random.random().

The nondeterminism is two calls away from the task method — a purely
syntactic scan of map() sees nothing.  The taint engine's summaries
carry the effect up the call chain and the finding names it.
"""

import random

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


def sample():
    return random.random()


class SampledMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        if sample() < 0.1:
            context.write(key.value, value.value)
