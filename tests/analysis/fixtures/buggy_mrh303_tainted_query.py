"""MRH303 fixture: SQL text built from the wall clock.

The query string itself differs run-to-run, which defeats plan
caching, auditing, and the course's replayability contract.
"""

import time


def report(engine):
    cutoff = time.time() - 3600
    query = f"SELECT carrier FROM flights WHERE delay > {cutoff}"
    return engine.execute(query)
