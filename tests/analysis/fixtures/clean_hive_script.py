"""Clean hive fixture: pure UDF, conf-derived query parameters.

``shout`` is a pure function of its argument, and the threshold is read
from configuration before being formatted into the SQL — the query text
is identical every run.
"""


def shout(value):
    return value.upper()


def report(engine, conf):
    engine.register_udf("shout", shout)
    cutoff = int(conf.get("report.cutoff", 15))
    query = f"SELECT shout(carrier) FROM flights WHERE delay > {cutoff}"
    return engine.execute(query)
