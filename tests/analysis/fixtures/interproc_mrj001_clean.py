"""Interprocedural MRJ001 counter-demo: the same shape, seeded from conf.

Identical call structure to ``interproc_mrj001_buggy.py`` — map() draws
through a helper — but the RNG is seeded in setup() from a job
parameter, so re-executed attempts replay the same draws.  The taint
engine tracks the seeded tag through ``self.rng`` and stays quiet.
"""

import random

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


class SeededSampledMapper(Mapper):
    def setup(self, context: Context) -> None:
        self.rng = random.Random(context.conf.get("sample.seed"))

    def sample(self) -> float:
        return self.rng.random()

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        if self.sample() < 0.1:
            context.write(key.value, value.value)
