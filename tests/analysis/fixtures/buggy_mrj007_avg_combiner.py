"""MRJ007 fixture: an averaging combiner (mean of means is not the mean).

The combiner contract is a monoid: associative, same emit type.  A
combiner that divides turns partial results into ratios, and a second
combine round averages the averages — the answer now depends on how
many times the combiner happened to run.
"""

from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.types import Writable


class DelayMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        airline, delay = value.value.split(",")
        context.write(airline, float(delay))


class AverageCombiner(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        delays = [v.value for v in values]
        context.write(key, sum(delays) / len(delays))


class AverageDelayJob(Job):
    mapper = DelayMapper
    reducer = AverageCombiner
    combiner = AverageCombiner
