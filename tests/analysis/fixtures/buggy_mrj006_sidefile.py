"""MRJ006 fixture: re-reads the side file on every map() call.

The movie-genres anti-pattern: a full stream + open overhead per input
record, which the paper's assignment measures as an order-of-magnitude
slowdown against the load-once-in-setup version.
"""

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


class LookupEveryCallMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        table = context.read_side_file("/data/lookup.txt")
        movie_id = value.value.split(",")[0]
        if movie_id in table:
            context.write(movie_id, 1)
