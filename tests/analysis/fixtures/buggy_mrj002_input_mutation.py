"""MRJ002 fixture: reduce() sorts its input value list in place.

The framework owns the ``values`` list (it may re-serve it to a
combiner pass or re-sort the run); editing it in place corrupts the
framework's view of the shuffle data.
"""

from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.types import Writable


class MedianReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        values.sort(key=lambda w: w.value)
        median = values[len(values) // 2].value
        context.write(key, median)
