"""MRH301 fixture: a UDF that samples per row.

The UDF runs map-side once per row per attempt; a speculative re-run
jitters the same input differently and the query writes different rows.
"""

import random


def jitter(value):
    return str(float(value) + random.random())


def build(engine):
    engine.register_udf("jitter", jitter)
    return engine
