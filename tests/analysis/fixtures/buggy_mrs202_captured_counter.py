"""MRS202 fixture: the captured-accumulator anti-pattern.

``counts`` lives on the driver; the closure shipped to executors
mutates the *executor's copy*, so the dict returned at the end is
empty no matter how many words flowed through the pipeline.
"""


def pipeline(sc):
    counts = {}

    def tally(word):
        counts[word] = counts.get(word, 0) + 1
        return word

    words = sc.text_file("/data/corpus.txt").flat_map(lambda l: l.split())
    words.map(tally).count()
    return counts
