"""MRS203 fixture: an action on a captured RDD inside a closure.

A hand-rolled join: every record of ``orders`` re-collects the whole
``users`` RDD — one nested job launch *per record*.  Collect the small
side once on the driver (or use ``join()``).
"""


def pipeline(sc):
    users = sc.parallelize([(1, "ada"), (2, "lin")], num_partitions=2)
    orders = sc.parallelize([(1, 99), (2, 120)], num_partitions=2)
    return orders.map(lambda kv: (kv[0], kv[1], users.collect())).collect()
