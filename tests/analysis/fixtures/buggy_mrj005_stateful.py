"""MRJ005 fixture: cross-call state with no cleanup() flush.

A classic half-remembered in-mapper-combining attempt: the counts dict
grows across map() calls but nothing ever emits it — on a real cluster
every map task silently discards its accumulated state.
"""

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


class ForgetfulCountingMapper(Mapper):
    def setup(self, context: Context) -> None:
        self._counts = {}

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for token in value.value.split():
            self._counts[token] = self._counts.get(token, 0) + 1
