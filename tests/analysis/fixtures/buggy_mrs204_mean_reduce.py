"""MRS204 fixture: averaging inside reduce().

``(a + b) / 2`` is not associative — partial results merge in
partition order, so the "mean" changes whenever ``num_partitions``
does.  Emit ``(sum, count)`` pairs and divide once on the driver.
"""


def pipeline(sc):
    readings = sc.parallelize([3.0, 5.0, 7.0, 9.0], num_partitions=2)
    return readings.reduce(lambda a, b: (a + b) / 2)
