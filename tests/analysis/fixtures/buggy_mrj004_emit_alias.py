"""MRJ004 fixture: emits an accumulator it keeps mutating.

``context.write`` stores a *reference*; every append after the write
rewrites the already-emitted value, so all emitted pairs end up
aliasing the same final list.
"""

from repro.mapreduce.api import Context, Reducer
from repro.mapreduce.types import Writable


class RunningHistoryReducer(Reducer):
    def setup(self, context: Context) -> None:
        self._window = []

    def reduce(self, key: Writable, values, context: Context) -> None:
        self._window.append(len(list(values)))
        context.write(key, self._window)

    def cleanup(self, context: Context) -> None:
        self._window.clear()
