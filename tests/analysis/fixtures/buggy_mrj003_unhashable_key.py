"""MRJ003 fixture: emits a list as the shuffle key.

The partitioner hashes keys and the sort orders them; a list is
neither hashable nor comparable against the other keys, so the job
dies in the shuffle — far from this line.
"""

from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.types import Writable


class BigramMapper(Mapper):
    def map(self, key: Writable, value: Writable, context: Context) -> None:
        tokens = value.value.split()
        for first, second in zip(tokens, tokens[1:]):
            context.write([first, second], 1)
