"""Clean sparklite fixture: the well-behaved version of every MRS trap.

Randomness is seeded on the driver before the job, aggregation goes
through ``reduce_by_key`` with an associative operand, and nothing in a
closure mutates captured state or launches nested actions.
"""

import random


def tokenize(line):
    return line.split()


def pipeline(sc, seed):
    rng = random.Random(seed)
    cutoff = rng.random()  # driver-side, fixed before the job runs
    lines = sc.text_file("/data/corpus.txt")
    words = lines.flat_map(tokenize).map(lambda w: (w, 1))
    counts = words.reduce_by_key(lambda a, b: a + b)
    return [kv for kv in counts.collect() if kv[1] >= cutoff]
