"""MRS201 fixture: a transformation closure that reaches the wall clock.

``stamp`` looks pure from the pipeline's point of view, but the taint
engine chases the helper: recomputing a lost partition re-stamps the
records with *new* times, so lineage recovery silently changes data.
"""

import time


def stamp(record):
    return (record, time.time())


def pipeline(sc):
    events = sc.parallelize(range(100), num_partitions=4)
    return events.map(stamp).collect()
