"""MRH3xx hive rules: UDF purity, cross-call state, and SQL taint."""

from pathlib import Path

import pytest

from repro.analysis import HIVE_RULES, lint_paths, lint_source
from repro.analysis.hive_rules import lint_udf_callables

FIXTURES = Path(__file__).parent / "fixtures"

FIXTURE_RULES = {
    "buggy_mrh301_nondet_udf.py": "MRH301",
    "buggy_mrh302_stateful_udf.py": "MRH302",
    "buggy_mrh303_tainted_query.py": "MRH303",
}


def hive_lint(source: str):
    return lint_source(source, "script.py", families=("hive",))


class TestFixtureCatalog:
    def test_one_fixture_per_rule(self):
        assert sorted(FIXTURE_RULES.values()) == sorted(HIVE_RULES)

    def test_fixture_files_exist(self):
        on_disk = {p.name for p in FIXTURES.glob("buggy_mrh*.py")}
        assert on_disk == set(FIXTURE_RULES)


class TestEachFixtureTripsExactlyItsRule:
    @pytest.mark.parametrize(
        "filename,rule",
        sorted(FIXTURE_RULES.items()),
        ids=[rule for _, rule in sorted(FIXTURE_RULES.items())],
    )
    def test_fixture(self, filename, rule):
        findings = lint_paths([str(FIXTURES / filename)], families=("hive",))
        assert findings, f"{filename} produced no findings"
        assert {f.rule for f in findings} == {rule}

    def test_clean_script_fixture_passes(self):
        findings = lint_paths(
            [str(FIXTURES / "clean_hive_script.py")], families=("hive",)
        )
        assert findings == []


class TestUdfResolution:
    def test_udf_calling_nondet_helper_flagged(self):
        src = (
            "import random\n"
            "def noise():\n"
            "    return random.random()\n"
            "def jitter(v):\n"
            "    return str(float(v) + noise())\n"
            "def build(engine):\n"
            "    engine.register_udf('jitter', jitter)\n"
        )
        findings = hive_lint(src)
        assert {f.rule for f in findings} == {"MRH301"}
        assert any("noise" in f.message for f in findings)

    def test_lambda_udf_with_default_arg_state(self):
        src = (
            "def build(engine):\n"
            "    def tag(v, seen={}):\n"
            "        seen[v] = True\n"
            "        return v\n"
            "    engine.register_udf('tag', tag)\n"
        )
        assert {f.rule for f in hive_lint(src)} == {"MRH302"}


class TestSqlSinks:
    def test_literal_sql_is_clean(self):
        src = (
            "def report(engine):\n"
            "    return engine.execute('SELECT carrier FROM flights')\n"
        )
        assert hive_lint(src) == []

    def test_conf_derived_threshold_is_clean(self):
        src = (
            "def report(engine, conf):\n"
            "    cutoff = int(conf.get('cutoff', 15))\n"
            "    q = f'SELECT carrier FROM flights WHERE delay > {cutoff}'\n"
            "    return engine.execute(q)\n"
        )
        assert hive_lint(src) == []

    def test_explain_is_also_a_sink(self):
        src = (
            "import time\n"
            "def report(engine):\n"
            "    q = f'SELECT carrier FROM flights -- {time.time()}'\n"
            "    return engine.explain(q)\n"
        )
        assert {f.rule for f in hive_lint(src)} == {"MRH303"}

    def test_module_level_sink(self):
        src = (
            "import time\n"
            "engine = get_engine()\n"
            "cutoff = time.time()\n"
            "engine.execute(f'SELECT x FROM t WHERE y > {cutoff}')\n"
        )
        assert {f.rule for f in hive_lint(src)} == {"MRH303"}


class TestLiveCallables:
    def test_lint_udf_callables_flags_this_module(self):
        import random

        def noisy(v):
            return str(float(v) + random.random())

        findings = lint_udf_callables({"noisy": noisy})
        assert {f.rule for f in findings} == {"MRH301"}

    def test_pure_callable_is_clean(self):
        def shout(v):
            return v.upper()

        assert lint_udf_callables({"shout": shout}) == []

    def test_unrecoverable_source_is_skipped(self):
        assert lint_udf_callables({"upper": str.upper}) == []
