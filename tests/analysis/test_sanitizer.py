"""The runtime sanitizer: catches what static rules cannot prove.

MRJ002/MRJ004/MRJ007 have dynamic twins here — input mutation, emit
aliasing, and combiner-contract violations are verified by actually
running jobs under ``MapReduceConfig(sanitize=True)`` through the
serial :class:`LocalJobRunner`.  Clean jobs must additionally be
*bit-identical* with the sanitizer on and off: observation must not
perturb the run.
"""

from repro.analysis import fingerprint
from repro.core.assignments import lint_reference_solutions
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountJob, WordCountWithCombinerJob
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.counters import C
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.types import IntWritable, Text, Writable

CORPUS = "the quick brown fox jumps over the lazy dog the end\n" * 8


def run_local(job, text=CORPUS, sanitize=True):
    fs = LinuxFileSystem()
    fs.write_file("/in.txt", text)
    runner = LocalJobRunner(
        localfs=fs,
        split_size=128,
        mr_config=MapReduceConfig(sanitize=sanitize),
    )
    return runner.run(job, "/in.txt", "/out")


class SumReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        context.write(key, IntWritable(sum(v.value for v in values)))


class InputMutatingMapper(Mapper):
    """MRJ002's dynamic twin: rewrites the input value in place."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        value.value = value.value.upper()
        for token in value.value.split():
            context.write(Text(token), IntWritable(1))


class InputMutationJob(Job):
    mapper = InputMutatingMapper
    reducer = SumReducer


class AliasingMapper(Mapper):
    """MRJ004's dynamic twin: mutates a key after emitting it."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for token in value.value.split():
            t = Text(token)
            context.write(t, IntWritable(1))
            t.value = t.value + "!"


class AliasingJob(Job):
    mapper = AliasingMapper
    reducer = SumReducer


class PositionMapper(Mapper):
    """Emits *heterogeneous* values per key — mean of identical values
    is accidentally associative, which would mask the combiner bug."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for i, token in enumerate(value.value.split()):
            context.write(Text(token), IntWritable(i + 1))


class AvgCombiner(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        nums = [v.value for v in values]
        context.write(key, IntWritable(sum(nums) // len(nums)))


class MeanOfMeansJob(Job):
    mapper = PositionMapper
    reducer = AvgCombiner
    combiner = AvgCombiner


class TestFingerprint:
    def test_ignores_memo_slots(self):
        plain = Text("hello")
        memoised = Text("hello")
        memoised.serialized_size()  # populates _size_memo
        assert fingerprint(plain) == fingerprint(memoised)

    def test_distinguishes_values(self):
        assert fingerprint(Text("a")) != fingerprint(Text("b"))
        assert fingerprint(IntWritable(1)) != fingerprint(Text("1"))

    def test_container_order_insensitive_for_sets(self):
        assert fingerprint({1, 2, 3}) == fingerprint({3, 1, 2})
        assert fingerprint([1, 2]) != fingerprint([2, 1])


class TestDetections:
    def test_input_mutation_is_caught(self):
        result = run_local(InputMutationJob())
        assert result.counters.get(C.SANITIZER_INPUT_MUTATIONS) > 0
        assert any("mutated its input" in v for v in result.sanitizer_violations)

    def test_emit_aliasing_is_caught(self):
        result = run_local(AliasingJob())
        assert result.counters.get(C.SANITIZER_EMIT_ALIASING) > 0
        assert any(
            "mutated after context.write" in v for v in result.sanitizer_violations
        )

    def test_mean_of_means_combiner_is_caught(self):
        result = run_local(MeanOfMeansJob())
        assert result.counters.get(C.SANITIZER_COMBINER_VIOLATIONS) > 0
        assert any("not associative" in v for v in result.sanitizer_violations)


class TestCleanRuns:
    def test_reference_jobs_have_zero_violations(self):
        for job_cls in (WordCountJob, WordCountWithCombinerJob):
            result = run_local(job_cls())
            assert result.sanitizer_violations == []
            assert "Sanitizer" not in result.counters.as_dict()

    def test_sanitized_run_is_bit_identical(self):
        """Observation must not perturb: same pairs, same counters."""
        plain = run_local(WordCountWithCombinerJob(), sanitize=False)
        sanitized = run_local(WordCountWithCombinerJob(), sanitize=True)
        assert sanitized.pairs == plain.pairs
        assert sanitized.counters.as_dict() == plain.counters.as_dict()
        assert sanitized.simulated_seconds == plain.simulated_seconds

    def test_reference_solutions_lint_clean(self):
        results = lint_reference_solutions()
        assert all(r.correct for r in results)
        assert any(r.check == "reference jobs lint clean" for r in results)
