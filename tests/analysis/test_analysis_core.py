"""The shared analysis core: CFG shape, dataflow, call graph, taint.

Rule tests exercise these modules end-to-end; the tests here pin the
*intermediate* contracts the rules depend on — edge structure, fixpoint
results, resolution of each callable form — so a regression points at
the layer that broke instead of at whichever rule noticed first.
"""

import ast
import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import build_cfg, build_cfgs
from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.taint import KIND_RANDOM, KIND_TIME, ModuleTaint


def fn_cfg(body: str):
    src = f"def f(x):\n{textwrap.indent(textwrap.dedent(body), '    ')}"
    tree = ast.parse(src)
    return build_cfg(tree.body[0], "f")


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = fn_cfg("a = 1\nb = a + 1\nreturn b")
        blocks = [b for b in cfg.reachable_blocks() if b.statements]
        assert len(blocks) == 1
        assert len(blocks[0].statements) == 3

    def test_if_else_diamond(self):
        cfg = fn_cfg("if x:\n    a = 1\nelse:\n    a = 2\nreturn a")
        stmts = cfg.statements_in_flow_order()
        # header, both branches and the join all reachable.
        assert len(stmts) == 4

    def test_while_loop_has_back_edge(self):
        cfg = fn_cfg("while x:\n    x = x - 1\nreturn x")
        has_back_edge = any(
            succ <= block.index
            for block in cfg.reachable_blocks()
            for succ in block.successors
        )
        assert has_back_edge

    def test_return_terminates_flow(self):
        cfg = fn_cfg("return 1\na = 2")
        reachable = {
            id(s)
            for block in cfg.reachable_blocks()
            for s in block.statements
        }
        tree_stmts = cfg.statements_in_flow_order()
        assert all(not isinstance(s, ast.Assign) for s in tree_stmts)
        assert reachable  # the return itself is reachable

    def test_try_except_edges_reach_handler(self):
        cfg = fn_cfg(
            """
            try:
                a = g()
            except ValueError:
                a = 0
            return a
            """
        )
        assert len(cfg.statements_in_flow_order()) >= 4

    def test_module_level_build(self):
        tree = ast.parse("y = (lambda v: v + 1)(2)\nprint(y)")
        assert build_cfg(tree, "<module>").statements_in_flow_order()

    def test_build_cfgs_keys_by_qualname(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
            "class C:\n"
            "    def m(self):\n"
            "        return 2\n"
        )
        cfgs = build_cfgs(tree)
        assert "outer" in cfgs
        assert "outer.<locals>.inner" in cfgs
        assert "C.m" in cfgs


class TestReachingDefinitions:
    def test_branch_join_sees_both_defs(self):
        cfg = fn_cfg("if x:\n    a = 1\nelse:\n    a = 2\nreturn a")
        rd = ReachingDefinitions(cfg)
        assert len(rd.definitions_of("a")) == 2
        exit_in = rd.reaching_in(cfg.exit.index)
        assert {d.line for d in exit_in.get("a", [])} == {3, 5}

    def test_rebind_kills_previous(self):
        cfg = fn_cfg("a = 1\na = 2\nreturn a")
        rd = ReachingDefinitions(cfg)
        exit_in = rd.reaching_in(cfg.exit.index)
        assert [d.line for d in exit_in["a"]] == [3]

    def test_augassign_accumulates(self):
        cfg = fn_cfg("a = 1\na += 2\nreturn a")
        rd = ReachingDefinitions(cfg)
        exit_in = rd.reaching_in(cfg.exit.index)
        assert len(exit_in["a"]) == 2

    def test_self_attribute_definitions_are_tracked(self):
        src = "def f(self):\n    self.rng = 1\n    return self.rng"
        cfg = build_cfg(ast.parse(src).body[0], "f")
        rd = ReachingDefinitions(cfg)
        assert rd.definitions_of("self.rng")


def graph_of(src: str) -> CallGraph:
    return CallGraph(ast.parse(textwrap.dedent(src)))


class TestCallGraph:
    def test_module_function_call(self):
        g = graph_of(
            """
            def helper():
                return 1
            def top():
                return helper()
            """
        )
        top = next(i for i in g.functions if i.name == "top")
        assert {c.callee.name for c in g.callees_of(top)} == {"helper"}

    def test_self_method_resolution(self):
        g = graph_of(
            """
            class C:
                def a(self):
                    return self.b()
                def b(self):
                    return 2
            """
        )
        a = next(i for i in g.functions if i.qualname == "C.a")
        assert {c.callee.qualname for c in g.callees_of(a)} == {"C.b"}

    def test_base_class_method_resolution(self):
        g = graph_of(
            """
            class Base:
                def shared(self):
                    return 0
            class Child(Base):
                def run(self):
                    return self.shared()
            """
        )
        run = next(i for i in g.functions if i.qualname == "Child.run")
        assert {c.callee.qualname for c in g.callees_of(run)} == {"Base.shared"}

    def test_name_bound_lambda(self):
        g = graph_of(
            """
            double = lambda v: v * 2
            def top(x):
                return double(x)
            """
        )
        top = next(i for i in g.functions if i.name == "top")
        assert len(g.callees_of(top)) == 1

    def test_nested_call_not_attributed_to_outer(self):
        g = graph_of(
            """
            def outer():
                def inner():
                    return leaf()
                return inner
            def leaf():
                return 3
            """
        )
        outer = next(i for i in g.functions if i.name == "outer")
        assert {c.callee.name for c in g.callees_of(outer)} != {"leaf"}


def taint_of(src: str) -> ModuleTaint:
    return ModuleTaint(ast.parse(textwrap.dedent(src)))


class TestTaint:
    def test_direct_effect(self):
        t = taint_of(
            """
            import random
            def draw():
                return random.random()
            """
        )
        info = next(i for i in t.graph.functions if i.name == "draw")
        kinds = {e.kind for e in t.effects_of(info)}
        assert kinds == {KIND_RANDOM}

    def test_transitive_effect_carries_chain(self):
        t = taint_of(
            """
            import time
            def leaf():
                return time.time()
            def mid():
                return leaf()
            def top():
                return mid()
            """
        )
        top = next(i for i in t.graph.functions if i.name == "top")
        effects = t.effects_of(top)
        assert {e.kind for e in effects} == {KIND_TIME}
        chain = effects[0].render_chain()
        assert "mid" in chain and "leaf" in chain

    def test_seeded_rng_draw_is_clean(self):
        t = taint_of(
            """
            import random
            def f(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        info = next(i for i in t.graph.functions if i.name == "f")
        assert t.effects_of(info) == []

    def test_unseeded_rng_draw_is_flagged(self):
        t = taint_of(
            """
            import random
            def f():
                rng = random.Random()
                return rng.random()
            """
        )
        info = next(i for i in t.graph.functions if i.name == "f")
        assert {e.kind for e in t.effects_of(info)} == {KIND_RANDOM}

    def test_flow_sensitivity_across_branches(self):
        # On one path rng is unseeded: the draw must be flagged.
        t = taint_of(
            """
            import random
            def f(cond, seed):
                if cond:
                    rng = random.Random(seed)
                else:
                    rng = random.Random()
                return rng.random()
            """
        )
        info = next(i for i in t.graph.functions if i.name == "f")
        assert t.effects_of(info)
