"""MRE1xx engine rules — the self-audit that makes the PR 2 bug un-landable.

The acceptance criterion for this rule family is concrete: a patch that
reintroduces the PR 2 replication-sweep pattern (an unsorted set
iteration, or a keyed selection over a set whose key does not tie-break
by the element itself, feeding a placement decision) must be caught.
"""

from repro.analysis import lint_self, lint_source


def engine_lint(source: str):
    return lint_source(source, "snippet.py", families=("engine",))


def rules_of(source: str) -> set[str]:
    return {f.rule for f in engine_lint(source)}


class TestPr2RegressionPattern:
    """Reintroduce the PR 2 set-iteration tie-break bug; mrlint must bite."""

    BUGGY = """
class BlockMeta:
    locations: set[str]

def pick_trim_target(meta, free_bytes):
    # ties in free space fall back to set hash order — the PR 2 bug
    ranked = sorted(meta.locations, key=lambda d: free_bytes(d))
    return ranked[0]
"""

    FIXED = """
class BlockMeta:
    locations: set[str]

def pick_trim_target(meta, free_bytes):
    ranked = sorted(meta.locations, key=lambda d: (free_bytes(d), d))
    return ranked[0]
"""

    def test_non_tie_broken_key_over_set_is_caught(self):
        findings = engine_lint(self.BUGGY)
        assert {f.rule for f in findings} == {"MRE101"}
        (finding,) = findings
        assert finding.severity == "error"
        assert "hash order" in finding.message

    def test_tie_broken_key_is_clean(self):
        assert engine_lint(self.FIXED) == []

    def test_raw_set_iteration_is_caught(self):
        src = """
class BlockMeta:
    locations: set[str]

def invalidate(meta, commands):
    for dn in meta.locations:
        commands.append(dn)
"""
        assert rules_of(src) == {"MRE101"}

    def test_sorted_set_iteration_is_clean(self):
        src = """
class BlockMeta:
    locations: set[str]

def invalidate(meta, commands):
    for dn in sorted(meta.locations):
        commands.append(dn)
"""
        assert engine_lint(src) == []


class TestMre101Variants:
    def test_set_literal_comprehension(self):
        assert rules_of("pairs = [x for x in {1, 2, 3}]\n") == {"MRE101"}

    def test_local_set_call_assignment(self):
        src = """
def f(items):
    seen = set(items)
    for x in seen:
        print(x)
"""
        assert rules_of(src) == {"MRE101"}

    def test_next_iter_of_set_is_error(self):
        src = """
def f(live: set):
    return next(iter(live))
"""
        findings = engine_lint(src)
        assert [f.rule for f in findings] == ["MRE101"]
        assert findings[0].severity == "error"

    def test_list_of_set_freezes_hash_order(self):
        src = """
def f(live: set):
    return list(live)
"""
        assert rules_of(src) == {"MRE101"}

    def test_dict_view_first_match_loop_is_warning(self):
        src = """
def f(trackers):
    for name, t in trackers.items():
        if t.alive:
            return name
        break
"""
        findings = engine_lint(src)
        assert [f.rule for f in findings] == ["MRE101"]
        assert findings[0].severity == "warning"

    def test_dict_view_full_scan_is_clean(self):
        src = """
def f(trackers):
    total = 0
    for t in trackers.values():
        total += t.slots
    return total
"""
        assert engine_lint(src) == []

    def test_keyed_min_over_dict_values_is_warning(self):
        src = """
def f(trackers):
    return min(trackers.values(), key=lambda t: t.load)
"""
        findings = engine_lint(src)
        assert [f.rule for f in findings] == ["MRE101"]
        assert findings[0].severity == "warning"

    def test_plain_sorted_set_no_key_is_clean(self):
        src = """
def f(live: set):
    return sorted(live)
"""
        assert engine_lint(src) == []


class TestMre102WallClock:
    def test_time_time_is_caught(self):
        src = """
import time

def stamp():
    return time.time()
"""
        assert rules_of(src) == {"MRE102"}

    def test_datetime_now_is_caught(self):
        src = """
import datetime

def stamp():
    return datetime.datetime.now()
"""
        assert rules_of(src) == {"MRE102"}

    def test_sim_clock_is_clean(self):
        src = """
def stamp(sim):
    return sim.now
"""
        assert engine_lint(src) == []


class TestMre103BlanketExcept:
    def test_bare_except_is_caught(self):
        src = """
def f(task):
    try:
        task.run()
    except:
        pass
"""
        assert rules_of(src) == {"MRE103"}

    def test_except_exception_pass_is_caught(self):
        src = """
def f(task):
    try:
        task.run()
    except Exception:
        pass
"""
        assert rules_of(src) == {"MRE103"}

    def test_except_exception_that_reraises_is_clean(self):
        src = """
def f(task):
    try:
        task.run()
    except Exception:
        task.abort()
        raise
"""
        assert engine_lint(src) == []

    def test_except_exception_that_records_is_clean(self):
        src = """
def f(task, log):
    try:
        task.run()
    except Exception as exc:
        log.append(exc)
"""
        assert engine_lint(src) == []

    def test_specific_exception_is_clean(self):
        src = """
def f(task):
    try:
        task.run()
    except KeyError:
        pass
"""
        assert engine_lint(src) == []


class TestMre104SharedMemoryLifecycle:
    """Shared-memory/mmap allocations need a guaranteed cleanup path."""

    BUGGY = """
from multiprocessing import shared_memory

def publish(blob):
    seg = shared_memory.SharedMemory(create=True, size=len(blob))
    seg.buf[: len(blob)] = blob
    return seg.name
"""

    def test_unguarded_allocation_is_caught(self):
        findings = engine_lint(self.BUGGY)
        assert {f.rule for f in findings} == {"MRE104"}
        (finding,) = findings
        assert finding.severity == "error"
        assert "close/unlink" in finding.message

    def test_unguarded_mmap_is_caught(self):
        src = """
import mmap

def read_segment(fd, length):
    mapped = mmap.mmap(fd, length, access=mmap.ACCESS_READ)
    return bytes(mapped)
"""
        assert rules_of(src) == {"MRE104"}

    def test_with_statement_is_clean(self):
        src = """
import mmap

def read_segment(fd, length):
    with mmap.mmap(fd, length, access=mmap.ACCESS_READ) as mapped:
        return bytes(mapped)
"""
        assert engine_lint(src) == []

    def test_try_finally_close_is_clean(self):
        src = """
from multiprocessing import shared_memory

def publish(blob):
    seg = shared_memory.SharedMemory(create=True, size=len(blob))
    try:
        seg.buf[: len(blob)] = blob
        return seg.name
    finally:
        seg.close()
"""
        assert engine_lint(src) == []

    def test_except_unlink_counts_as_guard(self):
        src = """
from multiprocessing import shared_memory

def publish(blob):
    seg = shared_memory.SharedMemory(create=True, size=len(blob))
    try:
        seg.buf[: len(blob)] = blob
        return seg.name
    except BaseException:
        seg.unlink()
        raise
    finally:
        seg.close()
"""
        assert engine_lint(src) == []

    def test_owning_class_with_close_is_clean(self):
        src = """
from multiprocessing import shared_memory

class Attachment:
    def open(self, name):
        self.seg = shared_memory.SharedMemory(name=name)
        return memoryview(self.seg.buf)

    def close(self):
        self.seg.close()
"""
        assert engine_lint(src) == []

    def test_allocation_in_nested_function_blames_the_inner_scope(self):
        src = """
from multiprocessing import shared_memory

def outer(blob):
    def leaky():
        return shared_memory.SharedMemory(create=True, size=len(blob))
    try:
        return leaky()
    finally:
        pass
"""
        assert rules_of(src) == {"MRE104"}

    def test_suppression_comment_works(self):
        src = """
from multiprocessing import shared_memory

def publish(blob):
    seg = shared_memory.SharedMemory(create=True, size=len(blob))  # repro: lint-ok[MRE104] owner unlinks at scope release
    return seg.name
"""
        assert engine_lint(src) == []


class TestMre105JournalCoverage:
    """Namespace mutators without a journal record — the durability hole."""

    UNJOURNALED = """
def mkdirs(self, path):
    created = self.namespace.mkdirs(path, mtime=self.sim.now)
    return created
"""

    JOURNALED = """
def mkdirs(self, path):
    created = self.namespace.mkdirs(path, mtime=self.sim.now)
    if created:
        self.journal.log_mkdirs(path, self.sim.now)
    return created
"""

    def test_unjournaled_mutation_is_caught(self):
        findings = engine_lint(self.UNJOURNALED)
        assert {f.rule for f in findings} == {"MRE105"}
        (finding,) = findings
        assert finding.severity == "error"
        assert "crash recovery" in finding.message

    def test_journaled_mutation_is_clean(self):
        assert engine_lint(self.JOURNALED) == []

    def test_every_mutator_kind_is_covered(self):
        src = """
def wreck(self, src, dst):
    self.namespace.create_file(src, replication=2, mtime=0.0)
    self.namespace.rename(src, dst)
    self.namespace.delete(dst, recursive=True)
"""
        findings = engine_lint(src)
        assert [f.rule for f in findings] == ["MRE105"] * 3

    def test_any_journal_log_call_clears_the_function(self):
        src = """
def rename(self, src, dst):
    self.namespace.rename(src, dst)
    self.journal.log_rename(src, dst)
"""
        assert engine_lint(src) == []

    def test_replay_code_under_another_name_is_exempt(self):
        # Journal replay rebuilds a namespace held in a local — it IS
        # the journal being applied, so it must not need a log call.
        src = """
def apply_edit(state, path, mtime):
    ns = state.namespace
    ns.mkdirs(path, mtime=mtime)
"""
        assert engine_lint(src) == []

    def test_suppression_comment_works(self):
        src = """
def scratch(self, path):
    self.namespace.mkdirs(path)  # repro: lint-ok[MRE105] ephemeral scratch namespace, never recovered
"""
        assert engine_lint(src) == []


class TestSelfAudit:
    def test_engine_packages_lint_clean(self):
        """`repro lint --self` over hdfs/mapreduce/faults/sim is clean —
        every remaining engine finding was either fixed or suppressed
        with a written justification."""
        assert lint_self() == []
