"""Linter plumbing: suppressions, error handling, and output formats."""

import json

import pytest

from repro.analysis import lint_paths, lint_source, render_findings, render_json
from repro.util.errors import ConfigError

BUGGY = """
class BlockMeta:
    locations: set[str]

def fanout(meta, commands):
    for dn in meta.locations:
        commands.append(dn)
"""


def engine_lint(source: str):
    return lint_source(source, "snippet.py", families=("engine",))


class TestSuppressions:
    def test_unsuppressed_finding_fires(self):
        assert {f.rule for f in engine_lint(BUGGY)} == {"MRE101"}

    def test_same_line_suppression(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[MRE101] audited",
        )
        assert engine_lint(src) == []

    def test_comment_line_above_suppression(self):
        src = BUGGY.replace(
            "    for dn in meta.locations:",
            "    # repro: lint-ok[MRE101] order-insensitive here\n"
            "    for dn in meta.locations:",
        )
        assert engine_lint(src) == []

    def test_star_suppresses_any_rule(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[*] legacy",
        )
        assert engine_lint(src) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[MRE999] wishful",
        )
        assert {f.rule for f in engine_lint(src)} == {"MRE101"}

    def test_suppression_covers_only_its_line(self):
        src = (
            BUGGY
            + """
def fanout2(meta, commands):
    # repro: lint-ok[MRE101] only this one
    for dn in meta.locations:
        commands.append(dn)
"""
        )
        findings = engine_lint(src)
        # The original, unsuppressed loop still fires.
        assert len(findings) == 1 and findings[0].rule == "MRE101"


class TestErrorHandling:
    def test_syntax_error_raises_config_error(self):
        with pytest.raises(ConfigError):
            lint_source("def broken(:\n", "broken.py")

    def test_missing_path_raises_config_error(self):
        with pytest.raises(ConfigError):
            lint_paths(["/no/such/dir/anywhere"])


class TestRendering:
    def test_clean_render(self):
        assert "clean" in render_findings([])

    def test_findings_render_counts_severities(self):
        findings = engine_lint(BUGGY)
        text = render_findings(findings)
        assert "MRE101" in text
        assert "1 finding" in text
        assert "1 error" in text

    def test_json_shape(self):
        findings = engine_lint(BUGGY)
        payload = json.loads(render_json(findings))
        assert payload["summary"] == {"total": 1, "errors": 1, "warnings": 0}
        (item,) = payload["findings"]
        assert item["rule"] == "MRE101"
        assert item["path"] == "snippet.py"
        assert item["line"] > 0
        assert item["severity"] == "error"
        assert item["hint"]
