"""Linter plumbing: suppressions, error handling, and output formats."""

import json

import pytest

from repro.analysis import (
    filter_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    render_findings,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.util.errors import ConfigError

BUGGY = """
class BlockMeta:
    locations: set[str]

def fanout(meta, commands):
    for dn in meta.locations:
        commands.append(dn)
"""


def engine_lint(source: str):
    return lint_source(source, "snippet.py", families=("engine",))


class TestSuppressions:
    def test_unsuppressed_finding_fires(self):
        assert {f.rule for f in engine_lint(BUGGY)} == {"MRE101"}

    def test_same_line_suppression(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[MRE101] audited",
        )
        assert engine_lint(src) == []

    def test_comment_line_above_suppression(self):
        src = BUGGY.replace(
            "    for dn in meta.locations:",
            "    # repro: lint-ok[MRE101] order-insensitive here\n"
            "    for dn in meta.locations:",
        )
        assert engine_lint(src) == []

    def test_star_suppresses_any_rule(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[*] legacy",
        )
        assert engine_lint(src) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = BUGGY.replace(
            "for dn in meta.locations:",
            "for dn in meta.locations:  # repro: lint-ok[MRE999] wishful",
        )
        assert {f.rule for f in engine_lint(src)} == {"MRE101"}

    def test_suppression_covers_only_its_line(self):
        src = (
            BUGGY
            + """
def fanout2(meta, commands):
    # repro: lint-ok[MRE101] only this one
    for dn in meta.locations:
        commands.append(dn)
"""
        )
        findings = engine_lint(src)
        # The original, unsuppressed loop still fires.
        assert len(findings) == 1 and findings[0].rule == "MRE101"


class TestStatementAwareSuppressions:
    """Markers attach to statements, not raw lines (mrlint 2.0 fix)."""

    def test_trailing_marker_on_later_line_of_multiline_statement(self):
        src = (
            "class BlockMeta:\n"
            "    locations: set[str]\n"
            "\n"
            "def fanout(meta, commands):\n"
            "    for dn in (\n"
            "        meta.locations\n"
            "    ):  # repro: lint-ok[MRE101] audited\n"
            "        commands.append(dn)\n"
        )
        assert engine_lint(src) == []

    def test_comment_above_multiline_statement(self):
        src = (
            "class BlockMeta:\n"
            "    locations: set[str]\n"
            "\n"
            "def fanout(meta, commands):\n"
            "    # repro: lint-ok[MRE101] audited\n"
            "    for dn in (\n"
            "        meta.locations\n"
            "    ):\n"
            "        commands.append(dn)\n"
        )
        assert engine_lint(src) == []

    def test_comment_above_decorator_reaches_the_def(self):
        import ast

        from repro.analysis.linter import _suppressions_by_line

        src = (
            "# repro: lint-ok[MRJ005] flushed by the runner\n"
            "@functools.cache\n"
            "def helper(\n"
            "    a,\n"
            "):\n"
            "    return a\n"
        )
        covered = _suppressions_by_line(src, ast.parse(src))
        # Decorator line and every header line of the def, not the body.
        assert set(covered) == {1, 2, 3, 4, 5}
        assert all(covered[line] == {"MRJ005"} for line in covered)

    def test_marker_above_def_does_not_silence_the_body(self):
        src = (
            "class BlockMeta:\n"
            "    locations: set[str]\n"
            "\n"
            "# repro: lint-ok[MRE101] header only\n"
            "def fanout(meta, commands):\n"
            "    for dn in meta.locations:\n"
            "        commands.append(dn)\n"
        )
        assert {f.rule for f in engine_lint(src)} == {"MRE101"}


class TestBaseline:
    def findings(self):
        return engine_lint(BUGGY)

    def test_round_trip_filters_known_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = write_baseline(self.findings(), path)
        assert count == 1
        baseline = load_baseline(path)
        assert filter_baseline(self.findings(), baseline) == []

    def test_new_findings_survive_the_filter(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([], path)
        baseline = load_baseline(path)
        assert filter_baseline(self.findings(), baseline) == self.findings()

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_file_raises_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            load_baseline(path)

    def test_wrong_version_raises_config_error(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigError):
            load_baseline(path)


class TestSarif:
    def test_sarif_shape(self):
        findings = engine_lint(BUGGY)
        payload = json.loads(render_sarif(findings))
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "mrlint"
        (rule,) = run["tool"]["driver"]["rules"]
        assert rule["id"] == "MRE101"
        assert rule["defaultConfiguration"]["level"] == "error"
        (result,) = run["results"]
        assert result["ruleId"] == "MRE101"
        assert result["ruleIndex"] == 0
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "snippet.py"
        assert location["region"]["startLine"] > 0
        assert location["region"]["startColumn"] >= 1

    def test_clean_sarif_has_empty_results(self):
        payload = json.loads(render_sarif([]))
        assert payload["runs"][0]["results"] == []
        assert payload["runs"][0]["tool"]["driver"]["rules"] == []


class TestErrorHandling:
    def test_syntax_error_raises_config_error(self):
        with pytest.raises(ConfigError):
            lint_source("def broken(:\n", "broken.py")

    def test_missing_path_raises_config_error(self):
        with pytest.raises(ConfigError):
            lint_paths(["/no/such/dir/anywhere"])


class TestRendering:
    def test_clean_render(self):
        assert "clean" in render_findings([])

    def test_findings_render_counts_severities(self):
        findings = engine_lint(BUGGY)
        text = render_findings(findings)
        assert "MRE101" in text
        assert "1 finding" in text
        assert "1 error" in text

    def test_json_shape(self):
        findings = engine_lint(BUGGY)
        payload = json.loads(render_json(findings))
        assert payload["summary"] == {"total": 1, "errors": 1, "warnings": 0}
        (item,) = payload["findings"]
        assert item["rule"] == "MRE101"
        assert item["path"] == "snippet.py"
        assert item["line"] > 0
        assert item["severity"] == "error"
        assert item["hint"]
