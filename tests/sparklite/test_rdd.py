"""RDD transformations and actions."""

import pytest

from repro.sparklite import SparkLiteContext
from repro.util.errors import ReproError


@pytest.fixture
def sc():
    return SparkLiteContext.local(num_executors=3)


class TestSources:
    def test_parallelize_round_trip(self, sc):
        rdd = sc.parallelize(range(10), num_partitions=4)
        assert sorted(rdd.collect()) == list(range(10))
        assert rdd.num_partitions == 4

    def test_partitions_cover_data_exactly_once(self, sc):
        rdd = sc.parallelize(range(23), num_partitions=5)
        seen = []
        for i in range(5):
            seen.extend(rdd.partition(i))
        assert sorted(seen) == list(range(23))

    def test_empty_source(self, sc):
        rdd = sc.parallelize([], num_partitions=2)
        assert rdd.collect() == []
        assert rdd.count() == 0

    def test_zero_partitions_rejected(self, sc):
        with pytest.raises(ReproError):
            sc.parallelize([1], num_partitions=0)

    def test_partition_index_bounds(self, sc):
        rdd = sc.parallelize([1], num_partitions=1)
        with pytest.raises(ReproError):
            rdd.partition(5)


class TestNarrowTransformations:
    def test_map(self, sc):
        assert sorted(
            sc.parallelize([1, 2, 3], 2).map(lambda x: x * 10).collect()
        ) == [10, 20, 30]

    def test_filter(self, sc):
        rdd = sc.parallelize(range(10), 3).filter(lambda x: x % 3 == 0)
        assert sorted(rdd.collect()) == [0, 3, 6, 9]

    def test_flat_map(self, sc):
        rdd = sc.parallelize(["a b", "c"], 2).flat_map(str.split)
        assert sorted(rdd.collect()) == ["a", "b", "c"]

    def test_map_values(self, sc):
        rdd = sc.parallelize([("k", 1), ("j", 2)], 2).map_values(
            lambda v: v * 100
        )
        assert dict(rdd.collect()) == {"k": 100, "j": 200}

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3], 1)
        union = a.union(b)
        assert union.num_partitions == 3
        assert sorted(union.collect()) == [1, 2, 3]

    def test_chaining(self, sc):
        result = (
            sc.parallelize(range(20), 4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * x)
            .collect()
        )
        assert sorted(result) == [x * x for x in range(2, 21, 2)]


class TestWideTransformations:
    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        rdd = sc.parallelize(pairs, 3).reduce_by_key(lambda x, y: x + y)
        assert dict(rdd.collect()) == {"a": 4, "b": 6, "c": 5}

    def test_reduce_by_key_repartitions(self, sc):
        rdd = sc.parallelize([("a", 1)], 2).reduce_by_key(
            lambda x, y: x + y, num_partitions=7
        )
        assert rdd.num_partitions == 7
        assert rdd.collect() == [("a", 1)]

    def test_group_by_key(self, sc):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        grouped = dict(sc.parallelize(pairs, 2).group_by_key().collect())
        assert sorted(grouped["a"]) == [1, 2]
        assert grouped["b"] == [3]

    def test_distinct(self, sc):
        rdd = sc.parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
        assert sorted(rdd.collect()) == [1, 2, 3]

    def test_join(self, sc):
        users = sc.parallelize([(1, "ann"), (2, "bob")], 2)
        scores = sc.parallelize([(1, 10), (1, 20), (3, 99)], 2)
        joined = users.join(scores).collect()
        assert sorted(joined) == [(1, ("ann", 10)), (1, ("ann", 20))]

    def test_same_key_lands_in_one_partition(self, sc):
        pairs = [("dup", i) for i in range(20)]
        shuffled = sc.parallelize(pairs, 4).group_by_key(num_partitions=4)
        nonempty = [
            i for i in range(4) if shuffled.partition(i)
        ]
        assert len(nonempty) == 1


class TestActions:
    def test_count_and_sum(self, sc):
        rdd = sc.parallelize(range(100), 5)
        assert rdd.count() == 100
        assert rdd.sum() == 4950

    def test_take(self, sc):
        assert len(sc.parallelize(range(100), 5).take(7)) == 7
        assert sc.parallelize([1], 1).take(10) == [1]

    def test_reduce(self, sc):
        assert sc.parallelize([1, 2, 3, 4], 3).reduce(lambda a, b: a * b) == 24

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ReproError):
            sc.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_count_by_key(self, sc):
        pairs = [("a", 1), ("a", 2), ("b", 1)]
        assert sc.parallelize(pairs, 2).count_by_key() == {"a": 2, "b": 1}

    def test_lineage_rendering(self, sc):
        rdd = sc.parallelize([1], 1).map(lambda x: x).filter(bool)
        text = "\n".join(rdd.lineage())
        assert "filter" in text and "map" in text and "parallelize" in text


class TestWordCountEquivalence:
    def test_matches_mapreduce_answer(self, sc):
        text = ["a b a", "c a b", "a"]
        rdd_counts = dict(
            sc.parallelize(text, 2)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda x, y: x + y)
            .collect()
        )
        from collections import Counter

        expected = Counter(w for line in text for w in line.split())
        assert rdd_counts == dict(expected)
