"""The canonical element codec: injectivity, line-safety, seed-stability.

Compiled sparklite rests on this codec agreeing with itself everywhere:
the MR shuffle key *is* the encoding, so the properties below are the
bit-identity contract's foundations.
"""

import math
import os
import subprocess
import sys

import pytest

from repro.sparklite.codec import (
    CodecError,
    decode_element,
    encode_element,
    escape_text,
    sort_token,
    sortable_float,
    sortable_int,
    stable_hash,
    unescape_text,
)
from repro.util.rng import RngStream

CORPUS = [
    None,
    True,
    False,
    0,
    -1,
    10**18,
    -(10**18),
    0.0,
    -0.0,
    1.5,
    -2.25,
    math.inf,
    -math.inf,
    0.1 + 0.2,  # repr round-trip of a non-terminating binary fraction
    "",
    "plain",
    "tab\tnewline\ncr\rback\\slash",
    "unicode é中",
    b"",
    b"\x00\xff",
    (),
    (1, 2),
    [1, "1", 1.0, True],
    ("nested", (None, [b"x", (3,)])),
    [[], (), [()]],
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", CORPUS, ids=repr)
    def test_round_trips_exactly(self, value):
        decoded = decode_element(encode_element(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_round_trips(self):
        assert math.isnan(decode_element(encode_element(math.nan)))

    def test_negative_zero_keeps_sign(self):
        assert math.copysign(1, decode_element(encode_element(-0.0))) == -1


class TestInjectivity:
    def test_lookalikes_stay_distinct(self):
        lookalikes = [1, "1", 1.0, True, (1,), [1], "i1", b"1"]
        encodings = [encode_element(v) for v in lookalikes]
        assert len(set(encodings)) == len(lookalikes)

    def test_corpus_has_no_collisions(self):
        # -0.0 == 0.0 compares equal; every other pair must differ.
        encodings = {}
        for value in CORPUS:
            enc = encode_element(value)
            assert enc not in encodings or encodings[enc] == value
            encodings[enc] = value

    def test_container_flattening_is_unambiguous(self):
        # ("ab","c") vs ("a","bc") vs ("abc",) must not collide.
        variants = [("ab", "c"), ("a", "bc"), ("abc",), ("ab,c",)]
        assert len({encode_element(v) for v in variants}) == len(variants)


class TestLineSafety:
    @pytest.mark.parametrize("value", CORPUS, ids=repr)
    def test_no_line_breaking_bytes(self, value):
        enc = encode_element(value)
        assert "\t" not in enc and "\n" not in enc and "\r" not in enc

    def test_escape_unescape_inverse(self):
        gnarly = "a\\t\tb\\\\n\nc\rd\\"
        assert unescape_text(escape_text(gnarly)) == gnarly

    def test_bad_escapes_rejected(self):
        with pytest.raises(CodecError):
            unescape_text("dangling\\")
        with pytest.raises(CodecError):
            unescape_text("bad\\q")


class TestErrors:
    def test_unencodable_type_rejected(self):
        with pytest.raises(CodecError):
            encode_element({"a": 1})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode_element("i1junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_element("q???")


class TestSortableScalars:
    def test_int_tokens_sort_numerically(self):
        rng = RngStream(seed=7).child("tests", "sortable-int").rng
        values = [int(v) for v in rng.integers(-(10**12), 10**12, size=200)]
        values += [0, -1, 1, 10**18, -(10**18)]
        ordered = sorted(values)
        assert sorted(values, key=sortable_int) == ordered

    def test_float_tokens_sort_numerically(self):
        rng = RngStream(seed=7).child("tests", "sortable-float").rng
        values = [float(v) for v in rng.normal(0, 1e6, size=200)]
        values += [0.0, -0.0, math.inf, -math.inf, 1e-300, -1e-300]
        assert sorted(values, key=sortable_float) == sorted(values)

    def test_nan_sorts_last(self):
        assert sortable_float(math.nan) > sortable_float(math.inf)

    def test_int_range_guard(self):
        with pytest.raises(CodecError):
            sortable_int(10**19)


class TestStableHash:
    def test_fallback_token_for_unencodable(self):
        # Local-backend-only values still get a grouping token.
        assert sort_token(frozenset({1})).startswith("z")

    def test_hash_partitions_survive_pythonhashseed(self):
        """The Writable-serialization hash route must not see
        PYTHONHASHSEED at all — the same keys land in the same
        partitions in interpreters with different seeds."""
        program = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.sparklite.codec import stable_hash;"
            "keys = [('k', i) for i in range(50)]"
            " + ['w%d' % i for i in range(50)] + list(range(50));"
            "print([stable_hash(k) % 7 for k in keys])"
        )
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("PYTHONPATH", None)
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1
