"""Compiled sparklite ≡ the in-memory evaluator, bit for bit.

Every test runs one pipeline twice — once on ``sparklite_backend=
"local"``, once compiled onto a MapReduce cluster — and requires the
*exact same* answer: same elements, same order, same types.  That is
the planner's contract (order out of actions, fold order into
``reduce_by_key``, value order inside ``group_by_key`` lists, pair
order out of ``join``), and it must hold across every execution
backend and shuffle transport of the engine underneath.
"""

import warnings

import pytest

from repro.mapreduce.config import MapReduceConfig
from repro.sparklite import SparkLiteContext

# Module-level functions: picklable, so pooled backends ship them.


def add(a, b):
    return a + b


def subtract(a, b):  # non-associative, non-commutative on purpose
    return a - b


def pair_one(word):
    return (word, 1)


def by_first_char(word):
    return (word[0], word)


def double(x):
    return x * 2


def is_even(x):
    return x % 2 == 0


def split_words(line):
    return line.split()


WORDS = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks the fox runs quick quick"
).split()


def make_compiled(**mr_kwargs):
    config = MapReduceConfig(**mr_kwargs) if mr_kwargs else None
    return SparkLiteContext.on_mapreduce(
        num_workers=4, seed=1, mr_config=config
    )


def both_backends(pipeline):
    """Run ``pipeline(sc)`` on both backends; return (local, compiled)."""
    local = pipeline(SparkLiteContext.local(num_executors=3))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no silent pickling fallbacks
        compiled = pipeline(make_compiled())
    return local, compiled


class TestDifferential:
    def test_wordcount(self):
        def pipeline(sc):
            return (
                sc.parallelize(WORDS, 4)
                .map(pair_one)
                .reduce_by_key(add, 3)
                .collect()
            )

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_non_associative_fold_order(self):
        def pipeline(sc):
            pairs = [(i % 5, i) for i in range(40)]
            return (
                sc.parallelize(pairs, 6).reduce_by_key(subtract, 4).collect()
            )

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_group_by_key_value_order(self):
        def pipeline(sc):
            return (
                sc.parallelize(WORDS, 5)
                .map(by_first_char)
                .group_by_key(3)
                .collect()
            )

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_join_pair_order(self):
        def pipeline(sc):
            left = sc.parallelize([(i % 3, i) for i in range(12)], 3)
            right = sc.parallelize([(i % 4, -i) for i in range(8)], 2)
            return left.join(right, 3).collect()

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_distinct_and_union(self):
        def pipeline(sc):
            a = sc.parallelize([3, 1, 2, 3, 1], 2)
            b = sc.parallelize([2, 5], 1)
            return a.union(b).distinct(2).collect()

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_fused_narrow_chain_order(self):
        def pipeline(sc):
            return (
                sc.parallelize(range(30), 4)
                .map(double)
                .filter(is_even)
                .map(double)
                .collect()
            )

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_mixed_type_keys(self):
        def pipeline(sc):
            pairs = [(1, "int"), ("1", "str"), (1.0, "float"), (True, "bool")]
            return sc.parallelize(pairs * 3, 3).group_by_key(2).collect()

        local, compiled = both_backends(pipeline)
        assert compiled == local

    def test_empty_rdd(self):
        def pipeline(sc):
            return sc.parallelize([], 3).map(double).reduce_by_key(add).collect()

        local, compiled = both_backends(pipeline)
        assert compiled == local == []

    def test_actions_agree(self):
        def pipeline(sc):
            rdd = sc.parallelize(range(50), 5).filter(is_even)
            return (rdd.count(), rdd.sum(), rdd.take(4))

        local, compiled = both_backends(pipeline)
        assert compiled == local


@pytest.mark.parametrize("backend", ["serial", "pooled", "auto"])
def test_execution_backends_bit_identical(backend):
    sc = make_compiled(execution_backend=backend)
    result = (
        sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 3).collect()
    )
    local = (
        SparkLiteContext.local(3)
        .parallelize(WORDS, 4)
        .map(pair_one)
        .reduce_by_key(add, 3)
        .collect()
    )
    assert result == local


@pytest.mark.parametrize("transport", ["framed", "shm"])
def test_shuffle_transports_bit_identical(transport):
    sc = make_compiled(
        execution_backend="pooled", shuffle_transport=transport
    )
    result = (
        sc.parallelize(WORDS, 4).map(by_first_char).group_by_key(3).collect()
    )
    local = (
        SparkLiteContext.local(3)
        .parallelize(WORDS, 4)
        .map(by_first_char)
        .group_by_key(3)
        .collect()
    )
    assert result == local


def test_spill_path_bit_identical():
    sc = make_compiled(execution_backend="serial", spill_record_limit=8)
    result = (
        sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 2).collect()
    )
    local = (
        SparkLiteContext.local(3)
        .parallelize(WORDS, 4)
        .map(pair_one)
        .reduce_by_key(add, 2)
        .collect()
    )
    assert result == local


class TestTextFile:
    def test_text_file_pipeline(self):
        text = "a b a\nc a b\n\na\n"
        sc = make_compiled()
        sc.cluster.hdfs.client().put_text("/data/lines.txt", text)
        compiled = (
            sc.text_file("/data/lines.txt")
            .flat_map(split_words)
            .map(pair_one)
            .reduce_by_key(add, 2)
            .collect()
        )
        local_sc = SparkLiteContext.on_cluster(sc.cluster.hdfs)
        local = (
            local_sc.text_file("/data/lines.txt")
            .flat_map(split_words)
            .map(pair_one)
            .reduce_by_key(add, 2)
            .collect()
        )
        assert compiled == local


class TestCacheAndPlan:
    def test_cache_skips_recompute_and_backs_onto_hdfs(self):
        sc = make_compiled()
        runner = sc._compiled_runner()
        cached = (
            sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 3).cache()
        )
        first = cached.collect()
        jobs_after_first = runner.jobs_run
        second = cached.map(double).collect()
        assert second == [((k, v) * 2) for k, v in first]
        # The shuffle ran once; the second action only materializes the
        # narrow tail over the HDFS-cached stage output.
        assert runner.cache_hits >= 1
        assert runner.jobs_run == jobs_after_first + 1

    def test_unpersist_deletes_materialization(self):
        sc = make_compiled()
        runner = sc._compiled_runner()
        cached = sc.parallelize(range(10), 2).map(double).cache()
        cached.collect()
        assert runner._cached
        cached.unpersist()
        assert cached.rdd_id not in runner._cached

    def test_backend_flip_mid_session(self):
        sc = make_compiled()
        rdd = sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 3)
        compiled = rdd.collect()
        sc.sparklite_backend = "local"
        assert rdd.collect() == compiled

    def test_last_plan_exposes_stage_rollups(self):
        sc = make_compiled()
        sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 3).collect()
        plan = sc.last_plan
        assert plan, "compiled action should record its stages"
        for stage in plan:
            assert stage["job"].startswith("sparklite-")
            assert "Map input records" in stage["counters"]
            assert stage["perf"] is not None

    def test_last_report_tracks_final_stage(self):
        sc = make_compiled()
        sc.parallelize(WORDS, 4).map(pair_one).reduce_by_key(add, 2).collect()
        report = sc._compiled_runner().last_report
        assert report is not None and report.succeeded
