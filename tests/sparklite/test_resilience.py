"""Caching and lineage-based fault recovery — the R in RDD."""

import pytest

from repro.sparklite import SparkLiteContext
from repro.util.errors import ReproError
from tests.conftest import make_hdfs


@pytest.fixture
def sc():
    return SparkLiteContext.local(num_executors=3)


class TestCaching:
    def test_cache_avoids_recomputation(self, sc):
        calls = []

        def traced(x):
            calls.append(x)
            return x * 2

        rdd = sc.parallelize(range(10), 4).map(traced).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first  # second pass entirely from cache
        assert sc.cache_hits >= 4

    def test_uncached_recomputes_every_action(self, sc):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(10), 2).map(traced)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 20

    def test_unpersist_evicts(self, sc):
        rdd = sc.parallelize(range(10), 4).map(lambda x: x).cache()
        rdd.collect()
        assert sc.total_cached() > 0
        rdd.unpersist()
        assert sc.total_cached() == 0

    def test_cache_spread_across_executors(self, sc):
        rdd = sc.parallelize(range(30), 6).map(lambda x: x).cache()
        rdd.collect()
        holders = [
            e.name for e in sc.executors.values() if e.cached_partitions
        ]
        assert len(holders) == 3  # all executors participate


class TestLineageRecovery:
    def test_crash_loses_cache_but_not_answers(self, sc):
        rdd = sc.parallelize(range(40), 8).map(lambda x: x + 1).cache()
        expected = sorted(rdd.collect())
        victim = next(iter(sc.executors))
        lost = sc.crash_executor(victim)
        assert lost > 0
        assert sorted(rdd.collect()) == expected

    def test_only_lost_partitions_recompute(self, sc):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(30), 6).map(traced).cache()
        rdd.collect()
        baseline = len(calls)
        victim = next(iter(sc.executors))
        sc.crash_executor(victim)
        rdd.collect()
        recomputed = len(calls) - baseline
        # Less than a full recomputation: surviving caches are reused
        # (partition remapping may shuffle a few extra).
        assert 0 < recomputed < 30

    def test_deep_lineage_recovery(self, sc):
        rdd = (
            sc.parallelize(range(50), 5)
            .map(lambda x: (x % 5, x))
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda v: v * 10)
            .cache()
        )
        expected = dict(rdd.collect())
        for name in list(sc.executors)[:2]:
            sc.crash_executor(name)
        assert dict(rdd.collect()) == expected

    def test_all_executors_dead_raises(self, sc):
        rdd = sc.parallelize([1], 1).map(lambda x: x).cache()
        for name in list(sc.executors):
            sc.crash_executor(name)
        with pytest.raises(ReproError):
            rdd.collect()

    def test_restarted_executor_reused(self, sc):
        rdd = sc.parallelize(range(12), 4).map(lambda x: x).cache()
        rdd.collect()
        victim = next(iter(sc.executors))
        sc.crash_executor(victim)
        sc.restart_executor(victim)
        rdd.collect()
        assert sc.executors[victim].alive


class TestHdfsIntegration:
    def test_text_file_partitions_per_block(self):
        hdfs = make_hdfs(num_datanodes=3, block_size=64)
        payload = "\n".join(f"line {i}" for i in range(40)) + "\n"
        hdfs.client().put_text("/data/lines.txt", payload)
        sc = SparkLiteContext.on_cluster(hdfs)
        rdd = sc.text_file("/data/lines.txt")
        blocks = len(hdfs.namenode.namespace.get_file("/data/lines.txt").blocks)
        assert rdd.num_partitions == blocks
        assert rdd.count() == 40

    def test_wordcount_over_hdfs(self):
        hdfs = make_hdfs(num_datanodes=3, block_size=128)
        hdfs.client().put_text("/data/in.txt", "x y x\nz x\n" * 10)
        sc = SparkLiteContext.on_cluster(hdfs)
        counts = dict(
            sc.text_file("/data/in.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == {"x": 30, "y": 10, "z": 10}

    def test_no_hdfs_attached_raises(self, sc):
        with pytest.raises(ReproError):
            sc.text_file("/nope")
