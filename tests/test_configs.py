"""Configuration validation across the stack."""

import pytest

from repro.hdfs.config import HdfsConfig
from repro.mapreduce.config import CostModel, JobConf, MapReduceConfig
from repro.util.errors import ConfigError


class TestHdfsConfig:
    def test_defaults_match_hadoop_1(self):
        config = HdfsConfig()
        assert config.block_size == 64 * 1024 * 1024
        assert config.replication == 3

    def test_block_size_parses_strings(self):
        assert HdfsConfig(block_size="1MB").block_size == 1024 * 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"replication": 0},
            {"safemode_threshold": 0.0},
            {"safemode_threshold": 1.5},
            {"heartbeat_interval": 0},
            {"heartbeat_miss_limit": 0},
            {"min_replicas": 0},
            {"datanode_full_fraction": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            HdfsConfig(**kwargs)

    def test_dead_node_timeout_derived(self):
        config = HdfsConfig(heartbeat_interval=5.0, heartbeat_miss_limit=4)
        assert config.dead_node_timeout == 20.0

    def test_for_teaching_shrinks_blocks_only(self):
        base = HdfsConfig(replication=2, heartbeat_interval=7.0)
        teaching = base.for_teaching(block_size=4096)
        assert teaching.block_size == 4096
        assert teaching.replication == 2
        assert teaching.heartbeat_interval == 7.0
        assert base.block_size == 64 * 1024 * 1024  # original untouched


class TestMapReduceConfig:
    def test_tracker_timeout_derived(self):
        config = MapReduceConfig(tasktracker_heartbeat=2.0, tracker_miss_limit=5)
        assert config.tracker_timeout == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"map_slots_per_tracker": 0},
            {"reduce_slots_per_tracker": 0},
            {"tasktracker_heartbeat": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MapReduceConfig(**kwargs)


class TestCostModel:
    def test_cpu_time_linear(self):
        cost = CostModel()
        assert cost.cpu_time(2000, 0) == pytest.approx(
            2 * cost.cpu_time(1000, 0)
        )

    def test_sort_time_superlinear(self):
        cost = CostModel()
        assert cost.sort_time(10_000) > 10 * cost.sort_time(1_000)
        assert cost.sort_time(1) == 0.0
        assert cost.sort_time(0) == 0.0


class TestJobConf:
    def test_defaults(self):
        conf = JobConf()
        assert conf.num_reduces == 1
        assert conf.max_attempts == 4
        assert conf.heap_leak_probability == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_reduces": 0},
            {"max_attempts": 0},
            {"heap_leak_probability": -0.1},
            {"heap_leak_probability": 1.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            JobConf(**kwargs)

    def test_params_bag(self):
        conf = JobConf(params={"movies_path": "/m"})
        assert conf.params["movies_path"] == "/m"
