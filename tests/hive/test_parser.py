"""The micro-SQL parser."""

import pytest

from repro.hive.parser import Query, SqlError, parse_query


class TestBasicSelect:
    def test_select_star(self):
        query = parse_query("SELECT * FROM t")
        assert query.table == "t"
        assert query.items[0].column == "*"
        assert not query.is_aggregation

    def test_select_columns(self):
        query = parse_query("SELECT a, b FROM t")
        assert [i.column for i in query.items] == ["a", "b"]

    def test_case_insensitive_keywords(self):
        query = parse_query("select a from t where a > 1 group by a")
        assert query.table == "t"
        assert query.group_by == ("a",)


class TestAggregates:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        item = query.items[0]
        assert item.aggregate == "COUNT" and item.column == "*"
        assert query.is_aggregation

    @pytest.mark.parametrize("agg", ["SUM", "AVG", "MIN", "MAX", "COUNT"])
    def test_each_aggregate(self, agg):
        query = parse_query(f"SELECT {agg}(x) FROM t")
        assert query.items[0].aggregate == agg
        assert query.items[0].column == "x"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse_query("SELECT SUM(*) FROM t")

    def test_mixed_group_and_aggs(self):
        query = parse_query("SELECT k, AVG(v), COUNT(*) FROM t GROUP BY k")
        assert query.group_by == ("k",)
        assert len(query.aggregates) == 2

    def test_label(self):
        query = parse_query("SELECT AVG(delay) FROM t")
        assert query.items[0].label == "avg(delay)"


class TestWhere:
    def test_numeric_conditions(self):
        query = parse_query("SELECT a FROM t WHERE a > 5 AND b <= 2.5")
        assert query.where[0].op == ">" and query.where[0].literal == 5
        assert query.where[1].op == "<=" and query.where[1].literal == 2.5

    def test_string_literal(self):
        query = parse_query("SELECT a FROM t WHERE name = 'Film-Noir'")
        assert query.where[0].literal == "Film-Noir"

    def test_negative_number(self):
        query = parse_query("SELECT a FROM t WHERE delay < -10")
        assert query.where[0].literal == -10

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_all_operators(self, op):
        query = parse_query(f"SELECT a FROM t WHERE a {op} 1")
        assert query.where[0].op == op


class TestOrderLimit:
    def test_order_by_column(self):
        query = parse_query("SELECT a FROM t ORDER BY a")
        assert query.order_by == "a" and not query.order_desc

    def test_order_by_desc(self):
        query = parse_query("SELECT a FROM t ORDER BY a DESC")
        assert query.order_desc

    def test_order_by_aggregate_label(self):
        query = parse_query(
            "SELECT k, AVG(v) FROM t GROUP BY k ORDER BY AVG(v) DESC"
        )
        assert query.order_by == "avg(v)"

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 10").limit == 10

    def test_group_by_multiple(self):
        query = parse_query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert query.group_by == ("a", "b")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t LIMIT many",
            "SELECT a FROM t GROUP",
            "INSERT INTO t VALUES (1)",
            "SELECT a FROM t WHERE a ~ 1",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SqlError):
            parse_query(bad)
