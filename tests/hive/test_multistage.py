"""Hive multi-stage plans: repartition joins and total-order sorts.

The two stage shapes PR 10 adds on top of the single-job compiler:

- ``JOIN`` lowers to a tagged-union repartition-join job whose output
  feeds the ordinary aggregation/projection job through HDFS;
- ``ORDER BY`` (with ``multi_stage=True``) lowers to a TeraSort-style
  sample-partitioned total-order sort job instead of a driver-side
  ``sorted()``.

The differential contract mirrors sparklite's: a multi-stage plan must
answer byte-identically to the legacy single-stage/driver-side path.
"""

import pytest

from repro.hive import ColumnType, HiveLite, TableSchema
from repro.hive.parser import SqlError, parse_query
from repro.hive.planner import RangePartitioner
from repro.mapreduce.types import Text
from repro.util.errors import ConfigError
from tests.conftest import make_mr

RATINGS = [
    # user, movie, stars
    (1, 10, 5),
    (1, 20, 3),
    (2, 10, 4),
    (2, 30, 2),
    (3, 20, 5),
    (3, 30, 1),
    (3, 10, 3),
    (4, 40, 4),  # movie 40 has no title row: inner join drops it
]

MOVIES = [
    # id, title, year
    (10, "Heat", 1995),
    (20, "Alien", 1979),
    (30, "Arrival", 2016),
    (50, "Orphan", 2009),  # no ratings: dropped too
]


def _build_engine(**kwargs):
    cluster = make_mr(num_workers=4, block_size=4096)
    engine = HiveLite(cluster, **kwargs)
    engine.create_table(
        TableSchema(
            name="ratings",
            columns=(
                ("user_id", ColumnType.INT),
                ("movie_id", ColumnType.INT),
                ("stars", ColumnType.INT),
            ),
            location="/warehouse/ratings.csv",
        ),
        data="\n".join(f"{u},{m},{s}" for u, m, s in RATINGS) + "\n",
    )
    engine.create_table(
        TableSchema(
            name="movies",
            columns=(
                ("id", ColumnType.INT),
                ("title", ColumnType.STRING),
                ("year", ColumnType.INT),
            ),
            location="/warehouse/movies.csv",
        ),
        data="\n".join(f"{i},{t},{y}" for i, t, y in MOVIES) + "\n",
    )
    return engine


@pytest.fixture(scope="module")
def hive():
    return _build_engine(multi_stage=True, sort_partitions=3)


class TestJoin:
    def test_full_query_shape_round_trips(self, hive):
        """The PR's acceptance query: JOIN + WHERE + GROUP BY +
        ORDER BY + LIMIT through chained MapReduce stages."""
        result = hive.execute(
            "SELECT movies.title, AVG(ratings.stars) FROM ratings "
            "JOIN movies ON ratings.movie_id = movies.id "
            "WHERE ratings.stars > 1 "
            "GROUP BY movies.title ORDER BY AVG(ratings.stars) DESC LIMIT 2"
        )
        # Ground truth: stars>1 → Heat (5,4,3)=4.0, Alien (3,5)=4.0,
        # Arrival (2)=2.0; DESC reverses the whole composite, so the
        # injective row tiebreak also reverses: Heat before Alien.
        assert result.columns == ("movies.title", "avg(ratings.stars)")
        assert result.rows == [("Heat", 4.0), ("Alien", 4.0)]
        assert len(result.stage_reports) == 3  # join, aggregate, sort

    def test_inner_join_semantics(self, hive):
        result = hive.execute(
            "SELECT ratings.user_id, movies.title FROM ratings "
            "JOIN movies ON ratings.movie_id = movies.id"
        )
        # 7 rating rows match a movie; movie 40 and title 50 drop out.
        assert len(result.rows) == 7
        assert all(title in {"Heat", "Alien", "Arrival"} for _, title in result.rows)

    def test_bare_columns_resolve_when_unambiguous(self, hive):
        result = hive.execute(
            "SELECT title, COUNT(*) FROM ratings "
            "JOIN movies ON movie_id = id GROUP BY title"
        )
        assert dict(result.rows) == {"Heat": 3, "Alien": 2, "Arrival": 2}

    def test_pushdown_filters_run_map_side(self, hive):
        result = hive.execute(
            "SELECT movies.title FROM ratings "
            "JOIN movies ON ratings.movie_id = movies.id "
            "WHERE movies.year < 1990 AND ratings.stars >= 5"
        )
        assert result.rows == [("Alien",)]

    def test_empty_join_result(self, hive):
        result = hive.execute(
            "SELECT movies.title FROM ratings "
            "JOIN movies ON ratings.movie_id = movies.id "
            "WHERE ratings.stars > 100"
        )
        assert result.rows == []

    def test_explain_renders_stages(self, hive):
        plan = hive.explain(
            "SELECT movies.title, COUNT(*) FROM ratings "
            "JOIN movies ON ratings.movie_id = movies.id "
            "GROUP BY movies.title ORDER BY COUNT(*) DESC LIMIT 1"
        )
        assert "repartition join" in plan
        assert "total-order sort" in plan

    def test_self_join_rejected(self, hive):
        with pytest.raises(ConfigError):
            hive.execute(
                "SELECT * FROM ratings JOIN ratings ON user_id = user_id"
            )

    def test_ambiguous_bare_column_rejected(self, hive):
        # "year" exists only in movies (fine); invent ambiguity via
        # a column name shared by neither → unknown-column error.
        with pytest.raises(ConfigError):
            hive.execute(
                "SELECT nonsense FROM ratings "
                "JOIN movies ON ratings.movie_id = movies.id"
            )


class TestMultiStageOrderBy:
    QUERIES = [
        "SELECT user_id, SUM(stars) FROM ratings GROUP BY user_id "
        "ORDER BY SUM(stars) DESC",
        "SELECT user_id, SUM(stars) FROM ratings GROUP BY user_id "
        "ORDER BY SUM(stars) LIMIT 2",
        "SELECT movie_id, AVG(stars) FROM ratings GROUP BY movie_id "
        "ORDER BY AVG(stars)",
        "SELECT user_id, movie_id FROM ratings ORDER BY movie_id DESC",
        "SELECT *, stars FROM ratings ORDER BY stars DESC LIMIT 3",
        "SELECT COUNT(*) FROM ratings ORDER BY COUNT(*)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_sort_stage_matches_driver_side_sort(self, sql):
        legacy = _build_engine(multi_stage=False)
        staged = _build_engine(multi_stage=True, sort_partitions=3)
        expected = legacy.execute(sql)
        actual = staged.execute(sql)
        assert actual.rows == expected.rows
        assert actual.columns == expected.columns
        # The staged plan really did run an extra sort job.
        assert len(actual.stage_reports) > len(expected.stage_reports)


class TestParserJoin:
    def test_join_clause_parses(self):
        query = parse_query(
            "SELECT a.x FROM a JOIN b ON a.k = b.k WHERE a.x > 1"
        )
        assert query.is_join
        assert query.join_table == "b"
        assert query.join_on == ("a.k", "b.k")

    def test_join_requires_on(self):
        with pytest.raises(SqlError):
            parse_query("SELECT x FROM a JOIN b WHERE x > 1")

    def test_join_on_requires_equality(self):
        with pytest.raises(SqlError):
            parse_query("SELECT x FROM a JOIN b ON a.k > b.k")

    def test_plain_query_is_not_join(self):
        assert not parse_query("SELECT x FROM a").is_join


class TestRangePartitioner:
    def test_routes_by_boundary(self):
        part = RangePartitioner(["b", "d"])
        assert part.partition(Text("a"), 3) == 0
        assert part.partition(Text("b"), 3) == 1  # boundary goes right
        assert part.partition(Text("c"), 3) == 1
        assert part.partition(Text("z"), 3) == 2

    def test_clamps_to_num_reduces(self):
        part = RangePartitioner(["a", "b", "c", "d"])
        assert part.partition(Text("z"), 2) == 1

    def test_single_reduce_short_circuits(self):
        assert RangePartitioner([]).partition(Text("q"), 1) == 0
