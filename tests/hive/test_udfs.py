"""HiveLite UDFs: registration, parsing, map-side execution, linting."""

import pytest

from repro.hive import ColumnType, HiveLite, TableSchema
from repro.hive.parser import SqlError, parse_query
from tests.conftest import make_mr

ROWS = [
    ("ada", "red", 10),
    ("bob", "red", 20),
    ("cat", "blue", 30),
]


def shout(value):
    return value.upper()


def double(value):
    return str(int(value) * 2)


@pytest.fixture(scope="module")
def hive():
    cluster = make_mr(num_workers=2, block_size=4096)
    engine = HiveLite(cluster)
    data = "\n".join(f"{n},{t},{s}" for n, t, s in ROWS) + "\n"
    schema = TableSchema(
        name="players",
        columns=(
            ("name", ColumnType.STRING),
            ("team", ColumnType.STRING),
            ("score", ColumnType.INT),
        ),
        location="/warehouse/players.csv",
    )
    engine.create_table(schema, data=data)
    engine.register_udf("shout", shout)
    engine.register_udf("double", double)
    return engine


class TestParser:
    def test_udf_call_item(self):
        query = parse_query("SELECT shout(name) FROM players")
        (item,) = query.items
        assert item.udf == "shout"
        assert item.column == "name"
        assert item.label == "shout(name)"

    def test_udf_argument_must_be_identifier(self):
        with pytest.raises(SqlError):
            parse_query("SELECT shout(1) FROM players")


class TestRegistration:
    def test_rejects_bad_identifier(self, hive):
        with pytest.raises(SqlError):
            hive.register_udf("not a name", shout)

    def test_rejects_aggregate_shadowing(self, hive):
        with pytest.raises(SqlError):
            hive.register_udf("count", shout)

    def test_rejects_non_callable(self, hive):
        with pytest.raises(SqlError):
            hive.register_udf("data", 42)


class TestExecution:
    def test_udf_projection(self, hive):
        result = hive.execute("SELECT shout(name), score FROM players")
        assert result.columns == ("shout(name)", "score")
        assert ("ADA", 10) in result.rows
        assert ("CAT", 30) in result.rows

    def test_udf_with_where(self, hive):
        result = hive.execute(
            "SELECT double(score) FROM players WHERE team = 'red'"
        )
        assert {r[0] for r in result.rows} == {"20", "40"}

    def test_unregistered_udf_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute("SELECT whisper(name) FROM players")

    def test_udf_on_unknown_column_rejected(self, hive):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            hive.execute("SELECT shout(salary) FROM players")

    def test_udf_in_aggregation_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute(
                "SELECT team, shout(name) FROM players GROUP BY team"
            )

    def test_explain_names_udfs(self, hive):
        plan = hive.explain("SELECT shout(name) FROM players")
        assert "shout(name)" in plan


class TestLintUdfs:
    def test_registered_udfs_are_clean(self, hive):
        assert hive.lint_udfs() == []

    def test_nondet_udf_is_flagged(self):
        import random

        cluster = make_mr(num_workers=2, block_size=4096)
        engine = HiveLite(cluster)

        def jitter(value):
            return str(float(value) + random.random())

        engine.register_udf("jitter", jitter)
        findings = engine.lint_udfs()
        assert {f.rule for f in findings} == {"MRH301"}
