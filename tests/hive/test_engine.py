"""Hive-lite end to end: SQL answers vs plain-Python ground truth."""

import pytest

from repro.hive import ColumnType, HiveLite, TableSchema
from repro.hive.engine import Partial
from repro.hive.parser import SqlError
from repro.util.errors import ConfigError
from tests.conftest import make_mr

ROWS = [
    # name, team, score, minutes
    ("ada", "red", 10, 5.0),
    ("bob", "red", 20, 2.5),
    ("cat", "blue", 30, 1.0),
    ("dan", "blue", 40, 4.0),
    ("eve", "blue", 50, 3.0),
]


@pytest.fixture(scope="module")
def hive():
    cluster = make_mr(num_workers=4, block_size=4096)
    engine = HiveLite(cluster)
    data = "\n".join(
        f"{n},{t},{s},{m}" for n, t, s, m in ROWS
    ) + "\n"
    schema = TableSchema(
        name="players",
        columns=(
            ("name", ColumnType.STRING),
            ("team", ColumnType.STRING),
            ("score", ColumnType.INT),
            ("minutes", ColumnType.FLOAT),
        ),
        location="/warehouse/players.csv",
    )
    engine.create_table(schema, data=data)
    return engine


class TestProjection:
    def test_select_star(self, hive):
        result = hive.execute("SELECT * FROM players")
        assert result.columns == ("name", "team", "score", "minutes")
        assert len(result.rows) == 5
        assert ("ada", "red", 10, 5.0) in result.rows

    def test_select_columns(self, hive):
        result = hive.execute("SELECT name, score FROM players")
        assert result.columns == ("name", "score")
        assert ("cat", 30) in result.rows

    def test_where_filter(self, hive):
        result = hive.execute("SELECT name FROM players WHERE score > 25")
        assert {r[0] for r in result.rows} == {"cat", "dan", "eve"}

    def test_where_string_equality(self, hive):
        result = hive.execute("SELECT name FROM players WHERE team = 'red'")
        assert {r[0] for r in result.rows} == {"ada", "bob"}

    def test_where_and(self, hive):
        result = hive.execute(
            "SELECT name FROM players WHERE team = 'blue' AND score >= 40"
        )
        assert {r[0] for r in result.rows} == {"dan", "eve"}

    def test_limit(self, hive):
        result = hive.execute("SELECT name FROM players LIMIT 2")
        assert len(result.rows) == 2


class TestAggregation:
    def test_global_count(self, hive):
        result = hive.execute("SELECT COUNT(*) FROM players")
        assert result.rows == [(5,)]

    def test_group_by_count_and_avg(self, hive):
        result = hive.execute(
            "SELECT team, COUNT(*), AVG(score) FROM players GROUP BY team"
        )
        as_dict = {row[0]: row[1:] for row in result.rows}
        assert as_dict["red"] == (2, 15.0)
        assert as_dict["blue"] == (3, 40.0)

    def test_sum_min_max(self, hive):
        result = hive.execute(
            "SELECT team, SUM(score), MIN(score), MAX(score) FROM players "
            "GROUP BY team"
        )
        as_dict = {row[0]: row[1:] for row in result.rows}
        assert as_dict["red"] == (30.0, 10, 20)
        assert as_dict["blue"] == (120.0, 30, 50)

    def test_where_before_group(self, hive):
        result = hive.execute(
            "SELECT team, COUNT(*) FROM players WHERE score >= 20 "
            "GROUP BY team"
        )
        as_dict = dict(result.rows)
        assert as_dict == {"red": 1, "blue": 3}

    def test_order_by_aggregate_desc(self, hive):
        result = hive.execute(
            "SELECT team, AVG(score) FROM players GROUP BY team "
            "ORDER BY AVG(score) DESC"
        )
        assert [r[0] for r in result.rows] == ["blue", "red"]

    def test_order_by_group_column(self, hive):
        result = hive.execute(
            "SELECT team, COUNT(*) FROM players GROUP BY team ORDER BY team"
        )
        assert [r[0] for r in result.rows] == ["blue", "red"]

    def test_min_max_keep_column_type(self, hive):
        result = hive.execute(
            "SELECT team, MAX(minutes) FROM players GROUP BY team"
        )
        values = dict(result.rows)
        assert values["red"] == 5.0 and isinstance(values["red"], float)

    def test_combiner_installed(self, hive):
        result = hive.execute(
            "SELECT team, COUNT(*) FROM players GROUP BY team"
        )
        from repro.mapreduce.counters import C

        assert result.report.counters.get(C.COMBINE_INPUT_RECORDS) > 0


class TestValidation:
    def test_unknown_table(self, hive):
        with pytest.raises(ConfigError):
            hive.execute("SELECT * FROM ghosts")

    def test_unknown_column(self, hive):
        with pytest.raises(ConfigError):
            hive.execute("SELECT bogus FROM players")

    def test_non_grouped_column_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute("SELECT name, COUNT(*) FROM players GROUP BY team")

    def test_sum_of_string_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute("SELECT SUM(name) FROM players")

    def test_order_by_unselected_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute("SELECT name FROM players ORDER BY score")

    def test_star_with_aggregate_rejected(self, hive):
        with pytest.raises(SqlError):
            hive.execute("SELECT *, COUNT(*) FROM players")


class TestExplain:
    def test_explain_mentions_stages(self, hive):
        plan = hive.explain(
            "SELECT team, AVG(score) FROM players WHERE score > 0 "
            "GROUP BY team ORDER BY AVG(score) LIMIT 3"
        )
        assert "map-side filter" in plan
        assert "shuffle key: team" in plan
        assert "combiner: automatic" in plan
        assert "limit 3" in plan

    def test_explain_projection(self, hive):
        plan = hive.explain("SELECT name FROM players")
        assert "map-only projection" in plan


class TestPartialMonoid:
    def test_merge_is_associative(self):
        values = [1, 5, 2, 9, 3]
        # ((a+b)+c) vs (a+(b+c)) over arbitrary splits.
        def partial_of(vals):
            p = Partial()
            for v in vals:
                p.observe(v)
            return p

        left = partial_of(values[:2])
        left.merge(partial_of(values[2:]))
        right = partial_of(values[:4])
        right.merge(partial_of(values[4:]))
        assert left.encode() == right.encode()
        assert left.finalize("AVG") == sum(values) / len(values)
        assert left.finalize("MIN") == 1 and left.finalize("MAX") == 9

    def test_encode_decode_round_trip(self):
        p = Partial()
        for v in ("alpha", "beta"):
            p.observe(v)
        decoded = Partial.decode(p.encode())
        assert decoded.minimum == "alpha" and decoded.maximum == "beta"
        assert decoded.count == 2

    def test_empty_partial_finalizes_none(self):
        assert Partial().finalize("AVG") is None
        assert Partial().finalize("COUNT") == 0


class TestCsvWithHeader:
    def test_header_skipped(self):
        cluster = make_mr(num_workers=2, block_size=4096)
        engine = HiveLite(cluster)
        schema = TableSchema(
            name="h",
            columns=(("a", ColumnType.STRING), ("n", ColumnType.INT)),
            location="/warehouse/h.csv",
            skip_header=True,
        )
        engine.create_table(schema, data="a,n\nx,1\ny,2\n")
        result = engine.execute("SELECT COUNT(*) FROM h")
        assert result.rows == [(2,)]
