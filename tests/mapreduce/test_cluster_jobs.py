"""Cluster job execution: scheduling, locality, counters, multi-job."""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.streaming import streaming_job
from repro.util.errors import JobSubmissionError, OutputExistsError
from tests.conftest import make_mr


def wc_job(name="wc", combine=False, num_reduces=1, conf=None):
    return streaming_job(
        name=name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        combine_fn=(lambda k, vs: [(k, sum(vs))]) if combine else None,
        num_reduces=num_reduces,
        conf=conf,
    )


class TestBasicExecution:
    def test_wordcount_answers(self, mr):
        mr.client().put_text("/in.txt", "a b a\nc a b\n" * 100)
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        assert report.succeeded
        assert mr.output_dict("/out") == {"a": "300", "b": "200", "c": "100"}

    def test_one_map_per_block(self, mr):
        text = "word " * 2000  # ~10KB over 2KB blocks
        mr.client().put_text("/in.txt", text)
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        blocks = len(mr.hdfs.namenode.namespace.get_file("/in.txt").blocks)
        assert report.num_maps == blocks

    def test_multi_reduce_partitions_output(self, mr):
        mr.client().put_text("/in.txt", " ".join(f"k{i}" for i in range(200)))
        mr.run_job(
            wc_job(num_reduces=4), "/in.txt", "/out", require_success=True
        )
        client = mr.client()
        parts = [
            s.path
            for s in client.list_status("/out")
            if s.path.rsplit("/", 1)[-1].startswith("part-")
        ]
        assert len(parts) == 4
        assert client.exists("/out/_SUCCESS")
        assert len(mr.output_dict("/out")) == 200

    def test_directory_input_skips_markers(self, mr):
        client = mr.client()
        client.put_text("/data/a.txt", "x\n")
        client.put_text("/data/b.txt", "y\n")
        client.put_text("/data/_SUCCESS", "")
        report = mr.run_job(wc_job(), "/data", "/out", require_success=True)
        assert set(mr.output_dict("/out")) == {"x", "y"}

    def test_output_exists_rejected(self, mr):
        mr.client().put_text("/in.txt", "a\n")
        mr.client().mkdirs("/out")
        with pytest.raises(OutputExistsError):
            mr.submit(wc_job(), "/in.txt", "/out")

    def test_empty_input_dir_rejected(self, mr):
        mr.client().mkdirs("/empty")
        with pytest.raises(JobSubmissionError):
            mr.submit(wc_job(), "/empty", "/out")

    def test_sequential_jobs_share_cluster(self, mr):
        mr.client().put_text("/in.txt", "a b\n")
        r1 = mr.run_job(wc_job("j1"), "/in.txt", "/o1", require_success=True)
        r2 = mr.run_job(wc_job("j2"), "/in.txt", "/o2", require_success=True)
        assert r1.job_id != r2.job_id
        assert mr.output_dict("/o1") == mr.output_dict("/o2")


class TestLocality:
    def test_most_maps_are_data_local(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "w " * 5000)
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        assert report.data_local_maps >= report.num_maps * 0.5
        assert (
            report.data_local_maps
            + report.rack_local_maps
            + report.off_rack_maps
            == report.num_maps
        )

    def test_locality_counters_in_report(self, mr):
        mr.client().put_text("/in.txt", "w\n")
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        total = (
            report.counters.get(C.DATA_LOCAL_MAPS)
            + report.counters.get(C.RACK_LOCAL_MAPS)
            + report.counters.get(C.OFF_RACK_MAPS)
        )
        assert total == report.counters.get(C.TOTAL_LAUNCHED_MAPS)


class TestCounters:
    def test_framework_counters_consistent(self, mr):
        mr.client().put_text("/in.txt", "a b c\n" * 50)
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        counters = report.counters
        assert counters.get(C.MAP_INPUT_RECORDS) == 50
        assert counters.get(C.MAP_OUTPUT_RECORDS) == 150
        assert counters.get(C.REDUCE_INPUT_RECORDS) == 150
        assert counters.get(C.REDUCE_INPUT_GROUPS) == 3
        assert counters.get(C.REDUCE_OUTPUT_RECORDS) == 3
        assert counters.get(C.HDFS_BYTES_READ) > 0
        assert counters.get(C.HDFS_BYTES_WRITTEN) > 0

    def test_combiner_cuts_shuffle_bytes(self, mr):
        text = "alpha beta gamma " * 400
        mr.client().put_text("/in.txt", text)
        plain = mr.run_job(wc_job("plain"), "/in.txt", "/p", require_success=True)
        combined = mr.run_job(
            wc_job("comb", combine=True), "/in.txt", "/c", require_success=True
        )
        assert combined.shuffle_bytes < plain.shuffle_bytes / 3
        assert mr.output_dict("/p") == mr.output_dict("/c")


class TestReportRendering:
    def test_render_contains_the_essentials(self, mr):
        mr.client().put_text("/in.txt", "a\n")
        report = mr.run_job(wc_job(), "/in.txt", "/out", require_success=True)
        text = report.render()
        assert "SUCCEEDED" in text
        assert "Maps:" in text
        assert "Counters:" in text
