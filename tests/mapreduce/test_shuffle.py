"""Sort/partition/group/combine plumbing."""

from repro.mapreduce.api import Context
from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.shuffle import (
    MapOutput,
    group_by_key,
    is_key_sorted,
    merge_for_reduce,
    partition_pairs,
    run_combiner,
    serialized_bytes,
    sort_pairs,
)
from repro.mapreduce.types import IntWritable, Text


def pairs_of(*items):
    return [(Text(k), IntWritable(v)) for k, v in items]


class TestSortAndGroup:
    def test_sort_by_key(self):
        pairs = pairs_of(("b", 1), ("a", 2), ("c", 3), ("a", 1))
        keys = [k.value for k, _ in sort_pairs(pairs)]
        assert keys == ["a", "a", "b", "c"]

    def test_sort_stable_for_equal_keys(self):
        pairs = pairs_of(("a", 1), ("a", 2), ("a", 3))
        values = [v.value for _, v in sort_pairs(pairs)]
        assert values == [1, 2, 3]

    def test_group_by_key(self):
        pairs = sort_pairs(pairs_of(("a", 1), ("b", 5), ("a", 2)))
        groups = {
            k.value: [v.value for v in vs] for k, vs in group_by_key(pairs)
        }
        assert groups == {"a": [1, 2], "b": [5]}

    def test_group_empty(self):
        assert list(group_by_key([])) == []


class TestPartitioning:
    def test_all_nonempty_partitions_present(self):
        pairs = pairs_of(*[(f"k{i}", i) for i in range(40)])
        buckets = partition_pairs(pairs, HashPartitioner(), 4)
        assert set(buckets) == {0, 1, 2, 3}  # 40 keys fill all four
        assert sum(len(b) for b in buckets.values()) == 40

    def test_empty_partitions_are_omitted(self):
        # partition_pairs is sparse: consumers use .get(p, ()), and the
        # single bucketing pass never materialises empty partitions.
        pairs = pairs_of(("dup", 1), ("dup", 2))
        buckets = partition_pairs(pairs, HashPartitioner(), 64)
        assert len(buckets) == 1
        assert all(b for b in buckets.values())

    def test_no_pairs_no_partitions(self):
        assert partition_pairs([], HashPartitioner(), 4) == {}

    def test_same_key_same_bucket(self):
        pairs = pairs_of(("dup", 1), ("dup", 2), ("dup", 3))
        buckets = partition_pairs(pairs, HashPartitioner(), 8)
        nonempty = [p for p, b in buckets.items() if b]
        assert len(nonempty) == 1

    def test_stable_bucketing_of_sorted_input_stays_sorted(self):
        # The map side sorts once, then partitions: each bucket of a
        # key-sorted list must itself be key-sorted (what lets the
        # combiner run with presorted=True).
        pairs = sort_pairs(pairs_of(*[(f"k{i % 13}", i) for i in range(60)]))
        buckets = partition_pairs(pairs, HashPartitioner(), 4)
        for bucket in buckets.values():
            assert is_key_sorted(bucket)


class TestSerializedBytes:
    def test_counts_keys_and_values(self):
        pairs = pairs_of(("ab", 1))  # Text 2 bytes + IntWritable 4 bytes
        assert serialized_bytes(pairs) == 6

    def test_empty(self):
        assert serialized_bytes([]) == 0


class TestCombiner:
    class SumCombiner:
        def setup(self, ctx):
            pass

        def reduce(self, key, values, ctx):
            ctx.write(key, IntWritable(sum(v.value for v in values)))

        def cleanup(self, ctx):
            pass

    def test_combiner_reduces_records(self):
        counters = Counters()
        context = Context(conf=JobConf(), counters=counters)
        pairs = pairs_of(("a", 1), ("a", 1), ("b", 1))
        combined = run_combiner(self.SumCombiner, pairs, context, counters)
        as_dict = {k.value: v.value for k, v in combined}
        assert as_dict == {"a": 2, "b": 1}
        assert counters.get(C.COMBINE_INPUT_RECORDS) == 3
        assert counters.get(C.COMBINE_OUTPUT_RECORDS) == 2

    def test_presorted_skips_resort_same_answer(self):
        counters = Counters()
        context = Context(conf=JobConf(), counters=counters)
        pairs = sort_pairs(pairs_of(("b", 1), ("a", 2), ("a", 3)))
        combined = run_combiner(
            self.SumCombiner, pairs, context, counters, presorted=True
        )
        assert {k.value: v.value for k, v in combined} == {"a": 5, "b": 1}

    def test_presorted_lie_is_caught_in_debug_mode(self):
        import pytest

        counters = Counters()
        context = Context(conf=JobConf(), counters=counters)
        unsorted = pairs_of(("b", 1), ("a", 2))
        if __debug__:
            with pytest.raises(AssertionError):
                run_combiner(
                    self.SumCombiner, unsorted, context, counters,
                    presorted=True,
                )


class TestMergeForReduce:
    def test_merges_across_map_outputs(self):
        out1 = MapOutput(task_index=0, node="n0", partitions={0: pairs_of(("b", 1))})
        out2 = MapOutput(task_index=1, node="n1", partitions={0: pairs_of(("a", 2))})
        merged = merge_for_reduce([out1, out2], 0)
        assert [k.value for k, _ in merged] == ["a", "b"]

    def test_partition_isolation(self):
        out = MapOutput(
            task_index=0,
            node="n0",
            partitions={0: pairs_of(("a", 1)), 1: pairs_of(("b", 1))},
        )
        assert [k.value for k, _ in merge_for_reduce([out], 1)] == ["b"]

    def test_byte_accounting(self):
        out = MapOutput(task_index=0, node="n0", partitions={0: pairs_of(("ab", 1))})
        assert out.partition_bytes(0) == 6
        assert out.partition_bytes(1) == 0
        assert out.total_bytes() == 6
        assert out.total_records() == 1
