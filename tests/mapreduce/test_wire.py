"""The binary framed shuffle codec: round-trips, size agreement, errors.

Three contracts:

1. every Writable the framework ships round-trips bit-exactly through
   ``encode_pairs``/``decode_pairs`` (including the nasty corners:
   empty/NUL/astral-plane Text, negative and 2**63-boundary integers,
   signed zero and infinities);
2. a frame's payload width equals the Writable's ``serialized_size()``
   — the invariant that keeps framed and object runs' byte counters
   bit-identical;
3. malformed input raises :class:`WireFormatError` with a useful
   message, never raw ``struct.error`` noise.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import wire
from repro.mapreduce.shuffle import serialized_bytes, sort_pairs
from repro.mapreduce.types import (
    FloatWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    record_writable,
)
from repro.util.errors import WireFormatError

SETTINGS = settings(max_examples=60, deadline=None)

SumCount = record_writable("SumCount", [("total", float), ("count", int)])


# -- strategies -------------------------------------------------------------

texts = st.text(max_size=40)  # full unicode, including astral planes
ints = st.one_of(
    st.integers(),
    st.sampled_from(
        [0, -1, 2**31 - 1, -(2**31), 2**31, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 10**30]
    ),
)
floats = st.one_of(
    st.floats(allow_nan=False),
    st.sampled_from([0.0, -0.0, float("inf"), float("-inf"), 1e308]),
)

writables = st.one_of(
    texts.map(Text),
    ints.map(IntWritable),
    ints.map(LongWritable),
    floats.map(FloatWritable),
    st.just(NullWritable()),
    st.tuples(st.floats(allow_nan=False, allow_infinity=False), st.integers()).map(
        lambda t: SumCount(total=t[0], count=t[1])
    ),
)

pair_lists = st.lists(st.tuples(writables, writables), max_size=30)


def _identical(a, b) -> bool:
    """Stricter than ==: same concrete class, same encoded text."""
    return type(a) is type(b) and a.encode() == b.encode()


# -- round-trips ------------------------------------------------------------


class TestRoundTrip:
    @given(pairs=pair_lists)
    @SETTINGS
    def test_every_pair_roundtrips(self, pairs):
        blob, payload = wire.encode_pairs(pairs)
        decoded = wire.decode_pair_list(blob)
        assert len(decoded) == len(pairs)
        for (k1, v1), (k2, v2) in zip(pairs, decoded):
            assert _identical(k1, k2) and _identical(v1, v2)
        assert wire.blob_record_count(blob) == len(pairs)

    @pytest.mark.parametrize(
        "text",
        ["", "\x00", "a\x00b", "naïve", "\U0001f600\U0001f680", "\n\t\r", "x" * 5000],
    )
    def test_text_corners(self, text):
        blob, _ = wire.encode_pairs([(Text(text), Text(text))])
        (k, v), = wire.decode_pair_list(blob)
        assert k.value == text and v.value == text

    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2**31 - 1, -(2**31), 2**31, -(2**31) - 1,
         2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 10**40, -(10**40)],
    )
    def test_integer_boundaries(self, value):
        for cls in (IntWritable, LongWritable):
            blob, _ = wire.encode_pairs([(cls(value), cls(-value if value else 0))])
            (k, v), = wire.decode_pair_list(blob)
            assert type(k) is cls and k.value == value
            assert type(v) is cls and v.value == (-value if value else 0)

    @pytest.mark.parametrize(
        "value", [0.0, -0.0, 1.5, -2.25, float("inf"), float("-inf"), 1e-308, 1e308]
    )
    def test_float_corners(self, value):
        blob, _ = wire.encode_pairs([(FloatWritable(value), NullWritable())])
        (k, v), = wire.decode_pair_list(blob)
        assert k.value == value
        # signed zero survives (== treats 0.0 and -0.0 alike; repr doesn't)
        assert repr(k.value) == repr(float(value))
        assert v is NullWritable()

    def test_record_writable_roundtrips(self):
        pairs = [(Text("k"), SumCount(total=1.5, count=3))]
        blob, _ = wire.encode_pairs(pairs)
        (k, v), = wire.decode_pair_list(blob)
        assert type(v) is SumCount and v.total == 1.5 and v.count == 3

    def test_local_class_refuses_to_frame(self):
        Local = record_writable("Local", [("x", int)])
        Local.__qualname__ = "test_local.<locals>.Local"  # unimportable ref
        with pytest.raises(WireFormatError):
            wire.encode_pairs([(Text("k"), Local(x=1))])

    def test_non_writable_refuses_to_frame(self):
        with pytest.raises(WireFormatError):
            wire.encode_pairs([(Text("k"), "not a writable")])


# -- size agreement (satellite: serialized_size drift) ----------------------


class TestSizeAgreement:
    @given(pairs=pair_lists)
    @SETTINGS
    def test_payload_bytes_equal_serialized_bytes(self, pairs):
        _, payload = wire.encode_pairs(pairs)
        assert payload == serialized_bytes(pairs)

    @given(w=writables)
    @SETTINGS
    def test_decoded_size_memo_matches_fresh_instance(self, w):
        """Decoded Writables report the same serialized_size as the
        originals — their preset memo must not drift from the codec."""
        blob, _ = wire.encode_pairs([(w, w)])
        (k, v), = wire.decode_pair_list(blob)
        assert k.serialized_size() == w.serialized_size()
        assert v.serialized_size() == w.serialized_size()


# -- sortedness flag --------------------------------------------------------


class TestSortedFlag:
    @given(pairs=pair_lists.filter(lambda ps: all(type(p[0]) is Text for p in ps)))
    @SETTINGS
    def test_flag_matches_actual_order(self, pairs):
        blob_raw, _ = wire.encode_pairs(pairs)
        keys = [k.sort_key() for k, _ in pairs]
        assert wire.blob_key_sorted(blob_raw) == (keys == sorted(keys))
        blob_sorted, _ = wire.encode_pairs(sort_pairs(pairs))
        assert wire.blob_key_sorted(blob_sorted)


# -- malformed input --------------------------------------------------------


class TestMalformed:
    def _blob(self):
        blob, _ = wire.encode_pairs(
            [(Text("hello"), IntWritable(7)), (Text("world"), FloatWritable(2.5))]
        )
        return blob

    def test_truncated_everywhere_raises_wire_error(self):
        blob = self._blob()
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                wire.decode_pair_list(blob[:cut])

    def test_truncation_message_names_offset(self):
        blob = self._blob()
        with pytest.raises(WireFormatError, match="truncated"):
            wire.decode_pair_list(blob[:-1])

    def test_bad_magic(self):
        blob = b"XXXX" + self._blob()[4:]
        with pytest.raises(WireFormatError, match="magic"):
            wire.decode_pair_list(blob)

    def test_unknown_tag(self):
        blob = bytearray(self._blob())
        blob[wire.HEADER.size] = 0x7F
        with pytest.raises(WireFormatError, match="unknown frame tag"):
            wire.decode_pair_list(bytes(blob))

    def test_trailing_garbage(self):
        with pytest.raises(WireFormatError, match="trailing"):
            wire.decode_pair_list(self._blob() + b"junk")

    def test_corrupt_utf8_payload(self):
        blob, _ = wire.encode_pairs([(Text("ab"), NullWritable())])
        broken = bytearray(blob)
        broken[wire.HEADER.size + 5] = 0xFF  # inside the Text payload
        with pytest.raises(WireFormatError, match="corrupt"):
            wire.decode_pair_list(bytes(broken))

    def test_garbage_is_never_struct_error(self):
        import random

        rng = random.Random(1234)
        for _ in range(200):
            junk = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            try:
                wire.decode_pair_list(junk)
            except WireFormatError:
                pass
            except struct.error as exc:  # pragma: no cover - the bug
                pytest.fail(f"raw struct.error escaped: {exc}")

    def test_bogus_class_ref(self):
        ref = b"no_such_module_xyz:Nope"
        payload = b"1"
        frame = (
            bytes((wire.TAG_GENERIC,))
            + struct.pack(">H", len(ref))
            + ref
            + struct.pack(">I", len(payload))
            + payload
        )
        blob = wire.HEADER.pack(wire.MAGIC, 0, 1) + frame + bytes((wire.TAG_NULL,))
        with pytest.raises(WireFormatError, match="not importable"):
            wire.decode_pair_list(blob)


# -- FramedPairs ------------------------------------------------------------


class TestFramedPairs:
    def test_list_protocol(self):
        pairs = [(Text("a"), IntWritable(1)), (Text("b"), IntWritable(2))]
        framed = wire.FramedPairs.from_pairs(pairs)
        assert len(framed) == 2 and bool(framed)
        assert framed.to_list() == pairs
        assert [k.value for k, _ in framed] == ["a", "b"]
        assert not wire.FramedPairs.from_pairs([])

    def test_pickles_as_one_blob(self):
        import pickle

        pairs = [(Text("a"), IntWritable(1))] * 50
        framed = wire.FramedPairs.from_pairs(pairs)
        clone = pickle.loads(pickle.dumps(framed))
        assert clone.to_list() == pairs
