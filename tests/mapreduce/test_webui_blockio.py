"""Web-UI renderings and the task-side block fetcher."""

import pytest

from repro.mapreduce.blockio import BlockFetcher
from repro.mapreduce.streaming import streaming_job
from repro.mapreduce.webui import (
    render_cluster_status,
    render_integration_view,
    render_job_page,
)
from repro.util.errors import HdfsError
from tests.conftest import make_hdfs, make_mr


def wc():
    return streaming_job(
        "wc",
        lambda k, v: ((w, 1) for w in v.split()),
        lambda k, vs: [(k, sum(vs))],
    )


class TestWebUi:
    def test_cluster_status_lists_trackers_and_jobs(self, mr):
        mr.client().put_text("/in.txt", "a b\n")
        mr.run_job(wc(), "/in.txt", "/out", require_success=True)
        text = render_cluster_status(mr)
        assert "JobTracker status" in text
        for name in mr.tasktrackers:
            assert name in text
        assert "job_0001" in text

    def test_job_page_shows_attempts_and_events(self, mr):
        mr.client().put_text("/in.txt", "a b\n" * 50)
        running = mr.submit(wc(), "/in.txt", "/out")
        mr.wait_for_job(running)
        text = render_job_page(running)
        assert "task_job_0001_m_000000" in text
        assert "task_job_0001_r_000000" in text
        assert "Event log" in text

    def test_integration_view_without_job(self, mr):
        mr.client().put_text("/data/f.txt", "x" * 5000)
        text = render_integration_view(mr, path="/data")
        assert "blk_" in text
        assert "JobTracker" not in text  # no job passed

    def test_crashed_tracker_visible(self, mr):
        mr.tasktrackers["node1"].crash()
        text = render_cluster_status(mr)
        assert "crashed" in text


class TestBlockFetcher:
    def make_fetcher(self, cluster):
        return BlockFetcher(
            namenode=cluster.namenode,
            dn_lookup=cluster.datanode,
            network=cluster.network,
        )

    def test_block_layout(self):
        cluster = make_hdfs(block_size=1000, replication=2)
        cluster.client().put_bytes("/f", b"z" * 2500)
        fetcher = self.make_fetcher(cluster)
        lengths, locations = fetcher.block_layout("/f")
        assert lengths == [1000, 1000, 500]
        assert all(len(locs) == 2 for locs in locations)

    def test_node_local_read_classified(self):
        cluster = make_hdfs(block_size=1000, replication=2)
        cluster.client(node="node0").put_bytes("/f", b"z" * 1000)
        fetcher = self.make_fetcher(cluster)
        read = fetcher.read_block("/f", 0, "node0")
        assert read.locality == "node_local"
        assert read.source == "node0"
        assert read.data == b"z" * 1000

    def test_partial_read_respects_max_bytes(self):
        cluster = make_hdfs(block_size=1000)
        cluster.client().put_bytes("/f", b"z" * 1000)
        fetcher = self.make_fetcher(cluster)
        read = fetcher.read_block("/f", 0, None, max_bytes=64)
        assert len(read.data) == 64

    def test_out_of_range_block_raises_indexerror(self):
        cluster = make_hdfs(block_size=1000)
        cluster.client().put_bytes("/f", b"z" * 500)
        fetcher = self.make_fetcher(cluster)
        with pytest.raises(IndexError):
            fetcher.read_block("/f", 5, None)

    def test_corrupt_replica_failover_and_report(self):
        cluster = make_hdfs(block_size=1000, replication=2)
        cluster.client().put_bytes("/f", b"z" * 1000)
        block_id = next(iter(cluster.namenode.block_map))
        first = sorted(cluster.namenode.block_map[block_id].locations)[0]
        cluster.datanode(first).corrupt_block(block_id)
        fetcher = self.make_fetcher(cluster)
        read = fetcher.read_block("/f", 0, first)
        assert read.data == b"z" * 1000
        assert first in cluster.namenode.block_map[block_id].corrupt_on

    def test_no_replicas_raises_hdfs_error(self):
        cluster = make_hdfs(block_size=1000, replication=1, num_datanodes=2)
        cluster.client().put_bytes("/f", b"z" * 500)
        holder = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(holder)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        fetcher = self.make_fetcher(cluster)
        with pytest.raises(HdfsError):
            fetcher.read_block("/f", 0, None)

    def test_make_fetch_tallies_locality(self):
        cluster = make_hdfs(block_size=1000, replication=2)
        cluster.client(node="node0").put_bytes("/f", b"z" * 2000)
        fetcher = self.make_fetcher(cluster)
        tally = {}
        fetch = fetcher.make_fetch("node0", tally)
        fetch("/f", 0, None)
        fetch("/f", 1, None)
        assert sum(tally.values()) == 2
        assert tally.get("node_local", 0) >= 1

    def test_read_whole_file(self):
        cluster = make_hdfs(block_size=7)
        cluster.client().put_text("/f", "hello block world")
        fetcher = self.make_fetcher(cluster)
        text, elapsed = fetcher.read_whole_file("/f", None)
        assert text == "hello block world"
        assert elapsed > 0
