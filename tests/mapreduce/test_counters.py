"""Counter accounting and rendering."""

from repro.mapreduce.counters import C, Counters


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment(C.MAP_INPUT_RECORDS, 5)
        counters.increment(C.MAP_INPUT_RECORDS)
        assert counters.get(C.MAP_INPUT_RECORDS) == 6

    def test_get_missing_is_zero(self):
        assert Counters().get(C.SPILLED_RECORDS) == 0

    def test_set_overrides(self):
        counters = Counters()
        counters.increment(C.HDFS_BYTES_READ, 10)
        counters.set(C.HDFS_BYTES_READ, 3)
        assert counters.get(C.HDFS_BYTES_READ) == 3

    def test_merge_adds(self):
        a, b = Counters(), Counters()
        a.increment(C.MAP_OUTPUT_RECORDS, 1)
        b.increment(C.MAP_OUTPUT_RECORDS, 2)
        b.increment(C.REDUCE_INPUT_GROUPS, 7)
        a.merge(b)
        assert a.get(C.MAP_OUTPUT_RECORDS) == 3
        assert a.get(C.REDUCE_INPUT_GROUPS) == 7

    def test_groups_sorted(self):
        counters = Counters()
        counters.increment(C.MAP_INPUT_RECORDS)
        counters.increment(C.HDFS_BYTES_READ)
        counters.increment(C.DATA_LOCAL_MAPS)
        assert counters.groups() == [
            "FileSystemCounters",
            "Job Counters",
            "Map-Reduce Framework",
        ]

    def test_render_hadoop_style(self):
        counters = Counters()
        counters.increment(C.MAP_INPUT_RECORDS, 42)
        text = counters.render()
        assert "Counters:" in text
        assert "Map-Reduce Framework" in text
        assert "Map input records=42" in text

    def test_as_dict(self):
        counters = Counters()
        counters.increment(C.DATA_LOCAL_MAPS, 2)
        assert counters.as_dict() == {
            "Job Counters": {"Data-local map tasks": 2}
        }
