"""PendingMapQueue locality buckets and the pluggable job schedulers."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.inputformat import InputSplit
from repro.mapreduce.scheduler import (
    FairScheduler,
    FifoScheduler,
    PendingMapQueue,
    make_scheduler,
)
from repro.mapreduce.tasks import MapTask
from repro.util.errors import ConfigError


def make_tasks(locations_per_task):
    return [
        MapTask(
            job_id="job_0001",
            index=i,
            split=InputSplit(
                path="/in",
                block_index=i,
                start_offset=0,
                length=1024,
                locations=tuple(locs),
            ),
        )
        for i, locs in enumerate(locations_per_task)
    ]


@pytest.fixture
def topo():
    # node0..node3 on rack0, node4..node7 on rack1.
    return ClusterTopology.regular(num_nodes=8, nodes_per_rack=4)


class TestPendingMapQueue:
    def test_node_local_preferred(self, topo):
        tasks = make_tasks([("node4",), ("node0",), ("node1",)])
        queue = PendingMapQueue(topo, tasks, initial=range(3))
        assert queue.pick_for("node0") == (1, "node_local")

    def test_rack_local_when_no_node_local(self, topo):
        tasks = make_tasks([("node4",), ("node1",)])
        queue = PendingMapQueue(topo, tasks, initial=range(2))
        # node0 shares rack0 with node1 only.
        assert queue.pick_for("node0") == (1, "rack_local")

    def test_off_rack_fifo_fallback(self, topo):
        tasks = make_tasks([("node4",), ("node5",)])
        queue = PendingMapQueue(topo, tasks, initial=range(2))
        assert queue.pick_for("node0") == (0, "off_rack")
        assert queue.pick_for("node0") == (1, "off_rack")
        assert queue.pick_for("node0") is None

    def test_fifo_within_equal_rank(self, topo):
        tasks = make_tasks([("node0",), ("node0",), ("node0",)])
        queue = PendingMapQueue(topo, tasks, initial=range(3))
        picks = [queue.pick_for("node0")[0] for _ in range(3)]
        assert picks == [0, 1, 2]

    def test_requeue_goes_to_the_back(self, topo):
        tasks = make_tasks([("node0",), ("node0",)])
        queue = PendingMapQueue(topo, tasks, initial=range(2))
        assert queue.pick_for("node0")[0] == 0
        queue.add(0)  # re-queued after a failure
        assert queue.pick_for("node0")[0] == 1
        assert queue.pick_for("node0")[0] == 0

    def test_add_is_idempotent(self, topo):
        tasks = make_tasks([("node0",)])
        queue = PendingMapQueue(topo, tasks, initial=[0])
        queue.add(0)
        assert len(queue) == 1
        assert queue.pick_for("node0")[0] == 0
        assert not queue

    def test_container_protocol(self, topo):
        tasks = make_tasks([("node0",), ("node1",), ("node2",)])
        queue = PendingMapQueue(topo, tasks, initial=[2, 0, 1])
        assert len(queue) == 3
        assert 2 in queue and 1 in queue
        assert list(queue) == [2, 0, 1]  # FIFO enqueue order
        queue.pick_for("node2")
        assert 2 not in queue

    def test_unknown_replica_nodes_ignored(self, topo):
        # Split locations may name nodes outside the topology (e.g. a
        # decommissioned DataNode) — they rank off_rack, not crash.
        tasks = make_tasks([("ghost-node",)])
        queue = PendingMapQueue(topo, tasks, initial=[0])
        assert queue.pick_for("node0") == (0, "off_rack")

    def test_stranger_tracker_gets_global_head(self, topo):
        tasks = make_tasks([("node0",)])
        queue = PendingMapQueue(topo, tasks, initial=[0])
        # A tracker not in the topology cannot be node/rack local.
        assert queue.pick_for("not-a-node") == (0, "off_rack")


class FakeJob:
    def __init__(self, user, active_attempts=0):
        self.conf = JobConf(name="j", user=user)
        self.active_attempts = active_attempts


class TestStrategies:
    def test_fifo_preserves_submission_order(self):
        jobs = [(1, FakeJob("a")), (2, FakeJob("b")), (3, FakeJob("a"))]
        assert FifoScheduler().job_order(jobs, None) == [
            job for _seq, job in jobs
        ]

    def test_fair_orders_users_by_load(self):
        light, heavy = FakeJob("light"), FakeJob("heavy")
        candidates = [(1, heavy), (2, light)]
        loads = {"heavy": 10, "light": 1}
        assert FairScheduler().job_order(candidates, loads) == [light, heavy]

    def test_fair_fifo_within_user(self):
        first, second = FakeJob("u"), FakeJob("u")
        ordered = FairScheduler().job_order([(1, first), (2, second)], {})
        assert ordered == [first, second]

    def test_quota_cap_skips_user_for_the_round(self):
        capped, free = FakeJob("capped"), FakeJob("free")
        scheduler = FairScheduler(quotas={"capped": 4})
        ordered = scheduler.job_order(
            [(1, capped), (2, free)], {"capped": 4, "free": 0}
        )
        assert ordered == [free]

    def test_wave_loads_sums_active_attempts_per_user(self):
        active = {
            1: FakeJob("a", active_attempts=2),
            2: FakeJob("b", active_attempts=1),
            3: FakeJob("a", active_attempts=3),
        }
        assert FairScheduler().wave_loads(active) == {"a": 5, "b": 1}

    def test_make_scheduler(self):
        assert make_scheduler("fifo").name == "fifo"
        fair = make_scheduler("fair", {"u": 2})
        assert fair.name == "fair" and fair.quotas == {"u": 2}
        with pytest.raises(ConfigError):
            make_scheduler("lottery")


class TestConfigValidation:
    def test_scheduler_name_validated(self):
        with pytest.raises(ConfigError):
            MapReduceConfig(scheduler="lottery")

    def test_quota_floor_validated(self):
        with pytest.raises(ConfigError):
            MapReduceConfig(user_quotas={"u": 0})

    def test_defaults_are_fifo_no_quotas(self):
        config = MapReduceConfig()
        assert config.scheduler == "fifo"
        assert config.user_quotas is None
        assert JobConf().user == "student"
