"""Writable type system: serialization, ordering, custom records."""

import pytest

from repro.mapreduce.types import (
    FloatWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    record_writable,
    wrap,
)
from repro.util.errors import InvalidWritableError


class TestText:
    def test_round_trip(self):
        assert Text.decode(Text("héllo").encode()).value == "héllo"

    def test_serialized_size_is_utf8_bytes(self):
        assert Text("abc").serialized_size() == 3
        assert Text("é").serialized_size() == 2

    def test_ordering(self):
        assert Text("a") < Text("b")
        assert sorted([Text("c"), Text("a")])[0].value == "a"

    def test_type_checked(self):
        with pytest.raises(InvalidWritableError):
            Text(42)

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(InvalidWritableError):
            _ = Text("1") < IntWritable(2)


class TestNumericWritables:
    def test_int_round_trip(self):
        assert IntWritable.decode(IntWritable(-17).encode()).value == -17

    def test_wire_sizes(self):
        assert IntWritable(5).serialized_size() == 4
        assert LongWritable(5).serialized_size() == 8
        assert FloatWritable(1.5).serialized_size() == 8

    def test_float_round_trip_precision(self):
        value = 0.1 + 0.2
        assert FloatWritable.decode(FloatWritable(value).encode()).value == value

    def test_bool_rejected(self):
        with pytest.raises(InvalidWritableError):
            IntWritable(True)

    def test_equality_and_hash(self):
        assert IntWritable(3) == IntWritable(3)
        assert hash(IntWritable(3)) == hash(IntWritable(3))
        assert IntWritable(3) != LongWritable(3)  # distinct types


class TestNullWritable:
    def test_singleton(self):
        assert NullWritable() is NullWritable()

    def test_zero_size(self):
        assert NullWritable().serialized_size() == 0


class TestRecordWritable:
    SumCount = record_writable("SumCount", [("total", float), ("count", int)])

    def test_round_trip(self):
        sc = self.SumCount(total=2.5, count=3)
        assert self.SumCount.decode(sc.encode()) == sc

    def test_positional_and_keyword_construction(self):
        a = self.SumCount(1.0, 2)
        b = self.SumCount(total=1.0, count=2)
        assert a == b

    def test_missing_field_rejected(self):
        with pytest.raises(InvalidWritableError):
            self.SumCount(total=1.0)

    def test_extra_field_rejected(self):
        with pytest.raises(InvalidWritableError):
            self.SumCount(total=1.0, count=1, bogus=2)

    def test_decode_arity_checked(self):
        with pytest.raises(InvalidWritableError):
            self.SumCount.decode("justone")

    def test_string_fields(self):
        Profile = record_writable("Profile", [("n", int), ("genre", str)])
        p = Profile(n=7, genre="Film-Noir")
        assert Profile.decode(p.encode()).genre == "Film-Noir"

    def test_sortable(self):
        a = self.SumCount(1.0, 1)
        b = self.SumCount(2.0, 0)
        assert a < b

    def test_repr_is_informative(self):
        assert "total=1.0" in repr(self.SumCount(1.0, 2))


class TestWrap:
    def test_wraps_plain_values(self):
        assert isinstance(wrap("x"), Text)
        assert isinstance(wrap(3), IntWritable)
        assert isinstance(wrap(2.5), FloatWritable)
        assert isinstance(wrap(None), NullWritable)

    def test_writable_passthrough(self):
        value = Text("keep")
        assert wrap(value) is value

    def test_bool_rejected(self):
        with pytest.raises(InvalidWritableError):
            wrap(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidWritableError):
            wrap(object())


class TestMemoisation:
    """Writables are immutable; size/sort-key memos must be pure reuse."""

    def test_serialized_size_encodes_once(self, monkeypatch):
        calls = {"n": 0}
        original = Text.encode

        def counting_encode(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(Text, "encode", counting_encode)
        value = Text("memoised payload")
        first = value.serialized_size()
        for _ in range(5):
            assert value.serialized_size() == first
        assert calls["n"] == 1

    def test_record_sort_key_built_once_and_stable(self):
        Pt = record_writable("Pt", [("x", int), ("y", int)])
        p = Pt(x=3, y=4)
        key1 = p.sort_key()
        key2 = p.sort_key()
        assert key1 is key2  # memo reuse, not recomputation
        assert key1 == (3, 4)
        assert (p.x, p.y) == (3, 4)  # fields untouched by memoisation

    def test_memo_does_not_leak_into_equality_hash_or_pickle(self):
        import pickle

        warmed = Text("same")
        warmed.serialized_size()
        warmed.sort_key()
        fresh = Text("same")
        assert warmed == fresh
        assert hash(warmed) == hash(fresh)
        restored = pickle.loads(
            pickle.dumps(warmed, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert restored == fresh
        assert restored.serialized_size() == fresh.serialized_size()

    def test_comparisons_unchanged_after_memoisation(self):
        a, b = IntWritable(1), IntWritable(2)
        a.serialized_size(), b.serialized_size()
        assert a < b
        assert sorted([b, a]) == [a, b]
