"""The serial no-HDFS runner (assignment-1 mode)."""

import pytest

from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.counters import C
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.streaming import streaming_job
from repro.util.errors import (
    FileNotFoundInHdfs,
    JobSubmissionError,
    OutputExistsError,
)


def wc_job(name="wc", combine=False, num_reduces=1):
    return streaming_job(
        name=name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        combine_fn=(lambda k, vs: [(k, sum(vs))]) if combine else None,
        num_reduces=num_reduces,
    )


@pytest.fixture
def runner():
    fs = LinuxFileSystem()
    fs.write_file("/in/a.txt", "x y x\nz x y\n")
    return LocalJobRunner(localfs=fs, split_size=8)


class TestLocalRunner:
    def test_answers(self, runner):
        result = runner.run(wc_job(), "/in/a.txt", "/out")
        assert result.output_dict() == {"x": "3", "y": "2", "z": "1"}

    def test_writes_part_files_and_success_marker(self, runner):
        runner.run(wc_job(num_reduces=2), "/in/a.txt", "/out")
        fs = runner.localfs
        assert fs.exists("/out/part-00000")
        assert fs.exists("/out/part-00001")
        assert fs.exists("/out/_SUCCESS")

    def test_directory_input(self, runner):
        runner.localfs.write_file("/in/b.txt", "x q\n")
        result = runner.run(wc_job(), "/in", "/out")
        assert result.output_dict()["x"] == "4"
        assert result.output_dict()["q"] == "1"

    def test_output_exists_refused(self, runner):
        runner.run(wc_job(), "/in/a.txt", "/out")
        with pytest.raises(OutputExistsError):
            runner.run(wc_job(), "/in/a.txt", "/out")

    def test_missing_input(self, runner):
        with pytest.raises(FileNotFoundInHdfs):
            runner.run(wc_job(), "/nope", "/out2")

    def test_empty_input_dir(self):
        runner = LocalJobRunner(localfs=LinuxFileSystem())
        runner.localfs.write_file("/other/x", "1")
        with pytest.raises(FileNotFoundInHdfs):
            runner.run(wc_job(), "/in", "/out")

    def test_counters_populated(self, runner):
        result = runner.run(wc_job(), "/in/a.txt", "/out")
        assert result.counters.get(C.MAP_INPUT_RECORDS) == 2
        assert result.counters.get(C.MAP_OUTPUT_RECORDS) == 6
        assert result.counters.get(C.REDUCE_OUTPUT_RECORDS) == 3

    def test_splits_respect_split_size(self, runner):
        result = runner.run(wc_job(), "/in/a.txt", "/out")
        assert result.num_splits == 2  # 12 bytes / 8-byte splits

    def test_simulated_time_positive_and_serial(self, runner):
        result = runner.run(wc_job(), "/in/a.txt", "/out")
        # At least one startup per task (2 maps + 1 reduce).
        assert result.simulated_seconds >= 3.0

    def test_combiner_equivalence(self):
        fs = LinuxFileSystem()
        fs.write_file("/in.txt", "a b a b c a\n" * 10)
        plain = LocalJobRunner(localfs=fs, split_size=16).run(
            wc_job("plain"), "/in.txt", "/out-plain"
        )
        combined = LocalJobRunner(localfs=fs, split_size=16).run(
            wc_job("comb", combine=True), "/in.txt", "/out-comb"
        )
        assert plain.output_dict() == combined.output_dict()

    def test_node_cache_shared_across_tasks(self):
        """One workstation = one JVM: the side-file cache is read once."""
        fs = LinuxFileSystem()
        fs.write_file("/in.txt", "l1\nl2\nl3\nl4\n")
        fs.write_file("/side.txt", "lookup")
        reads = []

        from repro.mapreduce.api import Context, Job, Mapper

        class SideMapper(Mapper):
            def setup(self, ctx: Context):
                before = ctx.extra_time
                ctx.cached_side_file("/side.txt")
                if ctx.extra_time > before:
                    reads.append(1)

            def map(self, key, value, ctx):
                ctx.write(value, 1)

        class SideJob(Job):
            mapper = SideMapper

        runner = LocalJobRunner(localfs=fs, split_size=6)
        result = runner.run(SideJob(), "/in.txt", "/out")
        assert result.num_splits >= 2
        assert sum(reads) == 1  # only the first task paid for the read
