"""Execution backends: submit/join semantics and the engine barrier."""

import warnings

import pytest

from repro.mapreduce.backend import (
    BACKEND_NAMES,
    PooledExecutionBackend,
    SerialExecutionBackend,
    create_backend,
    default_backend_spec,
    resolve_backend,
    set_default_backend,
)
from repro.sim.engine import Simulation
from repro.util.errors import ConfigError, TaskFailedError


class TestSerialBackend:
    def test_runs_at_submit(self):
        backend = SerialExecutionBackend()
        seen = []
        handle = backend.submit(lambda: 41 + 1, lambda h: seen.append(h.result()))
        assert seen == [42]
        assert handle.result() == 42
        assert backend.pending_since() is None

    def test_error_captured_in_handle(self):
        backend = SerialExecutionBackend()
        seen = []

        def boom():
            raise TaskFailedError("map raised ValueError: nope")

        backend.submit(boom, seen.append)
        with pytest.raises(TaskFailedError):
            seen[0].result()


class TestPooledBackend:
    @pytest.fixture(params=["thread", "process"])
    def pooled(self, request):
        backend = PooledExecutionBackend(workers=2, mode=request.param)
        yield backend
        backend.shutdown()

    def test_join_fires_callbacks_in_submission_order(self, pooled):
        order = []
        for i in range(6):
            pooled.submit(
                _double_factory(i),
                lambda h: order.append(h.result()),
                submit_time=float(i),
            )
        assert pooled.pending_since() == 0.0
        pooled.join_all()
        assert order == [0, 2, 4, 6, 8, 10]
        assert pooled.pending_since() is None

    def test_inline_submission_runs_immediately(self, pooled):
        seen = []
        pooled.submit(lambda: "now", lambda h: seen.append(h.result()), inline=True)
        assert seen == ["now"]  # before any join
        assert pooled.pending_since() is None

    def test_callback_submitting_more_work_is_drained(self, pooled):
        results = []

        def first_done(handle):
            results.append(handle.result())
            pooled.submit(_double_factory(50), lambda h: results.append(h.result()))

        pooled.submit(_double_factory(1), first_done)
        pooled.join_all()
        assert results == [2, 100]

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            PooledExecutionBackend(mode="fibers")


class TestTransportFallback:
    def test_unpicklable_work_reruns_inline(self):
        backend = PooledExecutionBackend(workers=1, mode="process")
        try:
            seen = []
            local_state = {"x": 7}
            backend.submit(lambda: local_state["x"] * 3, lambda h: seen.append(h.result()))
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend.join_all()
            assert seen == [21]
            assert any(
                issubclass(w.category, RuntimeWarning) for w in caught
            )
        finally:
            backend.shutdown()


class TestRegistry:
    def test_create_by_name(self):
        for name in BACKEND_NAMES:
            backend = create_backend(name, workers=1)
            try:
                assert backend.name in ("serial", "pooled")
            finally:
                backend.shutdown()
        with pytest.raises(ConfigError):
            create_backend("gpu")

    def test_resolve_precedence(self):
        original = default_backend_spec()
        try:
            explicit = SerialExecutionBackend()
            assert resolve_backend(explicit) is explicit
            resolved = resolve_backend(None, "pooled-threads", 2)
            assert resolved.parallel and resolved.mode == "thread"
            resolved.shutdown()
            set_default_backend("pooled-threads", 1)
            fallback = resolve_backend(None)
            assert fallback.parallel
            fallback.shutdown()
        finally:
            set_default_backend(*original)
        assert not resolve_backend(None).parallel

    def test_unknown_default_rejected(self):
        with pytest.raises(ConfigError):
            set_default_backend("quantum")


class TestEngineBarrier:
    def test_clock_never_passes_pending_work(self):
        """The engine joins in-flight work before advancing past its
        submit time: same-time events overlap, later events do not."""
        sim = Simulation()
        backend = PooledExecutionBackend(workers=2, mode="thread")
        sim.register_work_joiner(backend)
        trace = []

        def launch(tag):
            backend.submit(
                lambda: tag,
                lambda h: trace.append((sim.now, "joined", h.result())),
                submit_time=sim.now,
            )

        sim.schedule_at(1.0, launch, "a")
        sim.schedule_at(1.0, launch, "b")
        sim.schedule_at(5.0, lambda: trace.append((sim.now, "later", None)))
        sim.run_until(10.0)
        backend.shutdown()
        # Both joins land with the clock still at 1.0, before t=5 runs.
        assert trace == [
            (1.0, "joined", "a"),
            (1.0, "joined", "b"),
            (5.0, "later", None),
        ]


def _double_factory(i):
    import functools

    return functools.partial(_double, i)


def _double(i):
    return i * 2
