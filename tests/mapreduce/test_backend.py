"""Execution backends: submit/join semantics and the engine barrier."""

import warnings

import pytest

from repro.mapreduce.backend import (
    BACKEND_NAMES,
    PooledExecutionBackend,
    SerialExecutionBackend,
    create_backend,
    default_backend_spec,
    resolve_backend,
    set_default_backend,
)
from repro.sim.engine import Simulation
from repro.util.errors import ConfigError, TaskFailedError


class TestSerialBackend:
    def test_runs_at_submit(self):
        backend = SerialExecutionBackend()
        seen = []
        handle = backend.submit(lambda: 41 + 1, lambda h: seen.append(h.result()))
        assert seen == [42]
        assert handle.result() == 42
        assert backend.pending_since() is None

    def test_error_captured_in_handle(self):
        backend = SerialExecutionBackend()
        seen = []

        def boom():
            raise TaskFailedError("map raised ValueError: nope")

        backend.submit(boom, seen.append)
        with pytest.raises(TaskFailedError):
            seen[0].result()


class TestPooledBackend:
    @pytest.fixture(params=["thread", "process"])
    def pooled(self, request):
        backend = PooledExecutionBackend(workers=2, mode=request.param)
        yield backend
        backend.shutdown()

    def test_join_fires_callbacks_in_submission_order(self, pooled):
        order = []
        for i in range(6):
            pooled.submit(
                _double_factory(i),
                lambda h: order.append(h.result()),
                submit_time=float(i),
            )
        assert pooled.pending_since() == 0.0
        pooled.join_all()
        assert order == [0, 2, 4, 6, 8, 10]
        assert pooled.pending_since() is None

    def test_inline_submission_runs_immediately(self, pooled):
        seen = []
        pooled.submit(lambda: "now", lambda h: seen.append(h.result()), inline=True)
        assert seen == ["now"]  # before any join
        assert pooled.pending_since() is None

    def test_callback_submitting_more_work_is_drained(self, pooled):
        results = []

        def first_done(handle):
            results.append(handle.result())
            pooled.submit(_double_factory(50), lambda h: results.append(h.result()))

        pooled.submit(_double_factory(1), first_done)
        pooled.join_all()
        assert results == [2, 100]

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            PooledExecutionBackend(mode="fibers")


class TestTransportFallback:
    def test_unpicklable_work_reruns_inline(self):
        backend = PooledExecutionBackend(workers=1, mode="process")
        try:
            seen = []
            local_state = {"x": 7}
            backend.submit(lambda: local_state["x"] * 3, lambda h: seen.append(h.result()))
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend.join_all()
            assert seen == [21]
            assert any(
                issubclass(w.category, RuntimeWarning) for w in caught
            )
        finally:
            backend.shutdown()


class TestRegistry:
    def test_create_by_name(self):
        for name in BACKEND_NAMES:
            backend = create_backend(name, workers=1)
            try:
                assert backend.name in ("serial", "pooled", "auto")
            finally:
                backend.shutdown()
        with pytest.raises(ConfigError):
            create_backend("gpu")

    def test_resolve_precedence(self):
        original = default_backend_spec()
        try:
            explicit = SerialExecutionBackend()
            assert resolve_backend(explicit) is explicit
            resolved = resolve_backend(None, "pooled-threads", 2)
            assert resolved.parallel and resolved.mode == "thread"
            resolved.shutdown()
            set_default_backend("pooled-threads", 1)
            fallback = resolve_backend(None)
            assert fallback.parallel
            fallback.shutdown()
        finally:
            set_default_backend(*original)
        assert not resolve_backend(None).parallel

    def test_unknown_default_rejected(self):
        with pytest.raises(ConfigError):
            set_default_backend("quantum")


class TestEngineBarrier:
    def test_clock_never_passes_pending_work(self):
        """The engine joins in-flight work before advancing past its
        submit time: same-time events overlap, later events do not."""
        sim = Simulation()
        backend = PooledExecutionBackend(workers=2, mode="thread")
        sim.register_work_joiner(backend)
        trace = []

        def launch(tag):
            backend.submit(
                lambda: tag,
                lambda h: trace.append((sim.now, "joined", h.result())),
                submit_time=sim.now,
            )

        sim.schedule_at(1.0, launch, "a")
        sim.schedule_at(1.0, launch, "b")
        sim.schedule_at(5.0, lambda: trace.append((sim.now, "later", None)))
        sim.run_until(10.0)
        backend.shutdown()
        # Both joins land with the clock still at 1.0, before t=5 runs.
        assert trace == [
            (1.0, "joined", "a"),
            (1.0, "joined", "b"),
            (5.0, "later", None),
        ]


class TestWorkerCrashRecovery:
    """A worker dying while holding a result: bounded resubmit, then
    inline fallback — the answer survives either way."""

    def test_injected_crash_recovers_on_resubmit(self):
        backend = PooledExecutionBackend(workers=2, mode="thread")
        try:
            backend._chaos = lambda index: index == 1
            seen = []
            for i in range(4):
                backend.submit(
                    _double_factory(i), lambda h: seen.append(h.result())
                )
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                backend.join_all()  # resubmit succeeds; no inline fallback
            assert seen == [0, 2, 4, 6]
            assert backend.worker_crash_recoveries == 1
        finally:
            backend.shutdown()

    def test_injected_crash_keeps_callback_order(self):
        backend = PooledExecutionBackend(workers=2, mode="thread")
        try:
            backend._chaos = lambda index: index in (0, 2)
            order = []
            for i in range(5):
                backend.submit(
                    _double_factory(i), lambda h: order.append(h.result())
                )
            backend.join_all()
            assert order == [0, 2, 4, 6, 8]
            assert backend.worker_crash_recoveries == 2
        finally:
            backend.shutdown()

    def test_pool_survives_injected_crash(self):
        backend = PooledExecutionBackend(workers=1, mode="thread")
        try:
            backend._chaos = lambda index: index == 0
            seen = []
            backend.submit(_double_factory(3), lambda h: seen.append(h.result()))
            backend.join_all()
            backend._chaos = None
            backend.submit(_double_factory(4), lambda h: seen.append(h.result()))
            backend.join_all()
            assert seen == [6, 8]
            assert backend.pending_since() is None
        finally:
            backend.shutdown()

    def test_real_broken_process_pool_falls_back_inline(self):
        """A work payload that kills every pool worker it lands on:
        resubmits exhaust, the inline fallback (same process) answers."""
        import functools
        import os

        backend = PooledExecutionBackend(workers=1, mode="process")
        try:
            seen = []
            backend.submit(
                functools.partial(_answer_or_die, os.getpid()),
                lambda h: seen.append(h.result()),
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend.join_all()
            assert seen == ["survived"]
            assert backend.worker_crash_recoveries == 1
            assert any(
                issubclass(w.category, RuntimeWarning)
                and "worker crash" in str(w.message)
                for w in caught
            )
        finally:
            backend.shutdown()

    def test_work_error_during_resubmit_is_reported(self):
        backend = PooledExecutionBackend(workers=1, mode="thread")
        try:
            backend._chaos = lambda index: True
            state = {"calls": 0}

            def flaky():
                state["calls"] += 1
                if state["calls"] > 1:
                    raise TaskFailedError("real failure on the rerun")
                return "first"

            seen = []
            backend.submit(flaky, seen.append)
            backend.join_all()
            with pytest.raises(TaskFailedError):
                seen[0].result()
        finally:
            backend.shutdown()


def _answer_or_die(parent_pid):
    """Kill any pool worker this lands on; answer only in the parent."""
    import os

    if os.getpid() != parent_pid:
        os._exit(1)
    return "survived"


def _double_factory(i):
    import functools

    return functools.partial(_double, i)


def _double(i):
    return i * 2
