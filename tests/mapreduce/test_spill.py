"""Map-side external sort (spill-to-disk runs) and the auto backend.

The spill contract: ``external_sorted`` yields *exactly*
``sort_pairs(pairs)`` — chunked stable sorts heap-merged with a
stable merge preferring earlier chunks reproduce one big stable sort —
so turning ``spill_record_limit`` on changes job outputs not at all
(only the modeled spill accounting moves).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountJob, WordCountWithCombinerJob
from repro.mapreduce import backend as backend_mod
from repro.mapreduce.backend import (
    AUTO_MIN_PARALLEL_BYTES,
    AutoExecutionBackend,
    create_backend,
    usable_cores,
)
from repro.mapreduce.blockio import SpillFile
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.counters import C, PerfStats
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.shuffle import external_sorted, sort_pairs
from repro.mapreduce.types import IntWritable, Text

SETTINGS = settings(max_examples=40, deadline=None)

pair_lists = st.lists(
    st.tuples(
        st.text(alphabet="abcdef", max_size=3).map(Text),
        st.integers(min_value=-5, max_value=5).map(IntWritable),
    ),
    max_size=60,
)


class TestExternalSorted:
    @given(pairs=pair_lists, limit=st.integers(min_value=1, max_value=7))
    @SETTINGS
    def test_equals_in_memory_sort_exactly(self, pairs, limit):
        expected = sort_pairs(pairs)
        got = list(external_sorted(pairs, limit))
        assert len(got) == len(expected)
        for (k1, v1), (k2, v2) in zip(got, expected):
            # identical sequence INCLUDING equal-key value order
            # (stability), compared on encoded text to dodge __eq__'s
            # key-only comparison
            assert k1.encode() == k2.encode() and v1.encode() == v2.encode()

    def test_perf_counts_runs(self):
        pairs = [(Text(c), IntWritable(i)) for i, c in enumerate("dcba" * 5)]
        perf = PerfStats()
        list(external_sorted(pairs, 6, perf))
        assert perf.spill_runs == 4  # ceil(20 / 6)
        assert perf.spill_ms >= 0.0

    def test_abandoning_iterator_early_is_clean(self):
        """Closing the mmaps under live decode generators must not
        raise BufferError when the consumer stops early."""
        pairs = [(Text(str(i)), IntWritable(i)) for i in range(50)]
        gen = external_sorted(pairs, 10)
        next(gen)
        gen.close()  # triggers the finally block mid-merge

    def test_spillfile_roundtrip_and_close(self):
        spill = SpillFile.write(b"hello spill")
        assert bytes(spill.view()) == b"hello spill"
        assert len(spill) == 11
        spill.close()


def _run_wordcount(mr_config, corpus, job_cls=WordCountWithCombinerJob):
    fs = LinuxFileSystem()
    fs.write_file("/in/corpus.txt", corpus)
    with LocalJobRunner(
        localfs=fs, mr_config=mr_config, split_size=4 * 1024
    ) as runner:
        job = job_cls(JobConf(name="wc", num_reduces=2))
        return runner.run(job, "/in", "/out")


CORPUS = "\n".join(
    f"line {i % 7} word{i % 13} word{i % 5} tail" for i in range(400)
)


class TestSpillInJobs:
    @pytest.mark.parametrize("job_cls", [WordCountJob, WordCountWithCombinerJob])
    def test_spill_on_off_outputs_identical(self, job_cls):
        plain = _run_wordcount(MapReduceConfig(), CORPUS, job_cls)
        spilled = _run_wordcount(
            MapReduceConfig(spill_record_limit=64), CORPUS, job_cls
        )
        assert sorted(spilled.pairs) == sorted(plain.pairs)
        # every counter except the spill accounting matches
        a, b = plain.counters.as_dict(), spilled.counters.as_dict()
        for group in a:
            for name in a[group]:
                if name == "Spilled Records":
                    continue
                assert a[group][name] == b[group][name], (group, name)
        assert spilled.counters.get(C.SPILLED_RECORDS) > plain.counters.get(
            C.SPILLED_RECORDS
        )

    def test_spill_config_validation(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            MapReduceConfig(spill_record_limit=0)
        with pytest.raises(ConfigError):
            MapReduceConfig(shuffle_transport="carrier-pigeon")


class TestAutoBackend:
    def test_decide_serial_on_one_core(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "usable_cores", lambda: 1)
        auto = AutoExecutionBackend()
        try:
            assert auto.decide(10 * AUTO_MIN_PARALLEL_BYTES) == "serial"
            assert not auto.parallel
        finally:
            auto.shutdown()

    def test_decide_serial_below_byte_floor(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "usable_cores", lambda: 8)
        auto = AutoExecutionBackend()
        try:
            assert auto.decide(AUTO_MIN_PARALLEL_BYTES - 1) == "serial"
            assert auto.decide(AUTO_MIN_PARALLEL_BYTES) == "pooled"
            assert auto.parallel
            assert auto.decide(0) == "serial"  # flips back per job
        finally:
            auto.shutdown()

    def test_decide_unknown_size_gates_on_cores_only(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "usable_cores", lambda: 4)
        auto = AutoExecutionBackend(workers=2)
        try:
            assert auto.decide(None) == "pooled"
        finally:
            auto.shutdown()

    def test_auto_runner_matches_serial(self):
        auto_result = None
        fs = LinuxFileSystem()
        fs.write_file("/in/corpus.txt", CORPUS)
        with LocalJobRunner(
            localfs=fs, backend=create_backend("auto", 2), split_size=4 * 1024
        ) as runner:
            job = WordCountWithCombinerJob(JobConf(name="wc", num_reduces=2))
            auto_result = runner.run(job, "/in", "/out")
            chosen = runner.backend.chosen
        serial = _run_wordcount(MapReduceConfig(), CORPUS)
        assert sorted(auto_result.pairs) == sorted(serial.pairs)
        assert auto_result.counters.as_dict() == serial.counters.as_dict()
        assert auto_result.simulated_seconds == serial.simulated_seconds
        # this corpus is tiny, so auto must have stayed serial
        assert chosen == "serial"

    def test_usable_cores_positive(self):
        assert usable_cores() >= 1
