"""The functional streaming front end."""

import pytest

from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.config import JobConf
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.streaming import streaming_job
from repro.util.errors import MapReduceError


class TestStreamingJob:
    def test_map_only_runs_identity_reduce(self):
        fs = LinuxFileSystem()
        fs.write_file("/in.txt", "a\nb\n")
        job = streaming_job("mapper-only", lambda k, v: [(v, "seen")])
        result = LocalJobRunner(localfs=fs).run(job, "/in.txt", "/out")
        assert result.output_dict() == {"a": "seen", "b": "seen"}

    def test_keys_arrive_as_plain_values(self):
        fs = LinuxFileSystem()
        fs.write_file("/in.txt", "hello\n")
        seen = {}

        def map_fn(key, value):
            seen["key_type"] = type(key).__name__
            seen["value_type"] = type(value).__name__
            return [(value, 1)]

        job = streaming_job("probe", map_fn, lambda k, vs: [(k, sum(vs))])
        LocalJobRunner(localfs=fs).run(job, "/in.txt", "/out")
        assert seen == {"key_type": "int", "value_type": "str"}

    def test_reduce_values_are_plain(self):
        fs = LinuxFileSystem()
        fs.write_file("/in.txt", "a a a\n")
        captured = {}

        def reduce_fn(key, values):
            captured["values"] = values
            return [(key, sum(values))]

        job = streaming_job(
            "plainvals",
            lambda k, v: ((w, 1) for w in v.split()),
            reduce_fn,
        )
        LocalJobRunner(localfs=fs).run(job, "/in.txt", "/out")
        assert captured["values"] == [1, 1, 1]

    def test_custom_conf_respected(self):
        conf = JobConf(name="old-name", num_reduces=3)
        job = streaming_job("new-name", lambda k, v: [], conf=conf)
        assert job.conf.num_reduces == 3
        assert job.name == "new-name"

    def test_name_propagates(self):
        job = streaming_job("myjob", lambda k, v: [])
        assert job.name == "myjob"
        assert "mapper=" in job.describe()

    def test_job_without_mapper_rejected(self):
        from repro.mapreduce.api import Job

        class Empty(Job):
            pass

        with pytest.raises(MapReduceError):
            Empty()
