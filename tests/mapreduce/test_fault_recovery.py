"""The hardened failure paths: fetch retry, output re-execution, timeouts.

These tests walk the tracker-lost requeue chain step by step — completed
map on a dead tracker, ``map_output_lost``, re-execution, reduces
refetching — asserting events and counters at each stage, plus the
shuffle-retry blip that must *not* escalate, per-attempt timeouts, and
restart reconciliation.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.hdfs.config import HdfsConfig
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.counters import C
from repro.mapreduce.streaming import streaming_job
from repro.mapreduce.tasks import AttemptState
from tests.conftest import make_mr


def wc_job(name="wc", conf=None, num_reduces=1):
    return streaming_job(
        name=name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        num_reduces=num_reduces,
        conf=conf,
    )


def no_jitter_cluster(**mr_kwargs) -> MapReduceCluster:
    """Deterministic shuffle-retry timing for window-sensitive tests."""
    return MapReduceCluster(
        num_workers=4,
        hdfs_config=HdfsConfig(block_size=2048, replication=2),
        mr_config=MapReduceConfig(shuffle_retry_jitter=0.0, **mr_kwargs),
        seed=1,
    )


def non_job_counters(report):
    return {
        group: names
        for group, names in report.counters.as_dict().items()
        if group != "Job Counters"
    }


class TestLostMapOutputChain:
    """Satellite drill: dead tracker -> map_output_lost -> re-execution
    -> reduces refetch, with counters checked at every step."""

    def _clean_baseline(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "w " * 8000)
        return mr.run_job(
            wc_job(num_reduces=2), "/in.txt", "/out", require_success=True
        )

    def test_chain_step_by_step(self):
        mr = make_mr(num_workers=4)
        mr.sim.bus.record_history = True
        mr.client().put_text("/in.txt", "w " * 8000)
        running = mr.submit(wc_job(num_reduces=2), "/in.txt", "/out")

        # Step 1: a map completes somewhere; that tracker is the victim.
        mr.hdfs.wait_until(
            lambda: any(t.output is not None for t in running.map_tasks),
            timeout=600,
            step=0.5,
        )
        victim = next(
            t.completed_on for t in running.map_tasks if t.completed_on
        )
        victim_tasks = {
            t.task_id for t in running.map_tasks if t.completed_on == victim
        }

        # Step 2: only the TaskTracker dies (its DataNode survives), so
        # input blocks stay readable but materialized map output is gone.
        mr.tasktrackers[victim].crash()

        # Step 3: reduces exhaust their fetch retries against the dead
        # tracker and escalate to map_output_lost.
        mr.hdfs.wait_until(
            lambda: mr.sim.bus.history("mr.jobtracker.map_output_lost"),
            timeout=3600,
            step=1.0,
        )
        lost = mr.sim.bus.history("mr.jobtracker.map_output_lost")
        assert {e.data["task_id"] for e in lost} <= victim_tasks
        assert all(e.data["node"] == victim for e in lost)
        assert mr.sim.bus.history("mr.shuffle.retry"), (
            "escalation must come after transient retries, not instead"
        )

        # Step 4: the lost maps re-execute elsewhere and reduces refetch.
        mr.wait_for_job(running, timeout=24 * 3600)
        assert running.succeeded
        assert all(t.completed_on != victim for t in running.map_tasks)
        reran = [
            t for t in running.map_tasks if t.task_id in {
                e.data["task_id"] for e in lost
            }
        ]
        assert reran and all(len(t.attempts) >= 2 for t in reran)

        # Step 5: none of it counts against anyone's failure budget...
        assert all(t.failures == 0 for t in running.map_tasks)
        failed = mr.sim.bus.history("mr.task.failed")
        assert failed and all(
            e.data["counts_against"] is False for e in failed
        )

        # ...and the *answer* counters match an undisturbed run exactly.
        report = running.report()
        assert mr.output_dict("/out") == {"w": "8000"}
        assert non_job_counters(report) == non_job_counters(
            self._clean_baseline()
        )
        # The journey shows in the scheduler's books: extra launches.
        assert report.counters.get(C.TOTAL_LAUNCHED_MAPS) > len(
            running.map_tasks
        )


class TestShuffleRetryRidesOutBlips:
    def test_quick_tracker_restart_avoids_escalation(self):
        mr = no_jitter_cluster()
        mr.sim.bus.record_history = True
        mr.client().put_text("/in.txt", "w " * 8000)
        # Crash the tracker of the second completed map; bring it back
        # mid-backoff, inside the fetch-retry budget (1s + 2s + 4s).
        plan = FaultPlan().on_event(
            "mr.task.completed",
            "tracker.crash",
            count=2,
            target_from="tracker",
            restart_after=6.0,
        )
        with FaultInjector(plan, mr) as injector:
            report = mr.run_job(
                wc_job(num_reduces=2),
                "/in.txt",
                "/out",
                timeout=24 * 3600,
                require_success=True,
            )
            kinds = [kind for _, kind, _ in injector.injected]
        assert kinds == ["tracker.crash", "tracker.restart"]
        assert mr.sim.bus.history("mr.shuffle.retry"), "blip went unnoticed"
        assert not mr.sim.bus.history("mr.jobtracker.map_output_lost"), (
            "a retry-absorbable blip must not re-execute maps"
        )
        assert mr.output_dict("/out") == {"w": "8000"}
        assert report.counters.get(C.FAILED_MAPS) == 0


class TestTaskTimeout:
    def test_unresponsive_task_is_killed_and_counted(self):
        mr = make_mr()
        mr.sim.bus.record_history = True
        mr.client().put_text("/in.txt", "a b c\n")
        conf = JobConf(name="hung", task_timeout=0.001, max_attempts=2)
        report = mr.run_job(wc_job(conf=conf), "/in.txt", "/out")
        assert report.state == "failed"
        assert "failed to report status" in report.failure_reason
        timeouts = mr.sim.bus.history("mr.task.timeout")
        assert timeouts
        # Timeouts are the task's own fault: they burn the budget.
        failed = mr.sim.bus.history("mr.task.failed")
        assert failed and all(e.data["counts_against"] for e in failed)

    def test_generous_timeout_changes_nothing(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a b a\n" * 50)
        conf = JobConf(name="calm", task_timeout=3600.0)
        report = mr.run_job(
            wc_job(conf=conf), "/in.txt", "/out", require_success=True
        )
        assert report.succeeded
        assert mr.output_dict("/out") == {"a": "100", "b": "50"}


class TestTrackerRestartReconciliation:
    def test_reregistration_requeues_orphaned_attempts(self):
        mr = make_mr(num_workers=2)
        mr.client().put_text("/in.txt", "w " * 12000)
        running = mr.submit(wc_job(), "/in.txt", "/out")
        # Catch a tracker mid-flight, with attempts the JobTracker still
        # believes are RUNNING on it.
        mr.hdfs.wait_until(
            lambda: any(tt.running for tt in mr.tasktrackers.values()),
            timeout=600,
            step=0.5,
        )
        name, tracker = next(
            (n, tt) for n, tt in mr.tasktrackers.items() if tt.running
        )
        tracker.stop()  # loses its in-flight work
        tracker.start(mr.jobtracker)  # quick restart, same sim instant
        mr.wait_for_job(running, timeout=24 * 3600)
        assert running.succeeded
        orphaned = [
            a
            for a in running.all_attempts()
            if a.state == AttemptState.KILLED
            and a.failure == "TaskTracker restarted"
        ]
        assert orphaned and all(a.tracker == name for a in orphaned)
        assert mr.output_dict("/out") == {"w": "12000"}


class TestPooledWorkerCrashOnCluster:
    def test_worker_death_recovery_preserves_results(self):
        """Every pooled work item loses its first result to an injected
        worker crash; bounded resubmission recovers all of them and the
        job's answer matches a serial run."""
        serial = make_mr(num_workers=4)
        serial.client().put_text("/in.txt", "a b a c\n" * 300)
        serial_report = serial.run_job(
            wc_job(num_reduces=2), "/in.txt", "/out", require_success=True
        )
        serial_out = serial.output_dict("/out")

        mr = MapReduceCluster(
            num_workers=4,
            hdfs_config=HdfsConfig(block_size=2048, replication=2),
            mr_config=MapReduceConfig(
                execution_backend="pooled-threads", backend_workers=2
            ),
            seed=1,
        )
        with mr:
            mr.client().put_text("/in.txt", "a b a c\n" * 300)
            plan = FaultPlan(seed=5).worker_crash_rate(1.0)
            with FaultInjector(plan, mr) as injector:
                report = mr.run_job(
                    wc_job(num_reduces=2),
                    "/in.txt",
                    "/out",
                    timeout=24 * 3600,
                    require_success=True,
                )
                crashes = [
                    k for _, k, _ in injector.injected
                    if k == "backend.worker_crash"
                ]
            assert crashes, "rate=1.0 must crash every pooled work item"
            assert mr.backend.worker_crash_recoveries == len(crashes)
            assert mr.output_dict("/out") == serial_out
            assert non_job_counters(report) == non_job_counters(serial_report)
