"""Partitioner determinism and coverage."""

from repro.mapreduce.partitioner import HashPartitioner, KeyFieldPartitioner
from repro.mapreduce.types import Text


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner()
        for i in range(200):
            assert 0 <= p.partition(Text(f"key{i}"), 7) < 7

    def test_deterministic(self):
        p = HashPartitioner()
        assert p.partition(Text("abc"), 5) == p.partition(Text("abc"), 5)

    def test_single_reduce_always_zero(self):
        p = HashPartitioner()
        assert p.partition(Text("anything"), 1) == 0

    def test_spreads_keys(self):
        p = HashPartitioner()
        buckets = {p.partition(Text(f"k{i}"), 4) for i in range(100)}
        assert buckets == {0, 1, 2, 3}

    def test_stable_across_processes(self):
        # CRC-based, not Python hash(): a fixed expectation is safe.
        p = HashPartitioner()
        assert p.partition(Text("hadoop"), 10) == p.partition(Text("hadoop"), 10)


class TestKeyFieldPartitioner:
    def test_same_prefix_same_partition(self):
        p = KeyFieldPartitioner(separator="|", field_index=0)
        parts = {
            p.partition(Text(f"job7|{task}"), 8) for task in range(50)
        }
        assert len(parts) == 1

    def test_different_prefixes_spread(self):
        p = KeyFieldPartitioner(separator="|", field_index=0)
        parts = {p.partition(Text(f"job{j}|0"), 8) for j in range(64)}
        assert len(parts) > 1

    def test_field_index_clamped(self):
        p = KeyFieldPartitioner(separator="|", field_index=5)
        # No 6th field: falls back to the last one without crashing.
        assert 0 <= p.partition(Text("a|b"), 4) < 4
