"""The shared-memory shuffle plane: descriptors, arenas, scopes, leaks.

Four contracts:

1. the RWD1 descriptor codec round-trips exactly and rejects every
   malformed byte sequence with :class:`WireFormatError` (truncation at
   *every* boundary, bad magic, unknown kinds, trailing bytes);
2. blobs published into a segment read back bit-exactly through
   :func:`attach_slice`, in both arenas, via a per-process attach cache
   that maps each segment at most once;
3. an :class:`ShmScope` unlinks everything it owns exactly once — the
   segments it adopted *and* the orphans a crashed worker left behind —
   and the stdlib resource tracker stays silent throughout;
4. :class:`MapOutput`'s descriptor form is observationally identical to
   its framed form.
"""

import functools
import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import shm, wire
from repro.mapreduce.backend import PooledExecutionBackend
from repro.mapreduce.counters import PerfStats
from repro.mapreduce.shuffle import MapOutput
from repro.mapreduce.types import IntWritable, Text
from repro.util.errors import ConfigError, WireFormatError

SETTINGS = settings(max_examples=60, deadline=None)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="shm plane tests assume a POSIX host"
)


def _pairs(n=8):
    return [(Text(f"k{i:03d}"), IntWritable(i)) for i in range(n)]


def _blob(n=8):
    blob, _ = wire.encode_pairs(_pairs(n))
    return blob


@pytest.fixture
def scope():
    s = shm.ShmScope("auto")
    yield s
    s.release()


# -- 1. descriptor codec ----------------------------------------------------

kinds = st.sampled_from([wire.DESC_KIND_POSIX, wire.DESC_KIND_FILE])
names = st.text(min_size=1, max_size=60).filter(lambda s: s.strip())
u64s = st.one_of(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.sampled_from([0, 1, 2**32 - 1, 2**32, 2**64 - 1]),
)


class TestDescriptorCodec:
    @SETTINGS
    @given(kind=kinds, name=names, offset=u64s, length=u64s)
    def test_round_trip(self, kind, name, offset, length):
        desc = wire.ShmSlice(kind, name, offset, length)
        again = wire.ShmSlice.unpack(desc.pack())
        assert again == desc
        assert (again.kind, again.segment, again.offset, again.length) == (
            kind,
            name,
            offset,
            length,
        )

    @SETTINGS
    @given(kind=kinds, name=names, offset=u64s, length=u64s)
    def test_truncation_at_every_boundary(self, kind, name, offset, length):
        blob = wire.ShmSlice(kind, name, offset, length).pack()
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                wire.ShmSlice.unpack(blob[:cut])

    def test_trailing_bytes_rejected(self):
        blob = wire.ShmSlice(wire.DESC_KIND_POSIX, "seg", 0, 1).pack()
        with pytest.raises(WireFormatError, match="trailing"):
            wire.ShmSlice.unpack(blob + b"\x00")

    def test_bad_magic_rejected(self):
        blob = bytearray(wire.ShmSlice(wire.DESC_KIND_POSIX, "seg", 0, 1).pack())
        blob[:4] = b"NOPE"
        with pytest.raises(WireFormatError, match="magic"):
            wire.ShmSlice.unpack(bytes(blob))

    def test_unknown_kind_rejected_on_unpack(self):
        blob = bytearray(wire.ShmSlice(wire.DESC_KIND_POSIX, "seg", 0, 1).pack())
        blob[4] = 0x7F
        with pytest.raises(WireFormatError, match="kind"):
            wire.ShmSlice.unpack(bytes(blob))

    def test_constructor_validation(self):
        with pytest.raises(WireFormatError):
            wire.ShmSlice(0x7F, "seg", 0, 1)  # unknown kind
        with pytest.raises(WireFormatError):
            wire.ShmSlice(wire.DESC_KIND_POSIX, "", 0, 1)  # empty name
        with pytest.raises(WireFormatError):
            wire.ShmSlice(wire.DESC_KIND_POSIX, "seg", -1, 1)
        with pytest.raises(WireFormatError):
            wire.ShmSlice(wire.DESC_KIND_POSIX, "seg", 0, 2**64)
        with pytest.raises(WireFormatError):
            wire.ShmSlice(wire.DESC_KIND_POSIX, "x" * 70000, 0, 1)

    def test_u64_edges_survive(self):
        desc = wire.ShmSlice(
            wire.DESC_KIND_FILE, "/tmp/a.seg", 2**64 - 1, 2**64 - 1
        )
        assert wire.ShmSlice.unpack(desc.pack()) == desc

    def test_pickle_goes_through_the_codec(self):
        """ShmSlice pickles via pack/unpack, so production pool traffic
        exercises the binary codec on every descriptor."""
        import pickle

        desc = wire.ShmSlice(wire.DESC_KIND_POSIX, "seg-a", 128, 4096)
        assert pickle.loads(pickle.dumps(desc)) == desc


# -- 2. publish / attach ----------------------------------------------------

class TestPublishAttach:
    @pytest.mark.parametrize("arena", ["posix", "file"])
    def test_blobs_read_back_bit_exact(self, arena):
        scope = shm.ShmScope(arena)
        try:
            frames = {0: _blob(4), 2: _blob(9)}
            descs = shm.publish_frames(frames, scope.token)
            assert sorted(descs) == [0, 2]
            for p, blob in frames.items():
                view = shm.attach_slice(descs[p])
                assert bytes(view) == blob
                assert wire.decode_pair_list(view) == wire.decode_pair_list(blob)
        finally:
            scope.release()
        assert scope.live_segments() == []

    def test_empty_frames_do_not_publish(self, scope):
        assert shm.publish_frames({}, scope.token) is None
        assert shm.publish_frames({0: b""}, scope.token) is None

    def test_publish_counts_perf(self, scope):
        perf = PerfStats()
        frames = {0: _blob(3), 1: _blob(5)}
        shm.publish_frames(frames, scope.token, perf)
        assert perf.segments_created == 1
        assert perf.shm_bytes == sum(len(b) for b in frames.values())

    def test_attach_cache_maps_each_segment_once(self, scope):
        frames = {0: _blob(3), 1: _blob(5)}
        descs = shm.publish_frames(frames, scope.token)
        perf = PerfStats()
        shm.attach_slice(descs[0], perf)
        shm.attach_slice(descs[1], perf)
        shm.attach_slice(descs[0], perf)
        assert perf.segments_attached == 1  # same segment, one mapping

    def test_out_of_range_descriptor_rejected(self, scope):
        descs = shm.publish_frames({0: _blob(2)}, scope.token)
        good = descs[0]
        bad = wire.ShmSlice(good.kind, good.segment, good.offset, good.length + 1)
        with pytest.raises(WireFormatError, match="out of range"):
            shm.attach_slice(bad)

    def test_attach_cache_evicts_lru(self, scope, monkeypatch):
        monkeypatch.setattr(shm, "ATTACH_CACHE_SEGMENTS", 2)
        descs = [
            shm.publish_frames({0: _blob(3)}, scope.token)[0] for _ in range(4)
        ]
        before = shm.attached_segment_count()
        for desc in descs:
            view = shm.attach_slice(desc)
            del view  # release the export so eviction can unmap
        assert shm.attached_segment_count() <= max(before, 2)

    def test_release_after_publish_failure_is_clean(self):
        """A token whose backing directory is gone: publish degrades to
        None (the output stays framed) instead of raising."""
        scope = shm.ShmScope("file")
        root = scope.token.partition(":")[2]
        scope.release()  # rmtree's the root
        assert not os.path.isdir(root)
        assert shm.publish_frames({0: _blob(2)}, scope.token) is None

    def test_resolve_arena_validation(self):
        with pytest.raises(ConfigError):
            shm.resolve_arena("bogus")
        assert shm.resolve_arena("file") == "file"
        assert shm.resolve_arena("auto") in ("posix", "file")


# -- 3. scopes, orphans, crashed workers ------------------------------------

class TestScopeLifecycle:
    def test_release_unlinks_adopted_segments(self):
        scope = shm.ShmScope("auto")
        output = MapOutput(task_index=0, node="n")
        output.partitions = {0: _pairs(4)}
        assert output.freeze()
        assert output.publish_shm(scope.token)
        scope.adopt_output(output)
        assert scope.live_segments()
        scope.release()
        assert scope.live_segments() == []
        scope.release()  # idempotent

    def test_release_purges_unadopted_orphans(self):
        """Segments published but never adopted (the worker died before
        its result reached the parent) still go away at release."""
        scope = shm.ShmScope("auto")
        shm.publish_frames({0: _blob(4)}, scope.token)  # never adopted
        assert scope.live_segments()
        scope.release()
        assert scope.live_segments() == []

    def test_scope_registry_and_release_all(self):
        scope = shm.ShmScope("auto")
        assert scope.token in shm.live_scope_tokens()
        shm.release_all_scopes()
        assert scope.released
        assert scope.token not in shm.live_scope_tokens()

    def test_worker_killed_mid_shuffle_leaks_nothing(self, tmp_path):
        """The ISSUE's regression drill: a pool worker publishes a
        segment and dies; recovery answers on a fresh worker; release
        leaves no segment behind."""
        scope = shm.ShmScope("auto")
        sentinel = str(tmp_path / "died-once")
        backend = PooledExecutionBackend(workers=1, mode="process")
        try:
            seen = []
            backend.submit(
                functools.partial(_publish_and_die, scope.token, sentinel),
                lambda h: seen.append(h.result()),
            )
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                backend.join_all()
            assert seen == ["published"]
            assert backend.worker_crash_recoveries == 1
            # both attempts' segments exist: the dead worker's orphan
            # and the successful retry's.
            assert len(scope.live_segments()) >= 2
        finally:
            backend.shutdown()
        scope.release()
        assert scope.live_segments() == []

    def test_backend_shutdown_releases_scopes(self):
        backend = PooledExecutionBackend(workers=1, mode="thread")
        scope = shm.ShmScope("auto")
        shm.publish_frames({0: _blob(3)}, scope.token)
        backend.shutdown()
        assert scope.released
        assert scope.live_segments() == []

    def test_resource_tracker_stays_silent(self):
        """An end-to-end pooled shm job must not provoke any stdlib
        resource_tracker warnings at interpreter exit."""
        script = textwrap.dedent(
            """
            from repro.hdfs.localfs import LinuxFileSystem
            from repro.jobs.wordcount import WordCountWithCombinerJob
            from repro.mapreduce.config import JobConf, MapReduceConfig
            from repro.mapreduce.local_runner import LocalJobRunner

            fs = LinuxFileSystem()
            fs.write_file("/data/c.txt", "a b c d e f g h\\n" * 400)
            mr = MapReduceConfig(execution_backend="pooled",
                                 backend_workers=2,
                                 shuffle_transport="shm")
            with LocalJobRunner(localfs=fs, mr_config=mr,
                                split_size=2048) as runner:
                job = WordCountWithCombinerJob(JobConf(name="wc",
                                                       num_reduces=3))
                runner.run(job, "/data/c.txt", "/out")
            print("DONE")
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "DONE" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr

    def test_interrupted_run_releases_segments(self, monkeypatch):
        """KeyboardInterrupt surfacing through join_all still hits the
        runner's finally: no segment survives."""
        from repro.hdfs.localfs import LinuxFileSystem
        from repro.jobs.wordcount import WordCountJob
        from repro.mapreduce import local_runner as lr_mod
        from repro.mapreduce.config import JobConf, MapReduceConfig
        from repro.mapreduce.local_runner import LocalJobRunner

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        fs = LinuxFileSystem()
        fs.write_file("/data/c.txt", "a b c\n" * 200)
        mr = MapReduceConfig(
            execution_backend="pooled-threads",
            backend_workers=2,
            shuffle_transport="shm",
        )
        before = shm.live_scope_tokens()
        with LocalJobRunner(localfs=fs, mr_config=mr, split_size=512) as runner:
            monkeypatch.setattr(lr_mod, "reduce_attempt_work", interrupt)
            job = WordCountJob(JobConf(name="wc", num_reduces=2))
            with pytest.raises(KeyboardInterrupt):
                runner.run(job, "/data/c.txt", "/out")
        assert shm.live_scope_tokens() == before


def _publish_and_die(token, sentinel):
    """Pool payload: publish a segment; die hard on the first attempt."""
    blob, _ = wire.encode_pairs([(Text("k"), IntWritable(1))])
    shm.publish_frames({0: blob}, token)
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "published"


# -- 4. MapOutput descriptor form ------------------------------------------

class TestMapOutputDescriptorForm:
    def _published(self, scope):
        output = MapOutput(task_index=3, node="n")
        output.partitions = {0: _pairs(5), 2: _pairs(7)}
        assert output.freeze()
        framed = {p: output.frames[p] for p in output.frames}
        assert output.publish_shm(scope.token)
        scope.adopt_output(output)
        return output, framed

    def test_accessors_match_framed_form(self, scope):
        output, framed = self._published(scope)
        reference = MapOutput(task_index=3, node="n", partitions=None)
        reference.frames = framed
        assert output.frozen and output.frames is None
        assert output.partition_ids() == reference.partition_ids()
        for p in (0, 1, 2):
            assert output.pairs_for(p) == reference.pairs_for(p)
            assert list(output.iter_partition(p)) == list(
                reference.iter_partition(p)
            )
            assert output.partition_key_sorted(p) == (
                reference.partition_key_sorted(p)
            )
            assert output.partition_records(p) == reference.partition_records(p)
            assert output.partition_bytes(p) == reference.partition_bytes(p)

    def test_slice_for_carries_one_descriptor(self, scope):
        output, _ = self._published(scope)
        sliced = output.slice_for(2)
        assert sorted(sliced.descriptors) == [2]
        assert sliced.pairs_for(2) == output.pairs_for(2)
        assert sliced.pairs_for(0) == []
        empty = output.slice_for(1)
        assert empty.descriptors == {}
        assert empty.frozen

    def test_publish_requires_frozen(self, scope):
        output = MapOutput(task_index=0, node="n")
        output.partitions = {0: _pairs(2)}
        assert not output.publish_shm(scope.token)  # not frozen yet
        assert output.partitions is not None

    def test_decode_counts_zero_copy_bytes(self, scope):
        output, _ = self._published(scope)
        perf = PerfStats()
        output.pairs_for(0, perf)
        output.pairs_for(2, perf)
        total = sum(d.length for d in output.descriptors.values())
        assert perf.copy_avoided_bytes == total
        assert perf.blobs_decoded == 2
