"""Input splits and record readers, especially block-boundary lines."""

import pytest

from repro.mapreduce.inputformat import (
    FetchStats,
    KeyValueTextInputFormat,
    TextInputFormat,
)


def chunked_fetch(data: bytes, block_size: int):
    """A fetch over an in-memory file chopped into pseudo-blocks."""

    def fetch(path: str, block_index: int, max_bytes, offset: int = 0):
        start = block_index * block_size
        if start >= len(data) and block_index > 0:
            raise IndexError(block_index)
        chunk = data[start : start + block_size]
        if offset:
            chunk = chunk[offset:]
        if max_bytes is not None:
            chunk = chunk[:max_bytes]
        return chunk, 0.001
    return fetch


def splits_for(data: bytes, block_size: int, path: str = "/f"):
    lengths = []
    offset = 0
    while offset < len(data):
        lengths.append(min(block_size, len(data) - offset))
        offset += lengths[-1]
    if not lengths:
        lengths = [0]
    return TextInputFormat.splits_for_file(
        path, lengths, [("n",)] * len(lengths)
    )


def read_all(data: bytes, block_size: int):
    fetch = chunked_fetch(data, block_size)
    records = []
    for split in splits_for(data, block_size):
        records.extend(TextInputFormat.read_records(split, fetch))
    return records


class TestSplitConstruction:
    def test_offsets_accumulate(self):
        splits = TextInputFormat.splits_for_file(
            "/f", [10, 10, 5], [("a",), ("b",), ("c",)]
        )
        assert [s.start_offset for s in splits] == [0, 10, 20]
        assert splits[0].is_first and not splits[0].is_last
        assert splits[2].is_last and not splits[2].is_first

    def test_mismatched_metadata_rejected(self):
        with pytest.raises(Exception):
            TextInputFormat.splits_for_file("/f", [10], [])


class TestLineReassembly:
    def test_no_boundary_case(self):
        data = b"aa\nbb\ncc\n"
        records = read_all(data, block_size=100)
        assert [v.value for _, v in records] == ["aa", "bb", "cc"]

    def test_line_straddles_boundary(self):
        data = b"first line\nsecond line\nthird\n"
        # Block size cuts mid-"second".
        for block_size in range(3, len(data)):
            records = read_all(data, block_size)
            values = [v.value for _, v in records]
            assert values == ["first line", "second line", "third"], block_size

    def test_offsets_are_file_positions(self):
        data = b"ab\ncdef\ng\n"
        records = read_all(data, block_size=4)
        offsets = [k.value for k, _ in records]
        assert offsets == [0, 3, 8]

    def test_each_line_read_exactly_once(self):
        lines = [f"line-{i:03d}" for i in range(50)]
        data = ("\n".join(lines) + "\n").encode()
        for block_size in (7, 16, 64, 1000):
            records = read_all(data, block_size)
            assert [v.value for _, v in records] == lines

    def test_no_trailing_newline(self):
        data = b"one\ntwo"
        records = read_all(data, block_size=5)
        assert [v.value for _, v in records] == ["one", "two"]

    def test_line_longer_than_block(self):
        long_line = "x" * 50
        data = f"{long_line}\nshort\n".encode()
        records = read_all(data, block_size=8)
        assert [v.value for _, v in records] == [long_line, "short"]

    def test_empty_lines_preserved(self):
        data = b"a\n\nb\n"
        records = read_all(data, block_size=100)
        assert [v.value for _, v in records] == ["a", "", "b"]

    def test_empty_file(self):
        assert read_all(b"", block_size=10) == []

    def test_fetch_stats_accumulate(self):
        data = b"abc\ndef\n"
        fetch = chunked_fetch(data, 4)
        stats = FetchStats()
        for split in splits_for(data, 4):
            list(TextInputFormat.read_records(split, fetch, stats))
        assert stats.bytes_read >= len(data)
        assert stats.elapsed > 0


class TestKeyValueFormat:
    def test_tab_split(self):
        data = b"k1\tv1\nk2\tv2 with tabs? no\n"
        fetch = chunked_fetch(data, 100)
        splits = splits_for(data, 100)
        records = list(KeyValueTextInputFormat.read_records(splits[0], fetch))
        assert [(k.value, v.value) for k, v in records] == [
            ("k1", "v1"),
            ("k2", "v2 with tabs? no"),
        ]

    def test_line_without_tab(self):
        data = b"justkey\n"
        fetch = chunked_fetch(data, 100)
        records = list(
            KeyValueTextInputFormat.read_records(splits_for(data, 100)[0], fetch)
        )
        assert [(k.value, v.value) for k, v in records] == [("justkey", "")]

    def test_value_keeps_later_tabs(self):
        data = b"k\tv1\tv2\n"
        fetch = chunked_fetch(data, 100)
        records = list(
            KeyValueTextInputFormat.read_records(splits_for(data, 100)[0], fetch)
        )
        assert records[0][1].value == "v1\tv2"
