"""Failure handling: bad user code, heap leaks, lost trackers, retries."""

import pytest

from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import C
from repro.mapreduce.streaming import streaming_job
from repro.util.errors import JobFailedError
from tests.conftest import make_mr


def crashing_map_job(name="crash", max_attempts=4):
    def bad_map(key, value):
        raise ValueError("student bug: NullPointerException at line 42")

    return streaming_job(
        name=name,
        map_fn=bad_map,
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        conf=JobConf(name=name, max_attempts=max_attempts),
    )


def wc_job(conf):
    return streaming_job(
        name=conf.name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        conf=conf,
    )


class TestUserCodeFailures:
    def test_buggy_job_fails_after_max_attempts(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a\n")
        report = mr.run_job(crashing_map_job(), "/in.txt", "/out")
        assert report.state == "failed"
        assert "4 times" in report.failure_reason
        assert report.failed_attempts >= 4

    def test_failure_raises_when_required(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a\n")
        with pytest.raises(JobFailedError):
            mr.run_job(crashing_map_job(), "/in.txt", "/out", require_success=True)

    def test_attempts_counted_per_task(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a\n")
        report = mr.run_job(crashing_map_job(max_attempts=2), "/in.txt", "/out")
        assert report.counters.get(C.FAILED_MAPS) == 2

    def test_reduce_failure_fails_job(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a\n")

        def bad_reduce(key, values):
            raise RuntimeError("reduce-side bug")

        job = streaming_job(
            "bad-reduce",
            lambda k, v: [(v, 1)],
            bad_reduce,
            conf=JobConf(name="bad-reduce", max_attempts=2),
        )
        report = mr.run_job(job, "/in.txt", "/out")
        assert report.state == "failed"
        assert report.counters.get(C.FAILED_REDUCES) == 2

    def test_cluster_survives_failed_job(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "a b\n")
        mr.run_job(crashing_map_job(), "/in.txt", "/o1")
        report = mr.run_job(
            wc_job(JobConf(name="after")), "/in.txt", "/o2", require_success=True
        )
        assert report.succeeded


class TestHeapLeakCascade:
    def test_leaky_job_crashes_daemons(self):
        mr = make_mr(num_workers=8)
        mr.client().put_text("/in.txt", "x y\n" * 200)
        conf = JobConf(
            name="leaky",
            heap_leak_probability=1.0,  # every attempt leaks
            crash_daemons_on_heap_leak=True,
            max_attempts=3,
        )
        report = mr.run_job(wc_job(conf), "/in.txt", "/out", timeout=7200)
        crashed = [
            name for name, tt in mr.tasktrackers.items() if not tt.is_serving
        ]
        assert crashed, "heap leaks should take daemons down"
        # The co-located DataNodes died with their TaskTrackers.
        for name in crashed:
            assert not mr.hdfs.datanodes[name].is_serving

    def test_leak_without_daemon_crash(self):
        mr = make_mr()
        mr.client().put_text("/in.txt", "x\n")
        conf = JobConf(
            name="contained-leak",
            heap_leak_probability=1.0,
            crash_daemons_on_heap_leak=False,
            max_attempts=2,
        )
        report = mr.run_job(wc_job(conf), "/in.txt", "/out", timeout=7200)
        assert report.state == "failed"
        assert all(tt.is_serving for tt in mr.tasktrackers.values())

    def test_moderate_leak_recovers_via_retries(self):
        mr = make_mr(num_workers=8)
        mr.client().put_text("/in.txt", "x y z\n" * 50)
        conf = JobConf(
            name="flaky",
            heap_leak_probability=0.3,
            crash_daemons_on_heap_leak=False,
            max_attempts=10,
        )
        report = mr.run_job(wc_job(conf), "/in.txt", "/out", timeout=24 * 3600)
        assert report.succeeded
        assert mr.output_dict("/out") == {"x": "50", "y": "50", "z": "50"}


class TestLostTracker:
    def test_tracker_crash_mid_job_recovers(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "w " * 8000)
        running = mr.submit(wc_job(JobConf(name="survivor")), "/in.txt", "/out")
        # Let some maps complete, then kill one worker outright.
        mr.hdfs.wait_until(
            lambda: any(t.output is not None for t in running.map_tasks),
            timeout=600,
            step=0.5,
        )
        victim = next(
            t.completed_on for t in running.map_tasks if t.completed_on
        )
        mr.crash_worker(victim)
        mr.wait_for_job(running, timeout=24 * 3600)
        assert running.succeeded
        # The dead node's completed map output was re-run elsewhere.
        assert all(
            t.completed_on != victim for t in running.map_tasks
        )
        assert mr.output_dict("/out") == {"w": "8000"}

    def test_killed_attempts_not_counted_as_failures(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "w " * 8000)
        running = mr.submit(wc_job(JobConf(name="fair")), "/in.txt", "/out")
        mr.hdfs.wait_until(
            lambda: any(t.output is not None for t in running.map_tasks),
            timeout=600,
            step=0.5,
        )
        victim = next(
            t.completed_on for t in running.map_tasks if t.completed_on
        )
        mr.crash_worker(victim)
        mr.wait_for_job(running, timeout=24 * 3600)
        # Lost-tracker reruns must not burn the per-task failure budget.
        assert all(t.failures == 0 for t in running.map_tasks)


class TestSpeculativeExecution:
    def test_speculation_duplicates_straggler(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "w " * 6000)
        conf = JobConf(name="spec", speculative_execution=True)
        report = mr.run_job(wc_job(conf), "/in.txt", "/out", require_success=True)
        # No stragglers on a healthy homogeneous cluster: speculation
        # must not fire spuriously.
        assert report.killed_attempts == 0
        assert mr.output_dict("/out") == {"w": "6000"}
