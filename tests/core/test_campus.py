"""Campus-scale scenario: multi-tenant scheduling at class-section size."""

import pytest

from repro.core.campus import (
    CampusClusterRun,
    CampusScenario,
    run_campus,
)
from repro.util.units import MINUTE


def small_scenario(**overrides):
    defaults = dict(
        name="mini-campus",
        num_students=40,
        num_clusters=2,
        jobs_per_student=1,
        window=10 * MINUTE,
        seed=9,
    )
    defaults.update(overrides)
    return CampusScenario(**defaults)


class TestCampusRun:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campus(small_scenario())

    def test_every_job_succeeds(self, report):
        assert report.jobs_submitted == 40
        assert report.jobs_succeeded == 40

    def test_students_dealt_across_clusters(self, report):
        assert len(report.clusters) == 2
        assert all(c.jobs_submitted == 20 for c in report.clusters)

    def test_all_tenants_served(self, report):
        completed = report.per_user_completed()
        assert set(completed) == set(small_scenario().users)
        assert all(done > 0 for done in completed.values())

    def test_describe_renders(self, report):
        text = report.describe()
        assert "Campus scenario" in text and "40" in text

    def test_replay_is_bit_identical(self, report):
        again = run_campus(small_scenario())
        assert [c.digest for c in again.clusters] == [
            c.digest for c in report.clusters
        ]


class TestSharedWheelQueuePressure:
    def test_pending_is_submissions_plus_constant(self):
        # Hundreds of students polling must ride one wheel: the event
        # queue holds the not-yet-fired submissions plus O(1) ticks.
        scenario = small_scenario(
            num_students=400, num_clusters=1, window=60 * MINUTE
        )
        run = CampusClusterRun(scenario, 0)
        try:
            run.sim.run_until(run.sim.now + 5 * MINUTE)
            outstanding = run._planned - run.stats.jobs_submitted
            assert run.sim.pending() - outstanding < 100
        finally:
            run.close()


class TestSteppingProgress:
    def test_next_step_target_always_advances(self):
        # Setup leaves the epoch off-grid (e.g. 15.0005625); when the
        # clock later sits exactly on epoch + k*step, the float
        # subtraction (now - epoch) can round just below k*step and the
        # naive next-grid formula returns now itself — run_to_completion
        # would then spin forever.  The target must be strictly ahead
        # and stay on the epoch grid for every reachable grid point.
        scenario = small_scenario(num_students=30, num_clusters=1, seed=0)
        run = CampusClusterRun(scenario, 0)
        try:
            step = max(scenario.poll_interval, scenario.daemon_interval)
            epoch = run._epoch
            for k in range(500):
                grid_point = epoch + k * step
                run.sim.run_until(grid_point)
                target = run._next_step_target(step)
                assert target > run.sim.now
                assert target == epoch + (k + 1) * step
        finally:
            run.close()


class TestFairnessKnobs:
    def test_quota_protects_light_tenants(self):
        base = dict(
            num_students=60,
            num_clusters=1,
            jobs_per_student=2,
            window=10 * MINUTE,
            users=("cs1060", "research"),
            user_weights=(0.5, 0.5),
            flood_user="research",
            flood_window=1 * MINUTE,
            seed=4,
        )
        fifo = run_campus(small_scenario(**base, scheduler="fifo"))
        fair = run_campus(
            small_scenario(
                **base, scheduler="fair", user_quotas={"research": 6}
            )
        )
        assert fifo.jobs_succeeded == fifo.jobs_submitted
        assert fair.jobs_succeeded == fair.jobs_submitted
        # The quota visibly throttles the flooding tenant...
        assert (
            fair.per_user_mean_wait()["research"]
            > fifo.per_user_mean_wait()["research"]
        )
        # ...without hurting the light tenant (tolerance: at this mini
        # scale there is no queueing to win back, only noise).
        assert fair.per_user_mean_wait()["cs1060"] <= (
            fifo.per_user_mean_wait()["cs1060"] * 1.05 + 1.0
        )

    def test_chaos_replays_identically(self):
        scenario = small_scenario(
            num_students=30, num_clusters=1, chaos_interval=3 * MINUTE
        )
        first = run_campus(scenario)
        second = run_campus(scenario)
        assert first.clusters[0].chaos_crashes > 0
        assert first.clusters[0].digest == second.clusters[0].digest
