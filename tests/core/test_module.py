"""The four module versions: internal consistency with Section II."""

import pytest

from repro.core.assignments import ASSIGNMENTS
from repro.core.module import (
    MODULE_VERSIONS,
    module_history_table,
    version_by_number,
)


class TestModuleVersions:
    def test_four_offerings(self):
        assert [v.version for v in MODULE_VERSIONS] == [1, 2, 3, 4]
        assert [v.term for v in MODULE_VERSIONS] == [
            "Fall 2012",
            "Spring 2013",
            "Summer 2013 (REU)",
            "Fall 2013",
        ]

    def test_session_counts_follow_paper(self):
        # Five lectures in v1 and v2; seven in v4.
        assert version_by_number(1).num_sessions == 5
        assert version_by_number(2).num_sessions == 5
        assert version_by_number(4).num_sessions == 7

    def test_v4_doubled_labs(self):
        assert version_by_number(4).num_labs == 2 * version_by_number(2).num_labs

    def test_assignment_ids_resolve(self):
        for version in MODULE_VERSIONS:
            for assignment_id in version.assignment_ids:
                assert assignment_id in ASSIGNMENTS

    def test_v1_platforms_were_vm_and_dedicated(self):
        assert version_by_number(1).platform_keys == ("vm", "dedicated")

    def test_v2_onward_use_myhadoop(self):
        for number in (2, 3, 4):
            assert "myhadoop" in version_by_number(number).platform_keys
            assert "dedicated" not in version_by_number(number).platform_keys

    def test_v1_issues_include_the_meltdown(self):
        issues = " ".join(version_by_number(1).issues)
        assert "crash" in issues
        assert "15" in issues

    def test_v4_includes_ecosystem_lecture(self):
        topics = {lec.topic for lec in version_by_number(4).lectures}
        assert "ecosystem" in topics

    def test_unknown_version_raises(self):
        with pytest.raises(KeyError):
            version_by_number(9)

    def test_history_table_renders(self):
        text = module_history_table().render()
        assert "Fall 2012" in text and "Fall 2013" in text
