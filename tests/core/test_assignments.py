"""Assignments grade their own reference solutions correctly."""

import pytest

from repro.core.assignments import ASSIGNMENTS, GradeResult, grade_all


class TestAssignmentRegistry:
    def test_four_assignments(self):
        assert set(ASSIGNMENTS) == {
            "v1-top-word",
            "v1-google-trace",
            "v2-movielens",
            "v2-yahoo-hdfs",
        }

    def test_weeks_match_paper(self):
        # "two-week and three-week long assignments, respectively."
        assert ASSIGNMENTS["v2-movielens"].weeks == 2
        assert ASSIGNMENTS["v2-yahoo-hdfs"].weeks == 3

    def test_datasets_declared(self):
        assert ASSIGNMENTS["v1-google-trace"].datasets == ("google_trace",)
        assert "yahoo_music" in ASSIGNMENTS["v2-yahoo-hdfs"].datasets


class TestGradeResult:
    def test_correctness_is_equality(self):
        ok = GradeResult("a", "check", expected=1, actual=1)
        bad = GradeResult("a", "check", expected=1, actual=2)
        assert ok.correct and not bad.correct
        assert "PASS" in ok.describe()
        assert "FAIL" in bad.describe()


class TestReferenceSolutions:
    @pytest.mark.parametrize("assignment_id", sorted(ASSIGNMENTS))
    def test_reference_solution_passes(self, assignment_id):
        results = ASSIGNMENTS[assignment_id].run_reference(seed=3)
        assert results, "assignment produced no grade checks"
        for result in results:
            assert result.correct, result.describe()

    def test_grade_all_covers_every_assignment(self):
        results = grade_all(seed=5)
        graded_ids = {r.assignment_id for r in results}
        assert graded_ids == set(ASSIGNMENTS)
        assert all(r.correct for r in results)
