"""The classroom simulator: Version-1 meltdown vs Version-2 isolation.

These use scaled-down classes (fewer students, shorter windows) so they
run quickly; the benchmark reproduces the full 39-student semester.
"""

import pytest

from repro.core.classroom import (
    ClassroomReport,
    ClassroomScenario,
    StudentState,
    _draw_students,
    run_classroom,
)
from repro.util.rng import RngStream
from repro.util.units import HOUR


from repro.util.units import MINUTE


def small_scenario(**overrides):
    defaults = dict(
        num_students=16,
        window=16 * HOUR,
        mean_head_start=4 * HOUR,
        buggy_probability=0.55,
        fix_probability=0.45,
        instructor_reaction_delay=45 * MINUTE,
        seed=7,
        input_bytes=60 * 1024,
    )
    defaults.update(overrides)
    return ClassroomScenario(**defaults)


class TestStudentModel:
    def test_start_times_within_window(self):
        scenario = small_scenario()
        students = _draw_students(scenario, RngStream(1).child("c"))
        assert len(students) == 16
        for student in students:
            assert 0.0 <= student.start_time < scenario.window

    def test_procrastination_skews_late(self):
        scenario = small_scenario(num_students=40)
        students = _draw_students(scenario, RngStream(2).child("c"))
        late = sum(
            1 for s in students if s.start_time > scenario.window * 0.5
        )
        assert late > len(students) * 0.6

    def test_buggy_fraction_plausible(self):
        scenario = small_scenario(num_students=60, buggy_probability=0.5)
        students = _draw_students(scenario, RngStream(3).child("c"))
        buggy = sum(1 for s in students if s.buggy)
        assert 15 <= buggy <= 45


class TestDedicatedScenario:
    @pytest.fixture(scope="class")
    def report(self) -> ClassroomReport:
        return run_classroom(
            small_scenario(name="mini-v1", platform="dedicated")
        )

    def test_some_students_complete(self, report):
        assert 0 < report.completed <= report.num_students

    def test_crashes_happen(self, report):
        assert report.daemon_crashes > 0

    def test_submissions_exceed_students(self, report):
        # Failures force resubmissions.
        assert report.total_job_submissions >= report.num_students

    def test_timeline_recorded(self, report):
        assert report.timeline
        assert report.describe().startswith("Classroom scenario")


class TestMyHadoopScenario:
    @pytest.fixture(scope="class")
    def report(self) -> ClassroomReport:
        return run_classroom(
            small_scenario(name="mini-v2", platform="myhadoop")
        )

    def test_high_completion(self, report):
        assert report.completion_fraction >= 0.7

    def test_no_shared_cluster_restarts(self, report):
        assert report.cluster_restarts == 0

    def test_crashes_stay_contained(self, report):
        # Daemons may die, but nobody else's blocks go missing.
        assert report.missing_blocks_at_deadline == 0


class TestShapeClaim:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_isolation_beats_sharing(self, seed):
        """The paper's core operational result, at mini scale."""
        v1 = run_classroom(
            small_scenario(name=f"a{seed}", platform="dedicated", seed=seed)
        )
        v2 = run_classroom(
            small_scenario(name=f"b{seed}", platform="myhadoop", seed=seed)
        )
        assert v2.completion_fraction > v1.completion_fraction

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            run_classroom(small_scenario(platform="cloud"))
