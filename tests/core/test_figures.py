"""Figure generators."""

import pytest

from repro.core.figures import figure1_scan_sweep, figure2_integration_text


class TestFigure1:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure1_scan_sweep()

    def test_point_per_node_count(self, sweep):
        assert [p.num_nodes for p in sweep] == [4, 8, 16, 32, 64, 128]

    def test_hadoop_scales_linearly(self, sweep):
        by_n = {p.num_nodes: p for p in sweep}
        assert by_n[8].hadoop_seconds == pytest.approx(
            by_n[4].hadoop_seconds / 2
        )
        assert by_n[128].hadoop_seconds == pytest.approx(
            by_n[4].hadoop_seconds / 32
        )

    def test_hpc_flattens_past_saturation(self, sweep):
        by_n = {p.num_nodes: p for p in sweep}
        # 4 GB/s backbone / 125 MB/s NIC = 32-client saturation point.
        assert by_n[64].hpc_seconds == pytest.approx(by_n[32].hpc_seconds)
        assert by_n[128].hpc_seconds == pytest.approx(by_n[32].hpc_seconds)

    def test_hadoop_wins_at_scale(self, sweep):
        last = sweep[-1]
        assert last.hadoop_speedup > 2.0

    def test_architectures_comparable_at_small_scale(self, sweep):
        first = sweep[0]
        assert 0.5 < first.hadoop_speedup < 2.0


class TestFigure2:
    @pytest.fixture(scope="class")
    def text(self):
        return figure2_integration_text(seed=3)

    def test_four_layers_present(self, text):
        assert "HDFS Abstractions" in text
        assert "block metadata lives in memory" in text
        assert "JobTracker" in text
        assert "Physical view at the Linux FS" in text

    def test_blocks_traceable_top_to_bottom(self, text):
        # Block names in the metadata layer reappear as blk_ files below.
        import re

        metadata_blocks = set(re.findall(r"blk_\d+", text))
        assert metadata_blocks
        physical_section = text.split("Physical view")[1]
        assert any(b in physical_section for b in metadata_blocks)

    def test_locality_decisions_shown(self, text):
        assert "node_local" in text or "rack_local" in text
