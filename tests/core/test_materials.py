"""Teaching materials: outlines, the handout, and its executability."""

import pytest

from repro.core.materials import (
    HANDOUT_STEPS,
    data_sources_table,
    lecture_outline,
    run_handout_walkthrough,
    syllabus,
    tutorial_handout,
)


class TestLectureOutlines:
    def test_every_version_renders(self):
        for version in (1, 2, 3, 4):
            text = lecture_outline(version)
            assert "Hadoop MapReduce module" in text
            assert "Session 1" in text

    def test_v4_includes_ecosystem_points(self):
        text = lecture_outline(4)
        assert "HBase" in text
        assert "repro.hive" in text

    def test_assignments_listed_with_weeks(self):
        text = lecture_outline(2)
        assert "v2-movielens (2 weeks)" in text
        assert "v2-yahoo-hdfs (3 weeks)" in text

    def test_labs_marked(self):
        assert "[LAB]" in lecture_outline(4)

    def test_points_reference_real_modules(self):
        import importlib

        from repro.core.materials import LECTURE_POINTS

        for points in LECTURE_POINTS.values():
            for point in points:
                for word in point.split():
                    token = word.strip("(),")
                    if token.startswith("repro."):
                        importlib.import_module(token)


class TestHandout:
    def test_renders_all_steps_with_purposes(self):
        text = tutorial_handout()
        for i in range(1, len(HANDOUT_STEPS) + 1):
            assert f"  {i}. $" in text
        # The feedback ask: every command explains its purpose.
        assert text.count("#") >= len(HANDOUT_STEPS)

    def test_mentions_ghost_daemon_remediation(self):
        text = tutorial_handout()
        assert "ghost daemons" in text
        assert "15 minutes" in text

    def test_handout_is_executable(self):
        """The handout replays cleanly against a simulated platform."""
        context = run_handout_walkthrough()
        assert context["report"].succeeded
        assert context["fsck"].healthy
        assert context["home"].exists("/home/student/results.txt")
        # The walkthrough cleaned up after itself (step 9).
        assert context["env"].scheduler.free_nodes() == len(
            context["env"].topology
        )
        bound = sum(
            len(context["env"].provisioner.ports.bound_on(node.name))
            for node in context["env"].topology.nodes()
        )
        assert bound == 0

    def test_walkthrough_locality_observed(self):
        context = run_handout_walkthrough()
        report = context["report"]
        assert report.data_local_maps + report.rack_local_maps >= 1


class TestDataSources:
    def test_table_covers_catalog(self):
        text = data_sources_table().render()
        assert "171.0GB" in text
        assert "Yahoo! Music" in text

    def test_syllabus_combines_everything(self):
        text = syllabus()
        assert "Fall 2012" in text and "Fall 2013" in text
        assert "Data sources" in text
