"""The three platform generations."""

import pytest

from repro.core.platforms import (
    VM_DISPLAY_BANDWIDTH,
    build_dedicated_platform,
    build_myhadoop_platform,
    build_teaching_cluster,
    build_vm_platform,
    vm_gui_transfer_seconds,
)
from repro.jobs.wordcount import WordCountJob
from repro.util.units import GB, MB


class TestVmPlatform:
    def test_single_node_replication_one(self):
        platform = build_vm_platform(seed=1)
        assert len(platform.mr.hdfs.datanodes) == 1
        assert platform.mr.hdfs.config.replication == 1

    def test_jobs_still_run(self):
        platform = build_vm_platform(seed=1)
        platform.put_text("/in.txt", "a b a")
        result = platform.run_job(WordCountJob(), "/in.txt", "/out")
        assert result.output_dict() == {"a": "2", "b": "1"}

    def test_gui_over_tunnel_is_painful(self):
        # A 30 MB GUI screen sequence takes half a minute at ~1 MB/s.
        assert vm_gui_transfer_seconds(30 * MB) == pytest.approx(30.0)
        assert VM_DISPLAY_BANDWIDTH == 1 * MB

    def test_quirks_documented(self):
        platform = build_vm_platform()
        assert any("1 MB/s" in quirk for quirk in platform.quirks)


class TestDedicatedPlatform:
    def test_matches_paper_hardware(self):
        platform = build_dedicated_platform(seed=1)
        assert len(platform.mr.hdfs.datanodes) == 8
        node = platform.mr.hdfs.topology.node("node0")
        assert node.spec.ram_bytes == 64 * GB
        assert node.spec.disk_bytes == 850 * GB

    def test_replication_three(self):
        platform = build_dedicated_platform(seed=1)
        assert platform.mr.hdfs.config.replication == 3

    def test_shell_available(self):
        platform = build_dedicated_platform(seed=1)
        platform.put_text("/f", "x")
        assert platform.shell().run("-cat", "/f").output == "x"


class TestTeachingCluster:
    def test_quickstart_flow(self):
        platform = build_teaching_cluster(num_workers=4, seed=7)
        platform.put_text("/data/input.txt", "to be or not to be")
        result = platform.run_job(WordCountJob(), "/data/input.txt", "/out/wc")
        assert result.output_dict()["to"] == "2"
        assert result.succeeded
        assert result.report.num_maps >= 1

    def test_replication_capped_by_workers(self):
        platform = build_teaching_cluster(num_workers=2)
        assert platform.mr.hdfs.config.replication == 2


class TestMyHadoopPlatform:
    def test_environment_assembled(self):
        env = build_myhadoop_platform(seed=1, supercomputer_nodes=32)
        assert len(env.topology) == 32
        assert env.scheduler.free_nodes() == 32
        assert not env.pfs.supports_file_locking

    def test_home_directories_isolated(self):
        env = build_myhadoop_platform(seed=1)
        home_a = env.home_for("a")
        home_b = env.home_for("b")
        home_a.write_file("/home/a/x", "private")
        assert not home_b.exists("/home/a/x")
