"""The sparklite workload family: PageRank and n-grams, both backends.

Correctness against pure-Python references, plus the compiled-backend
properties the lecture points at: bit-identity with the in-memory
evaluator and per-iteration stage reuse through ``cache()``.
"""

import math

import pytest

from repro.jobs.ngrams import ngram_counts, ngram_reference, top_ngrams
from repro.jobs.pagerank import (
    generate_web_graph,
    pagerank,
    pagerank_reference,
)
from repro.datasets.shakespeare import generate_shakespeare
from repro.sparklite import SparkLiteContext


@pytest.fixture(scope="module")
def graph():
    return generate_web_graph(seed=3, num_pages=40, avg_degree=3)


class TestPageRank:
    def test_local_matches_reference(self, graph):
        sc = SparkLiteContext.local(num_executors=3)
        result = pagerank(sc, graph.edges, iterations=4)
        reference = pagerank_reference(graph.edges, iterations=4)
        assert {p for p, _ in result.ranks} == set(reference)
        for page, rank in result.ranks:
            assert math.isclose(rank, reference[page], rel_tol=1e-9)

    def test_compiled_bit_identical_to_local(self, graph):
        local = pagerank(
            SparkLiteContext.local(3), graph.edges, iterations=3
        )
        compiled = pagerank(
            SparkLiteContext.on_mapreduce(num_workers=4, seed=1),
            graph.edges,
            iterations=3,
        )
        assert compiled.ranks == local.ranks  # exact, not approx

    def test_compiled_reuses_cached_stages(self, graph):
        sc = SparkLiteContext.on_mapreduce(num_workers=4, seed=1)
        pagerank(sc, graph.edges, iterations=3)
        runner = sc._compiled_runner()
        # The links table shuffles once but is read by every
        # iteration's join — cache hits must show up.
        assert runner.cache_hits >= 3
        assert runner.jobs_run < 6 * 3  # far fewer than recompute-all

    def test_top_k_is_deterministic(self, graph):
        sc = SparkLiteContext.local(3)
        result = pagerank(sc, graph.edges, iterations=3)
        top = result.top(5)
        assert len(top) == 5
        assert top == sorted(top, key=lambda kv: (-kv[1], kv[0]))


class TestNgrams:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_shakespeare(seed=5, num_plays=2, words_per_play=400)

    def test_local_matches_reference(self, corpus):
        sc = SparkLiteContext.local(num_executors=3)
        lines = sc.parallelize(corpus.text.splitlines(), 4)
        counts = dict(ngram_counts(lines, n=2).collect())
        assert counts == ngram_reference(corpus.text, n=2)

    def test_compiled_bit_identical_to_local(self, corpus):
        lines = corpus.text.splitlines()
        local_sc = SparkLiteContext.local(3)
        local = ngram_counts(local_sc.parallelize(lines, 4), n=3).collect()
        sc = SparkLiteContext.on_mapreduce(num_workers=4, seed=1)
        compiled = ngram_counts(sc.parallelize(lines, 4), n=3).collect()
        assert compiled == local

    def test_top_ngrams_ranking(self, corpus):
        sc = SparkLiteContext.local(3)
        counts = ngram_counts(sc.parallelize(corpus.text.splitlines(), 4))
        top = top_ngrams(counts, k=5)
        reference = ngram_reference(corpus.text)
        expected = sorted(
            reference.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
        assert top == expected

    def test_windows_stay_inside_lines(self):
        sc = SparkLiteContext.local(2)
        lines = sc.parallelize(["a b", "c d"], 2)
        grams = dict(ngram_counts(lines, n=2).collect())
        assert grams == {"a b": 1, "c d": 1}  # no "b c" across lines
