"""WordCount variants and the top-word assignment."""

import pytest

from repro.datasets.shakespeare import generate_shakespeare
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.top_word import TopWordJob, find_top_word
from repro.jobs.wordcount import (
    WordCountInMapperJob,
    WordCountJob,
    WordCountWithCombinerJob,
)
from repro.mapreduce.counters import C
from repro.mapreduce.local_runner import LocalJobRunner
from tests.conftest import make_mr


@pytest.fixture(scope="module")
def corpus():
    return generate_shakespeare(seed=9, num_plays=2, words_per_play=600)


def run_local(job, text, split_size=4096):
    fs = LinuxFileSystem()
    fs.write_file("/in.txt", text)
    return LocalJobRunner(localfs=fs, split_size=split_size).run(
        job, "/in.txt", "/out"
    )


class TestWordCountVariants:
    def test_plain_matches_ground_truth(self, corpus):
        result = run_local(WordCountJob(), corpus.text)
        counted = {k: int(v) for k, v in result.pairs}
        assert counted == dict(corpus.word_counts)

    def test_all_variants_agree(self, corpus):
        results = [
            run_local(job_cls(), corpus.text)
            for job_cls in (
                WordCountJob,
                WordCountWithCombinerJob,
                WordCountInMapperJob,
            )
        ]
        baseline = sorted(results[0].pairs)
        for result in results[1:]:
            assert sorted(result.pairs) == baseline

    def test_combiner_reduces_intermediate_records(self, corpus):
        plain = run_local(WordCountJob(), corpus.text)
        combined = run_local(WordCountWithCombinerJob(), corpus.text)
        assert combined.counters.get(C.COMBINE_OUTPUT_RECORDS) < (
            plain.counters.get(C.MAP_OUTPUT_RECORDS)
        )

    def test_in_mapper_emits_fewest_map_records(self, corpus):
        plain = run_local(WordCountJob(), corpus.text)
        in_mapper = run_local(WordCountInMapperJob(), corpus.text)
        assert in_mapper.counters.get(C.MAP_OUTPUT_RECORDS) < (
            plain.counters.get(C.MAP_OUTPUT_RECORDS)
        )


class TestTopWord:
    def test_single_reducer_enforced(self):
        job = TopWordJob()
        assert job.conf.num_reduces == 1

    def test_two_job_chain_on_cluster(self, corpus):
        mr = make_mr(num_workers=4, block_size=4096)
        mr.client().put_text("/shake.txt", corpus.text)
        word, count = find_top_word(mr, "/shake.txt", "/work")
        assert (word, count) == corpus.top_word
