"""Movie-genre statistics (side-file strategies) and the top rater."""

import pytest

from repro.datasets.movielens import generate_movielens
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.movie_genres import (
    GenreStatsJob,
    STRATEGIES,
    parse_movies_file,
    parse_rating,
    parse_stats_value,
)
from repro.jobs.top_rater import RaterProfileWritable, TopRaterJob
from repro.mapreduce.local_runner import LocalJobRunner
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def data():
    return generate_movielens(seed=12, num_ratings=1500, num_movies=60, num_users=80)


def runner_for(data):
    fs = LinuxFileSystem()
    fs.write_file("/ratings.dat", data.ratings_text)
    fs.write_file("/movies.dat", data.movies_text)
    return LocalJobRunner(localfs=fs, split_size=16 * 1024)


class TestParsers:
    def test_parse_movies_file(self):
        table = parse_movies_file("1::T (1990)::Drama|War\n2::U (2001)::Comedy\n")
        assert table == {1: ["Drama", "War"], 2: ["Comedy"]}

    def test_parse_rating(self):
        assert parse_rating("5::10::3.5::12345") == (5, 10, 3.5)
        assert parse_rating("bad line") is None
        assert parse_rating("") is None

    def test_parse_stats_value(self):
        parsed = parse_stats_value("count=3,mean=2.5,min=1,max=4")
        assert parsed == {"count": 3.0, "mean": 2.5, "min": 1.0, "max": 4.0}


class TestGenreStats:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_correct(self, data, strategy):
        runner = runner_for(data)
        result = runner.run(
            GenreStatsJob(movies_path="/movies.dat", strategy=strategy),
            "/ratings.dat",
            "/out",
        )
        computed = {k: parse_stats_value(v) for k, v in result.pairs}
        for genre, stats in data.genre_stats.items():
            got = computed[genre]
            assert int(got["count"]) == stats.count
            assert got["mean"] == pytest.approx(stats.mean, abs=1e-4)
            assert got["min"] == stats.minimum
            assert got["max"] == stats.maximum

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            GenreStatsJob(movies_path="/m", strategy="telepathy")

    def test_missing_side_file_param_fails_job(self, data):
        from repro.util.errors import TaskFailedError

        runner = runner_for(data)
        with pytest.raises(TaskFailedError):
            runner.run(GenreStatsJob(), "/ratings.dat", "/out")

    def test_naive_is_much_slower(self, data):
        """Claim C1 in miniature: naive side-file access costs ~10x."""
        naive = runner_for(data).run(
            GenreStatsJob(movies_path="/movies.dat", strategy="naive"),
            "/ratings.dat",
            "/out",
        )
        cached = runner_for(data).run(
            GenreStatsJob(movies_path="/movies.dat", strategy="cached"),
            "/ratings.dat",
            "/out",
        )
        assert naive.simulated_seconds > cached.simulated_seconds * 5
        assert sorted(naive.pairs) == sorted(cached.pairs)

    def test_per_task_between_extremes(self, data):
        times = {}
        for strategy in STRATEGIES:
            result = runner_for(data).run(
                GenreStatsJob(movies_path="/movies.dat", strategy=strategy),
                "/ratings.dat",
                "/out",
            )
            times[strategy] = result.simulated_seconds
        assert times["cached"] <= times["per_task"] <= times["naive"]


class TestTopRater:
    def test_single_winner_emitted(self, data):
        runner = runner_for(data)
        result = runner.run(
            TopRaterJob(movies_path="/movies.dat"), "/ratings.dat", "/out"
        )
        assert len(result.pairs) == 1
        user_text, profile_text = result.pairs[0]
        profile = RaterProfileWritable.decode(profile_text)
        expected = data.top_rater()
        assert int(user_text) == expected
        assert profile.num_ratings == data.ratings_per_user[expected]
        assert profile.favorite_genre == data.favorite_genre_of(expected)

    def test_forces_single_reduce(self):
        job = TopRaterJob(movies_path="/m")
        assert job.conf.num_reduces == 1

    def test_profile_round_trip(self):
        profile = RaterProfileWritable(num_ratings=42, favorite_genre="Drama")
        assert RaterProfileWritable.decode(profile.encode()) == profile
