"""The Yahoo album job and the Google-trace resubmission chain."""

import pytest

from repro.datasets.google_trace import generate_google_trace
from repro.datasets.yahoo_music import generate_yahoo_music
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.album_rating import (
    AlbumAverageWritable,
    AlbumRatingJob,
    best_album_from_output,
    parse_songs_file,
)
from repro.jobs.trace_resubmissions import (
    MaxResubmissionsJob,
    TraceResubmissionsJob,
    find_max_resubmission_job,
    parse_event,
)
from repro.mapreduce.config import JobConf
from repro.mapreduce.local_runner import LocalJobRunner
from tests.conftest import make_mr


class TestAlbumRating:
    @pytest.fixture(scope="class")
    def music(self):
        return generate_yahoo_music(seed=13, num_ratings=1200, num_albums=25)

    def test_parse_songs_file(self):
        assert parse_songs_file("1\t10\t5\n2\t10\t5\n3\t11\t6\n") == {
            1: 10,
            2: 10,
            3: 11,
        }

    def test_local_run_matches_truth(self, music):
        fs = LinuxFileSystem()
        fs.write_file("/ratings.txt", music.ratings_text)
        fs.write_file("/songs.txt", music.songs_text)
        result = LocalJobRunner(localfs=fs, split_size=8192).run(
            AlbumRatingJob(songs_path="/songs.txt"), "/ratings.txt", "/out"
        )
        computed = {
            int(k): AlbumAverageWritable.decode(v) for k, v in result.pairs
        }
        for album, expected in music.true_album_averages().items():
            assert computed[album].average == pytest.approx(expected)
            assert computed[album].count == music.album_sums[album][1]

    def test_best_album_selection(self, music):
        fs = LinuxFileSystem()
        fs.write_file("/ratings.txt", music.ratings_text)
        fs.write_file("/songs.txt", music.songs_text)
        result = LocalJobRunner(localfs=fs).run(
            AlbumRatingJob(songs_path="/songs.txt"), "/ratings.txt", "/out"
        )
        album, avg = best_album_from_output(result.pairs, min_ratings=1)
        assert album == music.best_album(min_ratings=1)

    def test_min_ratings_threshold_filters(self):
        pairs = [
            ("1", AlbumAverageWritable(average=99.0, count=1).encode()),
            ("2", AlbumAverageWritable(average=80.0, count=50).encode()),
        ]
        album, avg = best_album_from_output(pairs, min_ratings=10)
        assert (album, avg) == (2, 80.0)

    def test_no_qualifying_album_raises(self):
        pairs = [("1", AlbumAverageWritable(average=99.0, count=1).encode())]
        with pytest.raises(ValueError):
            best_album_from_output(pairs, min_ratings=5)


class TestTraceResubmissions:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_google_trace(seed=14, num_jobs=25)

    def test_parse_event(self):
        assert parse_event("10,2,3,400,0") == (10, 2, 3, 400, 0)
        assert parse_event("junk") is None
        assert parse_event("1,2,3,4,x") is None

    def test_per_job_counts_local(self, trace):
        fs = LinuxFileSystem()
        fs.write_file("/trace.csv", trace.events_text)
        result = LocalJobRunner(localfs=fs, split_size=16 * 1024).run(
            TraceResubmissionsJob(
                conf=JobConf(name="resub", num_reduces=3)
            ),
            "/trace.csv",
            "/out",
        )
        computed = {int(k): int(v) for k, v in result.pairs}
        for job_id, expected in trace.resubmissions_per_job.items():
            assert computed[job_id] == expected

    def test_full_chain_on_cluster(self, trace):
        mr = make_mr(num_workers=4, block_size=16 * 1024)
        mr.client().put_text("/trace.csv", trace.events_text)
        job_id, count = find_max_resubmission_job(mr, "/trace.csv", "/work")
        assert (job_id, count) == trace.max_resubmission_job()

    def test_max_job_forces_single_reduce(self):
        assert MaxResubmissionsJob().conf.num_reduces == 1

    def test_partitioner_keeps_job_together(self):
        # The ResubmissionReducer accumulates per job in reducer state:
        # the KeyField partitioner must route all of a job's tasks to
        # the same partition.
        job = TraceResubmissionsJob()
        from repro.mapreduce.types import Text

        partitions = {
            job.partitioner.partition(Text(f"77|{task}"), 6)
            for task in range(100)
        }
        assert len(partitions) == 1
