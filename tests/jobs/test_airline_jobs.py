"""The three airline-delay variants (Lin's monoidify lesson)."""

import pytest

from repro.datasets.airline import generate_airline
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.airline_delay import (
    AirlineDelayCombinerJob,
    AirlineDelayInMapperJob,
    AirlineDelayNaiveJob,
    SumCountWritable,
    parse_flight,
)
from repro.mapreduce.counters import C
from repro.mapreduce.local_runner import LocalJobRunner
from tests.conftest import make_mr

ALL_VARIANTS = (
    AirlineDelayNaiveJob,
    AirlineDelayCombinerJob,
    AirlineDelayInMapperJob,
)


@pytest.fixture(scope="module")
def airline():
    return generate_airline(seed=8, num_rows=2500)


def run_local(job, csv_text):
    fs = LinuxFileSystem()
    fs.write_file("/air.csv", csv_text)
    return LocalJobRunner(localfs=fs, split_size=8192).run(
        job, "/air.csv", "/out"
    )


class TestParseFlight:
    def test_header_skipped(self):
        assert parse_flight("Year,Month,...") is None

    def test_na_skipped(self):
        line = "2008,1,2,3,900,AA,100,NA,NA,ATL,ORD,500,1"
        assert parse_flight(line) is None

    def test_valid_row(self):
        line = "2008,1,2,3,900,AA,100,12,8,ATL,ORD,500,0"
        assert parse_flight(line) == ("AA", 12.0)

    def test_short_row_rejected(self):
        assert parse_flight("a,b,c") is None
        assert parse_flight("") is None

    def test_garbage_delay_rejected(self):
        line = "2008,1,2,3,900,AA,100,oops,8,ATL,ORD,500,0"
        assert parse_flight(line) is None


class TestCorrectness:
    @pytest.mark.parametrize("job_cls", ALL_VARIANTS)
    def test_matches_ground_truth(self, airline, job_cls):
        result = run_local(job_cls(), airline.csv_text)
        computed = {k: float(v) for k, v in result.pairs}
        for carrier, expected in airline.true_average_delays().items():
            assert computed[carrier] == pytest.approx(expected)

    def test_variants_agree_on_cluster(self, airline):
        mr = make_mr(num_workers=4, block_size=8192)
        mr.client().put_text("/air.csv", airline.csv_text)
        outputs = []
        for i, job_cls in enumerate(ALL_VARIANTS):
            mr.run_job(job_cls(), "/air.csv", f"/out{i}", require_success=True)
            outputs.append(
                {k: round(float(v), 9) for k, v in mr.read_output(f"/out{i}")}
            )
        assert outputs[0] == outputs[1] == outputs[2]


class TestTradeoffs:
    """The lesson itself: shuffle bytes shrink as combining gets earlier."""

    def test_shuffle_byte_ordering(self, airline):
        mr = make_mr(num_workers=4, block_size=8192)
        mr.client().put_text("/air.csv", airline.csv_text)
        naive = mr.run_job(
            AirlineDelayNaiveJob(), "/air.csv", "/n", require_success=True
        )
        combiner = mr.run_job(
            AirlineDelayCombinerJob(), "/air.csv", "/c", require_success=True
        )
        in_mapper = mr.run_job(
            AirlineDelayInMapperJob(), "/air.csv", "/m", require_success=True
        )
        assert combiner.shuffle_bytes < naive.shuffle_bytes / 5
        assert in_mapper.shuffle_bytes <= combiner.shuffle_bytes

    def test_naive_emits_one_pair_per_flight(self, airline):
        result = run_local(AirlineDelayNaiveJob(), airline.csv_text)
        flights = sum(c for _, c in airline.delay_sums.values())
        assert result.counters.get(C.MAP_OUTPUT_RECORDS) == flights


class TestSumCountWritable:
    def test_round_trip(self):
        sc = SumCountWritable(total=12.5, count=4)
        assert SumCountWritable.decode(sc.encode()) == sc

    def test_monoid_merge_manually(self):
        a = SumCountWritable(total=10.0, count=2)
        b = SumCountWritable(total=5.0, count=1)
        merged = SumCountWritable(total=a.total + b.total, count=a.count + b.count)
        assert merged.total / merged.count == pytest.approx(5.0)
