"""Airline, MovieLens, Yahoo Music, Google trace generators."""

from collections import Counter

import pytest

from repro.datasets.airline import CARRIERS, HEADER, generate_airline
from repro.datasets.google_trace import (
    EVENT_SUBMIT,
    generate_google_trace,
)
from repro.datasets.movielens import GENRES, generate_movielens
from repro.datasets.yahoo_music import generate_yahoo_music


class TestAirline:
    def test_header_and_row_count(self):
        data = generate_airline(seed=3, num_rows=500)
        lines = data.csv_text.strip().split("\n")
        assert lines[0] == HEADER
        assert len(lines) == 501

    def test_ground_truth_matches_rows(self):
        data = generate_airline(seed=3, num_rows=500)
        sums: dict[str, list] = {}
        for line in data.csv_text.strip().split("\n")[1:]:
            fields = line.split(",")
            carrier, delay = fields[5], fields[7]
            if delay == "NA":
                continue
            acc = sums.setdefault(carrier, [0.0, 0])
            acc[0] += float(delay)
            acc[1] += 1
        for carrier, (total, count) in data.delay_sums.items():
            if count:
                assert sums[carrier][1] == count
                assert sums[carrier][0] == pytest.approx(total)

    def test_cancelled_rows_have_na(self):
        data = generate_airline(seed=3, num_rows=2000, cancelled_rate=0.5)
        na_rows = [
            line
            for line in data.csv_text.strip().split("\n")[1:]
            if ",NA," in line
        ]
        assert len(na_rows) > 500  # roughly half

    def test_carriers_are_known_codes(self):
        data = generate_airline(seed=3, num_rows=200)
        codes = {c for c, _, _ in CARRIERS}
        for line in data.csv_text.strip().split("\n")[1:]:
            assert line.split(",")[5] in codes

    def test_best_carrier_is_min_average(self):
        data = generate_airline(seed=3, num_rows=5000)
        averages = data.true_average_delays()
        assert averages[data.best_carrier()] == min(averages.values())

    def test_deterministic(self):
        assert (
            generate_airline(seed=5, num_rows=100).csv_text
            == generate_airline(seed=5, num_rows=100).csv_text
        )


class TestMovieLens:
    def test_formats(self):
        data = generate_movielens(seed=4, num_ratings=300, num_movies=30)
        rating_line = data.ratings_text.strip().split("\n")[0]
        assert len(rating_line.split("::")) == 4
        movie_line = data.movies_text.strip().split("\n")[0]
        movie_id, title, genres = movie_line.split("::")
        assert movie_id == "1"
        assert "(" in title  # release year
        assert all(g in GENRES for g in genres.split("|"))

    def test_genre_stats_match_raw_data(self):
        data = generate_movielens(seed=4, num_ratings=500, num_movies=40)
        movie_genres = {}
        for line in data.movies_text.strip().split("\n"):
            mid, _, genre_field = line.split("::")
            movie_genres[int(mid)] = genre_field.split("|")
        recomputed: dict[str, list] = {}
        for line in data.ratings_text.strip().split("\n"):
            _u, movie, rating, _t = line.split("::")
            for genre in movie_genres[int(movie)]:
                acc = recomputed.setdefault(genre, [0, 0.0])
                acc[0] += 1
                acc[1] += float(rating)
        for genre, stats in data.genre_stats.items():
            assert recomputed[genre][0] == stats.count
            assert recomputed[genre][1] / recomputed[genre][0] == pytest.approx(
                stats.mean
            )

    def test_top_rater_matches_counts(self):
        data = generate_movielens(seed=4, num_ratings=800)
        counts = Counter()
        for line in data.ratings_text.strip().split("\n"):
            counts[int(line.split("::")[0])] += 1
        assert counts[data.top_rater()] == max(counts.values())

    def test_ratings_in_valid_range(self):
        data = generate_movielens(seed=4, num_ratings=300)
        for line in data.ratings_text.strip().split("\n"):
            rating = float(line.split("::")[2])
            assert 0.5 <= rating <= 5.0
            assert (rating * 2) == int(rating * 2)  # half-star grid


class TestYahooMusic:
    def test_song_album_table_complete(self):
        data = generate_yahoo_music(seed=5, num_albums=10, songs_per_album=4)
        lines = data.songs_text.strip().split("\n")
        assert len(lines) == 40
        albums = {int(line.split("\t")[1]) for line in lines}
        assert albums == set(range(1, 11))

    def test_album_sums_match_raw(self):
        data = generate_yahoo_music(seed=5, num_ratings=400, num_albums=12)
        song_album = {}
        for line in data.songs_text.strip().split("\n"):
            song, album, _ = line.split("\t")
            song_album[int(song)] = int(album)
        sums: dict[int, list] = {}
        for line in data.ratings_text.strip().split("\n"):
            _u, song, rating = line.split("\t")
            album = song_album[int(song)]
            acc = sums.setdefault(album, [0.0, 0])
            acc[0] += float(rating)
            acc[1] += 1
        for album, (total, count) in data.album_sums.items():
            assert sums[album] == [total, count]

    def test_best_album_respects_min_ratings(self):
        data = generate_yahoo_music(seed=5, num_ratings=300, num_albums=15)
        best_any = data.best_album(min_ratings=1)
        averages = data.true_album_averages(min_ratings=1)
        assert averages[best_any] == max(averages.values())

    def test_ratings_on_0_100_scale(self):
        data = generate_yahoo_music(seed=5, num_ratings=200)
        for line in data.ratings_text.strip().split("\n"):
            assert 0 <= int(line.split("\t")[2]) <= 100


class TestGoogleTrace:
    def test_event_rows_well_formed(self):
        data = generate_google_trace(seed=6, num_jobs=20)
        for line in data.events_text.strip().split("\n"):
            fields = line.split(",")
            assert len(fields) == 5
            assert 0 <= int(fields[4]) <= 6

    def test_resubmissions_match_submit_counts(self):
        data = generate_google_trace(seed=6, num_jobs=30)
        submits: Counter = Counter()
        for line in data.events_text.strip().split("\n"):
            ts, job, task, machine, event = (int(x) for x in line.split(","))
            if event == EVENT_SUBMIT:
                submits[(job, task)] += 1
        per_job: Counter = Counter()
        for (job, _task), count in submits.items():
            per_job[job] += count - 1
        for job_id in range(1, 31):
            assert data.resubmissions_per_job[job_id] == per_job.get(job_id, 0)

    def test_max_job_is_argmax(self):
        data = generate_google_trace(seed=6, num_jobs=30)
        job_id, count = data.max_resubmission_job()
        assert count == max(data.resubmissions_per_job.values())
        assert data.resubmissions_per_job[job_id] == count

    def test_flaky_fraction_zero_means_no_resubmissions(self):
        data = generate_google_trace(seed=6, num_jobs=15, flaky_fraction=0.0)
        assert data.max_resubmission_job()[1] == 0

    def test_timestamps_monotonic(self):
        data = generate_google_trace(seed=6, num_jobs=10)
        stamps = [
            int(line.split(",")[0])
            for line in data.events_text.strip().split("\n")
        ]
        assert stamps == sorted(stamps)
