"""The dataset catalog and staging-time reasoning (Section III.C)."""

import pytest

from repro.datasets.catalog import (
    DATASET_CATALOG,
    staging_table,
    staging_time,
)
from repro.util.units import GB, MB, MINUTE, HOUR


class TestCatalog:
    def test_all_five_course_datasets_present(self):
        assert set(DATASET_CATALOG) == {
            "shakespeare",
            "google_trace",
            "airline",
            "movielens",
            "yahoo_music",
        }

    def test_paper_quoted_sizes(self):
        assert DATASET_CATALOG["google_trace"].real_size_bytes == 171 * GB
        assert DATASET_CATALOG["airline"].real_size_bytes == 12 * GB
        assert DATASET_CATALOG["movielens"].real_size_bytes == 250 * MB
        assert DATASET_CATALOG["yahoo_music"].real_size_bytes == 10 * GB

    def test_generators_resolve(self):
        import importlib

        for info in DATASET_CATALOG.values():
            module_name, func = info.generator.rsplit(".", 1)
            module = importlib.import_module(module_name)
            assert callable(getattr(module, func))


class TestStagingClaims:
    """Claim C5's shape: >1h for the Google trace, <5min for Yahoo."""

    INGEST_BW = 40 * MB  # a realistic single-client -put rate

    def test_google_trace_over_an_hour(self):
        seconds = staging_time(DATASET_CATALOG["google_trace"], self.INGEST_BW)
        assert seconds > 1 * HOUR

    def test_yahoo_under_five_minutes(self):
        seconds = staging_time(DATASET_CATALOG["yahoo_music"], self.INGEST_BW)
        assert seconds < 5 * MINUTE

    def test_ordering_follows_size(self):
        times = {
            key: staging_time(info, self.INGEST_BW)
            for key, info in DATASET_CATALOG.items()
        }
        assert times["google_trace"] > times["airline"] > times["movielens"]

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            staging_time(DATASET_CATALOG["airline"], 0)

    def test_staging_table_rows(self):
        rows = staging_table(self.INGEST_BW)
        assert len(rows) == len(DATASET_CATALOG)
        assert all(len(row) == 3 for row in rows)
