"""Zipf text and the Shakespeare corpus."""

from collections import Counter

from repro.datasets.shakespeare import generate_shakespeare, tokenize
from repro.datasets.zipf_text import ZipfTextGenerator
from repro.util.rng import RngStream


class TestZipfText:
    def test_deterministic(self):
        a = ZipfTextGenerator(RngStream(1).child("z")).text(100)
        b = ZipfTextGenerator(RngStream(1).child("z")).text(100)
        assert a == b

    def test_word_count(self):
        text = ZipfTextGenerator(RngStream(2).child("z")).text(100)
        assert len(text.split()) == 100

    def test_zipf_skew(self):
        gen = ZipfTextGenerator(RngStream(3).child("z"), vocab_size=500)
        words = gen.words(20_000)
        counts = Counter(words).most_common()
        # Top word much more frequent than the 50th.
        assert counts[0][1] > counts[49][1] * 5

    def test_text_of_bytes_close_to_target(self):
        gen = ZipfTextGenerator(RngStream(4).child("z"))
        text = gen.text_of_bytes(10_000)
        assert 10_000 <= len(text.encode()) <= 13_000

    def test_lines_bounded(self):
        gen = ZipfTextGenerator(RngStream(5).child("z"), words_per_line=5)
        text = gen.text(47)
        for line in text.strip().split("\n"):
            assert 1 <= len(line.split()) <= 5


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("To be, or NOT to be!") == [
            "to", "be", "or", "not", "to", "be",
        ]

    def test_apostrophes_kept(self):
        assert tokenize("'tis the king's") == ["'tis", "the", "king's"]

    def test_numbers_kept(self):
        assert tokenize("act 2 scene 3") == ["act", "2", "scene", "3"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  ,,  ") == []


class TestShakespeare:
    def test_ground_truth_matches_text(self):
        corpus = generate_shakespeare(seed=7, num_plays=2, words_per_play=400)
        assert corpus.word_counts == Counter(tokenize(corpus.text))

    def test_top_word_is_argmax(self):
        corpus = generate_shakespeare(seed=7, num_plays=2, words_per_play=400)
        word, count = corpus.top_word
        assert corpus.word_counts[word] == count
        assert count == max(corpus.word_counts.values())

    def test_top_word_tie_break_alphabetical(self):
        corpus = generate_shakespeare(seed=7, num_plays=1, words_per_play=100)
        word, count = corpus.top_word
        ties = [w for w, c in corpus.word_counts.items() if c == count]
        assert word == min(ties)

    def test_structure_markers_present(self):
        corpus = generate_shakespeare(seed=1, num_plays=2, words_per_play=200)
        assert "ACT 1" in corpus.text
        assert corpus.num_plays == 2

    def test_deterministic(self):
        a = generate_shakespeare(seed=11, num_plays=1, words_per_play=100)
        b = generate_shakespeare(seed=11, num_plays=1, words_per_play=100)
        assert a.text == b.text

    def test_different_seeds_differ(self):
        a = generate_shakespeare(seed=1, num_plays=1, words_per_play=100)
        b = generate_shakespeare(seed=2, num_plays=1, words_per_play=100)
        assert a.text != b.text
