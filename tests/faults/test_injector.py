"""FaultInjector: hook wiring, name-keyed draws, replayable fault logs."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, RateFault
from repro.mapreduce.config import JobConf
from repro.mapreduce.streaming import streaming_job
from tests.conftest import make_mr


def wc_job(name="wc"):
    return streaming_job(
        name=name,
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        conf=JobConf(name=name),
    )


class TestLifecycle:
    def test_arm_installs_and_disarm_restores(self):
        mr = make_mr()
        plan = FaultPlan(seed=1).task_exception_rate(0.5)
        injector = FaultInjector(plan, mr)
        default_site = mr.sim.faults
        with injector:
            assert mr.sim.faults is injector
        assert mr.sim.faults is not injector
        assert type(mr.sim.faults) is type(default_site)

    def test_arm_is_idempotent(self):
        mr = make_mr()
        injector = FaultInjector(FaultPlan(), mr)
        assert injector.arm() is injector.arm()
        injector.disarm()

    def test_disarm_cancels_pending_scheduled_faults(self):
        mr = make_mr()
        plan = FaultPlan().crash_datanode(at=50.0, node="node0")
        injector = FaultInjector(plan, mr).arm()
        injector.disarm()
        mr.sim.run_for(200.0)
        assert mr.hdfs.datanodes["node0"].is_serving
        assert injector.injected == []


class TestNameKeyedDraws:
    def test_draws_do_not_depend_on_call_order(self):
        mr = make_mr()
        rate = RateFault(kind="task.exception", rate=0.5)
        a = FaultInjector(FaultPlan(seed=3), mr)
        b = FaultInjector(FaultPlan(seed=3), mr)
        keys = [("attempt_1",), ("attempt_2",), ("attempt_3", 0)]
        forward = [a._fires(rate, *k) for k in keys]
        backward = [b._fires(rate, *k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_draw_differently_somewhere(self):
        mr = make_mr()
        rate = RateFault(kind="task.exception", rate=0.5)
        a = FaultInjector(FaultPlan(seed=1), mr)
        b = FaultInjector(FaultPlan(seed=2), mr)
        keys = [(f"attempt_{i}",) for i in range(32)]
        assert [a._fires(rate, *k) for k in keys] != [
            b._fires(rate, *k) for k in keys
        ]


class TestScheduledFaults:
    def test_datanode_crash_and_restart(self):
        mr = make_mr()
        plan = FaultPlan().crash_datanode(
            at=5.0, node="node1", restart_after=20.0
        )
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(6.0)
            assert not mr.hdfs.datanodes["node1"].is_serving
            mr.sim.run_for(30.0)
            assert mr.hdfs.datanodes["node1"].is_serving
            kinds = [kind for _, kind, _ in injector.injected]
        assert kinds == ["datanode.crash", "datanode.restart"]

    def test_slow_disk_applies_and_heals(self):
        mr = make_mr()
        plan = FaultPlan().slow_disk(at=1.0, node="node0", factor=6.0, duration=10.0)
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(2.0)
            assert mr.hdfs.datanodes["node0"].disk_slow_factor == 6.0
            mr.sim.run_for(15.0)
            assert mr.hdfs.datanodes["node0"].disk_slow_factor == 1.0
            kinds = [kind for _, kind, _ in injector.injected]
        assert kinds == ["disk.slow", "disk.healed"]

    def test_corruption_storm_spares_last_replica(self):
        mr = make_mr()
        mr.client().put_text("/data.txt", "payload " * 2000)
        plan = FaultPlan(seed=2).corrupt_blocks(at=1.0, count=100)
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(2.0)
            corrupted = [
                data for _, kind, data in injector.injected
                if kind == "block.corrupted"
            ]
            assert corrupted, "storm should damage something"
            # Every block must keep at least one verifiable replica.
            for block_id in {d["block_id"] for d in corrupted}:
                assert injector._healthy_replicas(block_id) >= 1

    def test_namenode_crash_and_scheduled_recovery(self):
        mr = make_mr()
        mr.client().put_text("/data.txt", "payload " * 500)
        digest = mr.hdfs.namenode.namespace_digest()
        plan = FaultPlan().crash_namenode(at=5.0, recover_after=40.0)
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(6.0)
            assert mr.hdfs.namenode.down
            mr.sim.run_for(60.0)
            assert not mr.hdfs.namenode.down
            assert mr.hdfs.namenode.namespace_digest() == digest
            kinds = [kind for _, kind, _ in injector.injected]
        assert kinds == ["namenode.crash", "namenode.recover"]

    def test_checkpoint_roll_truncates_the_edit_log(self):
        mr = make_mr()
        mr.client().put_text("/data.txt", "payload " * 500)
        plan = FaultPlan().roll_checkpoint(at=1.0)
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(2.0)
            kinds = [kind for _, kind, _ in injector.injected]
            assert kinds == ["checkpoint.roll"]
            (_, _, data) = injector.injected[0]
            assert data["image_inodes"] > 0
        assert mr.hdfs.namenode.journal.edits_since_checkpoint == 0

    def test_torn_tail_then_recovery_drops_only_the_torn_record(self):
        mr = make_mr()
        mr.client().put_text("/data.txt", "payload " * 500)
        edits_before = mr.hdfs.namenode.journal.edits_logged
        plan = (
            FaultPlan()
            .tear_journal_tail(at=1.0)
            .crash_namenode(at=2.0)
            .recover_namenode(at=3.0)
        )
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(10.0)
            kinds = [kind for _, kind, _ in injector.injected]
            assert kinds == [
                "journal.torn_tail",
                "namenode.crash",
                "namenode.recover",
            ]
        recovery = mr.hdfs.namenode.journal.last_recovery
        assert recovery.torn_bytes > 0
        assert recovery.replayed_edits == edits_before - 1

    def test_namenode_crash_rate_draws_by_heartbeat_count(self):
        mr = make_mr()
        plan = FaultPlan(seed=5).namenode_crash_rate(0.02, recover_after=30.0)
        with FaultInjector(plan, mr) as injector:
            mr.sim.run_for(4 * 3600.0)
            kinds = [kind for _, kind, _ in injector.injected]
        assert "namenode.crash" in kinds and "namenode.recover" in kinds
        assert not mr.hdfs.namenode.down  # every crash recovered

    def test_trigger_fires_on_nth_event_only_once(self):
        mr = make_mr()
        plan = FaultPlan().on_event(
            "unit.test", "datanode.crash", count=2, target="node2"
        )
        with FaultInjector(plan, mr) as injector:
            mr.sim.bus.publish("unit.test", mr.sim.now, tracker="node0")
            mr.sim.run_for(1.0)
            assert mr.hdfs.datanodes["node2"].is_serving  # count not reached
            mr.sim.bus.publish("unit.test", mr.sim.now, tracker="node0")
            mr.sim.bus.publish("unit.test", mr.sim.now, tracker="node0")
            mr.sim.run_for(1.0)
            assert not mr.hdfs.datanodes["node2"].is_serving
            crashes = [k for _, k, _ in injector.injected if k == "datanode.crash"]
        assert crashes == ["datanode.crash"]  # third event did not re-fire

    def test_trigger_target_from_event_data(self):
        mr = make_mr()
        plan = FaultPlan().on_event(
            "unit.test", "tracker.crash", target_from="tracker"
        )
        with FaultInjector(plan, mr):
            mr.sim.bus.publish("unit.test", mr.sim.now, tracker="node3")
            mr.sim.run_for(1.0)
            assert not mr.tasktrackers["node3"].is_serving


class TestReplayIdentity:
    def _fault_log(self, seed: int) -> list[str]:
        mr = make_mr()
        mr.client().put_text("/in.txt", "alpha beta gamma " * 400)
        plan = (
            FaultPlan(seed=seed)
            .shuffle_failure_rate(0.3)
            .task_exception_rate(0.15)
            .straggler_rate(0.2, factor=2.0)
        )
        with FaultInjector(plan, mr) as injector:
            report = mr.run_job(wc_job(), "/in.txt", "/out", timeout=48 * 3600)
            assert report.succeeded
            return injector.fault_log()

    def test_same_seed_replays_identical_fault_log(self):
        first = self._fault_log(seed=7)
        assert first, "rates this high should inject something"
        assert self._fault_log(seed=7) == first

    def test_different_seed_diverges(self):
        assert self._fault_log(seed=7) != self._fault_log(seed=8)
