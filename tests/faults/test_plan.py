"""FaultPlan: the declarative layer — validation, describe, reseeding."""

import pytest

from repro.faults.plan import FaultPlan, ScheduledFault
from repro.util.errors import ConfigError


class TestBuilders:
    def test_chaining_accumulates_faults(self):
        plan = (
            FaultPlan(seed=9)
            .crash_datanode(at=5.0, node="node1", restart_after=30.0)
            .slow_disk(at=2.0, node="node0", factor=6.0)
            .corrupt_blocks(at=1.0, count=3)
            .restart_cluster(at=100.0)
            .shuffle_failure_rate(0.2)
            .straggler_rate(0.1, factor=2.0)
            .on_event("mr.task.completed", "tracker.crash", target_from="tracker")
        )
        assert len(plan.scheduled) == 4
        assert len(plan.rates) == 2
        assert len(plan.triggers) == 1
        assert not plan.is_empty()
        assert FaultPlan().is_empty()

    def test_params_frozen_and_readable(self):
        plan = FaultPlan().crash_datanode(at=1.0, node="n", restart_after=9.0)
        fault = plan.scheduled[0]
        assert fault.param("restart_after") == 9.0
        assert fault.param("missing", "default") == "default"

    def test_namenode_builders(self):
        plan = (
            FaultPlan(seed=2)
            .crash_namenode(at=5.0, recover_after=45.0)
            .roll_checkpoint(at=3.0)
            .tear_journal_tail(at=4.0)
            .recover_namenode(at=60.0)
            .namenode_crash_rate(0.01)
        )
        assert len(plan.scheduled) == 4
        kinds = {fault.kind for fault in plan.scheduled}
        assert kinds == {
            "namenode.crash",
            "namenode.recover",
            "checkpoint.roll",
            "journal.torn_tail",
        }
        crash = next(f for f in plan.scheduled if f.kind == "namenode.crash")
        assert crash.param("recover_after") == 45.0
        (rate,) = plan.rates
        assert rate.kind == "namenode.crash"
        # The NameNode rate defaults recovery ON — a dead control plane
        # can never finish a drill.
        assert rate.param("recover_after") == 60.0

    def test_namenode_crash_as_trigger(self):
        plan = FaultPlan().on_event(
            "mr.task.completed", "namenode.crash", count=2, recover_after=30.0
        )
        (trigger,) = plan.triggers
        assert trigger.kind == "namenode.crash"
        assert dict(trigger.params)["recover_after"] == 30.0

    def test_describe_mentions_every_fault(self):
        plan = (
            FaultPlan(seed=4)
            .crash_tracker(at=3.0, node="node2")
            .task_exception_rate(0.5)
            .on_event("mr.task.completed", "cluster.restart", count=2)
        )
        text = plan.describe()
        assert "seed=4" in text
        assert "tracker.crash" in text and "target=node2" in text
        assert "task.exception rate=0.5" in text
        assert "on mr.task.completed#2 cluster.restart" in text
        assert "(no faults)" in FaultPlan().describe()


class TestValidation:
    def test_unknown_kinds_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan()._add_scheduled(0.0, "meteor.strike", "node0")
        with pytest.raises(ConfigError):
            FaultPlan()._add_rate("meteor.strike", 0.5)
        with pytest.raises(ConfigError):
            FaultPlan().on_event("mr.task.completed", "meteor.strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().crash_datanode(at=-1.0, node="node0")

    def test_target_required_for_node_faults(self):
        with pytest.raises(ConfigError):
            FaultPlan()._add_scheduled(0.0, "datanode.crash", None)
        with pytest.raises(ConfigError):
            FaultPlan().on_event("mr.task.completed", "tracker.crash")

    def test_rate_bounds_and_duplicates(self):
        with pytest.raises(ConfigError):
            FaultPlan().shuffle_failure_rate(1.5)
        with pytest.raises(ConfigError):
            FaultPlan().task_exception_rate(-0.1)
        plan = FaultPlan().shuffle_failure_rate(0.2)
        with pytest.raises(ConfigError):
            plan.shuffle_failure_rate(0.3)

    def test_factor_and_count_floors(self):
        with pytest.raises(ConfigError):
            FaultPlan().slow_disk(at=0.0, node="n", factor=0.5)
        with pytest.raises(ConfigError):
            FaultPlan().straggler_rate(0.1, factor=0.9)
        with pytest.raises(ConfigError):
            FaultPlan().corrupt_blocks(at=0.0, count=0)
        with pytest.raises(ConfigError):
            FaultPlan().on_event("mr.task.completed", "cluster.restart", count=0)


class TestReseeding:
    def test_with_seed_copies_independently(self):
        plan = FaultPlan(seed=1).crash_datanode(at=1.0, node="node0")
        reseeded = plan.with_seed(2)
        assert reseeded.seed == 2
        assert reseeded.scheduled == plan.scheduled
        plan.crash_tracker(at=2.0, node="node1")
        assert len(reseeded.scheduled) == 1  # not aliased

    def test_scheduled_fault_is_hashable_value(self):
        a = ScheduledFault(at=1.0, kind="cluster.restart")
        b = ScheduledFault(at=1.0, kind="cluster.restart")
        assert a == b and hash(a) == hash(b)
