"""The classroom chaos drills, end to end.

Each drill runs a fault-free baseline, a faulty run, and a replay; the
checks inside :func:`run_scenario` assert the jobs heal (bit-identical
output, matching framework/user counters) and that the chaos replays
(same seed, same fault log).  Here we simply demand every check passes
and spot-check the recovery mechanics each drill is *supposed* to
exercise.
"""

import pytest

from repro.faults import SCENARIOS, get_scenario, list_scenarios, run_scenario
from repro.util.errors import ConfigError


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_drill_heals_and_replays(name):
    result = run_scenario(name, seed=3)
    assert result.ok, f"{name} failed:\n{result.summary()}"
    assert result.fault_log
    assert result.replay_fault_log == result.fault_log
    assert result.output_files == result.baseline_files


def test_lost_map_output_exercises_the_reexecution_chain():
    result = run_scenario("lost_map_output", seed=3)
    assert result.ok, result.summary()
    timeline = "\n".join(result.timeline)
    assert "mr.shuffle.retry" in timeline
    assert "mr.jobtracker.map_output_lost" in timeline
    # The crashed tracker's completed maps ran again as _1 attempts.
    assert "_m_" in timeline and "_1 " in timeline


def test_corrupt_cluster_storm_is_recorded():
    result = run_scenario("corrupt_cluster_fsck", seed=3)
    assert result.ok, result.summary()
    assert any("block.corrupted" in line for line in result.fault_log)


def test_pagerank_drill_loses_a_datanode_and_stays_bit_identical():
    result = run_scenario("pagerank_datanode_loss", seed=3)
    assert result.ok, result.summary()
    assert any("datanode.crash" in line for line in result.fault_log)
    # The comparable artifact is the full-precision rank table.
    assert result.output_files["ranks"] == result.baseline_files["ranks"]
    assert b"\t" in result.output_files["ranks"]


def test_registry_lookup():
    assert [s.name for s in list_scenarios()] == sorted(SCENARIOS)
    assert get_scenario("kill_datanode").title
    with pytest.raises(ConfigError):
        get_scenario("meteor_strike")
