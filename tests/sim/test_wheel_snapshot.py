"""Timer wheel, O(1) pending census, and snapshot/restore."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.snapshot import SnapshotError


class TestTimerWheel:
    def test_many_subscribers_one_event_per_tick(self):
        sim = Simulation()
        fired = []
        wheel = sim.wheel(5.0)
        for i in range(100):
            wheel.subscribe(fired.append, i)
        # One wheel event in the queue, not 100 heartbeat chains.
        assert sim.pending() == 1
        sim.run_until(5.0)
        assert fired == list(range(100))
        assert sim.pending() == 1  # re-armed for the next tick

    def test_wheel_cached_per_interval(self):
        sim = Simulation()
        assert sim.wheel(3.0) is sim.wheel(3.0)
        assert sim.wheel(3.0) is not sim.wheel(5.0)

    def test_first_fire_strictly_after_join(self):
        sim = Simulation()
        fired = []
        sim.wheel(10.0).subscribe(lambda: fired.append(sim.now))
        sim.run_until(25.0)
        assert fired == [10.0, 20.0]
        # Joining exactly on a tick boundary must not fire at that tick.
        late = []
        sim.schedule_at(30.0, lambda: sim.wheel(10.0).subscribe(
            lambda: late.append(sim.now)
        ))
        sim.run_until(50.0)
        assert late == [40.0, 50.0]

    def test_cancel_mid_run(self):
        sim = Simulation()
        fired = []
        cancel = sim.wheel(2.0).subscribe(lambda: fired.append(sim.now))
        sim.run_until(4.0)
        cancel()
        sim.run_until(10.0)
        assert fired == [2.0, 4.0]

    def test_subscribers_fire_in_subscription_order(self):
        sim = Simulation()
        order = []
        wheel = sim.wheel(1.0)
        wheel.subscribe(order.append, "a")
        wheel.subscribe(order.append, "b")
        wheel.subscribe(order.append, "c")
        sim.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_wheel_idles_without_subscribers(self):
        sim = Simulation()
        wheel = sim.wheel(1.0)
        cancel = wheel.subscribe(lambda: None)
        cancel()
        sim.run_until(5.0)
        # The armed tick fires once, finds nobody, and does not re-arm.
        assert sim.pending() == 0


class TestPendingCensus:
    def test_pending_exact_under_cancellation(self):
        sim = Simulation()
        events = [sim.schedule(i + 1.0, lambda: None) for i in range(50)]
        assert sim.pending() == 50
        for event in events[::2]:
            event.cancel()
        assert sim.pending() == 25
        # Double-cancel must not double-count.
        events[0].cancel()
        assert sim.pending() == 25

    def test_compaction_purges_cancelled_events(self):
        sim = Simulation()
        events = [sim.schedule(i + 1.0, lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Census is exact, and compaction fired once rot dominated the
        # heap (sub-threshold leftovers may legitimately remain).
        assert sim.pending() == 50
        assert len(sim._queue) <= 100

    def test_cancelled_events_do_not_fire_after_compaction(self):
        sim = Simulation()
        fired = []
        keep = [sim.schedule(5.0, fired.append, i) for i in range(10)]
        drop = [sim.schedule(1.0, fired.append, 99) for _ in range(200)]
        for event in drop:
            event.cancel()
        sim.run_until(10.0)
        assert fired == list(range(10))
        assert sim.pending() == 0


class TestSnapshot:
    def _build(self):
        sim = Simulation()
        state = {"ticks": 0, "times": []}

        def tick():
            state["ticks"] += 1
            state["times"].append(sim.now)

        sim.wheel(2.0).subscribe(tick)
        return sim, state

    def test_restore_is_bit_identical(self):
        sim, state = self._build()
        sim.run_until(10.0)
        snapshot = sim.snapshot(state)
        sim.run_until(20.0)
        outcome = (sim.now, sim.events_processed, dict(state))

        rsim, (rstate,) = snapshot.restore()
        rsim.run_until(20.0)
        assert (rsim.now, rsim.events_processed, dict(rstate)) == outcome

    def test_restore_does_not_touch_original(self):
        sim, state = self._build()
        sim.run_until(4.0)
        snapshot = sim.snapshot(state)
        rsim, (rstate,) = snapshot.restore()
        rsim.run_until(20.0)
        assert state["ticks"] == 2  # original unchanged
        assert rstate["ticks"] == 10

    def test_snapshot_is_reusable(self):
        sim, state = self._build()
        sim.run_until(6.0)
        snapshot = sim.snapshot(state)
        first_sim, (first,) = snapshot.restore()
        first_sim.run_until(20.0)
        second_sim, (second,) = snapshot.restore()
        second_sim.run_until(20.0)
        assert dict(first) == dict(second)

    def test_rng_state_travels_with_snapshot(self):
        import random

        sim = Simulation()
        rng = random.Random(7)
        draws = []
        sim.wheel(1.0).subscribe(lambda: draws.append(rng.random()))
        sim.run_until(5.0)
        snapshot = sim.snapshot(rng, draws)
        sim.run_until(10.0)
        rsim, (rrng, rdraws) = snapshot.restore()
        rsim.run_until(10.0)
        assert rdraws == draws

    def test_refuses_in_flight_work(self):
        class BusyJoiner:
            def pending_since(self):
                return 1.0

            def join_all(self):  # pragma: no cover - never called
                pass

        sim = Simulation()
        sim.register_work_joiner(BusyJoiner())
        with pytest.raises(SnapshotError):
            sim.snapshot()
