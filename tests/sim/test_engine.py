"""Event engine: ordering, cancellation, recurring timers, run bounds."""

import pytest

from repro.sim.engine import Simulation


class TestScheduling:
    def test_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_fifo_within_same_time(self):
        sim = Simulation()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_schedule_at_absolute(self):
        sim = Simulation()
        sim.schedule(3.0, lambda: None)
        sim.run()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert sim.now == 10.0

    def test_cannot_schedule_in_past(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulation()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        handle.cancel()
        assert sim.pending() == 1


class TestRunUntil:
    def test_stops_at_time(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_with_empty_queue_sets_time(self):
        sim = Simulation()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_run_for(self):
        sim = Simulation()
        sim.run_for(2.5)
        sim.run_for(2.5)
        assert sim.now == 5.0

    def test_event_exactly_at_boundary_fires(self):
        sim = Simulation()
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run_until(3.0)
        assert fired == ["edge"]


class TestEvery:
    def test_recurring_fires(self):
        sim = Simulation()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_stops_recurrence(self):
        sim = Simulation()
        ticks = []
        cancel = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.0)
        cancel()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_cancel_from_inside_callback(self):
        sim = Simulation()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                holder["cancel"]()

        holder["cancel"] = sim.every(1.0, tick)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_delay(self):
        sim = Simulation()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_zero_interval_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)


class TestRunawayProtection:
    def test_run_raises_on_event_storm(self):
        sim = Simulation()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulation()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4
