"""Clock invariants."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(10.0).now == 10.0

    def test_advances(self):
        clock = SimClock()
        clock._advance_to(5.0)
        assert clock.now == 5.0

    def test_never_goes_backward(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock._advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(5.0)
        clock._advance_to(5.0)
        assert clock.now == 5.0
