"""HBase data model: cells, ordering, mutations."""

import pytest

from repro.hbase.model import (
    TOMBSTONE,
    Cell,
    CellKey,
    Delete,
    Get,
    Put,
    RowResult,
    Scan,
)
from repro.util.errors import ConfigError


class TestCell:
    def test_encode_decode_round_trip(self):
        cell = Cell("row1", "info", "title", 42, "Hello World")
        assert Cell.decode(cell.encode()) == cell

    def test_value_may_contain_separator_like_text(self):
        cell = Cell("r", "f", "q", 1, "a:b,c d")
        assert Cell.decode(cell.encode()).value == "a:b,c d"

    def test_tombstone_flag(self):
        assert Cell("r", "f", "q", 1, TOMBSTONE).is_tombstone
        assert not Cell("r", "f", "q", 1, "x").is_tombstone


class TestCellKeyOrdering:
    def test_rows_sort_lexicographically(self):
        a = Cell("a", "f", "q", 1, "v").key
        b = Cell("b", "f", "q", 1, "v").key
        assert a < b

    def test_newer_timestamp_sorts_first(self):
        old = Cell("r", "f", "q", 1, "v").key
        new = Cell("r", "f", "q", 9, "v").key
        assert new < old

    def test_timestamp_property(self):
        assert CellKey("r", "f", "q", -5).timestamp == 5


class TestPut:
    def test_builder_and_cells(self):
        put = Put(row="r1").add("f", "a", "1").add("f", "b", "2")
        cells = put.cells(timestamp=7)
        assert len(cells) == 2
        assert all(c.timestamp == 7 for c in cells)
        assert {(c.family, c.qualifier) for c in cells} == {("f", "a"), ("f", "b")}

    def test_empty_put_rejected(self):
        with pytest.raises(ConfigError):
            Put(row="r").cells(1)

    @pytest.mark.parametrize("bad", ["", "has\x01sep", "line\nbreak"])
    def test_reserved_keys_rejected(self, bad):
        with pytest.raises(ConfigError):
            Put(row="r").add(bad or "f", "q", "v") if bad else Put(
                row=bad
            ).add("f", "q", "v")

    def test_reserved_value_rejected(self):
        with pytest.raises(ConfigError):
            Put(row="r").add("f", "q", "bad\x01value")


class TestOtherOps:
    def test_delete_builder(self):
        delete = Delete(row="r").add_column("f", "a").add_column("f", "b")
        assert delete.columns == [("f", "a"), ("f", "b")]

    def test_row_result(self):
        result = RowResult(row="r", cells={("f", "q"): "v"})
        assert result.value("f", "q") == "v"
        assert result.value("f", "other") is None
        assert not result.empty
        assert RowResult(row="r").empty

    def test_scan_defaults_open(self):
        scan = Scan()
        assert scan.start_row is None and scan.stop_row is None
