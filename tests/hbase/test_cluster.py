"""HBaseCluster: tables, routing, splits, WAL crash recovery."""

import pytest

from repro.hbase import Delete, Get, HBaseCluster, Put, Scan
from repro.hbase.region import RegionConfig
from repro.hbase.server import RegionServerDownError
from repro.util.errors import ConfigError


@pytest.fixture
def hb():
    return HBaseCluster(num_servers=3, seed=4)


def load_movies(table, count=30):
    for i in range(count):
        table.put(
            Put(row=f"movie{i:03d}")
            .add("info", "title", f"Title {i}")
            .add("info", "year", str(1990 + i % 20))
        )


class TestTableLifecycle:
    def test_create_and_describe(self, hb):
        table = hb.create_table("t1", families=["f"])
        assert table.descriptor.families == ("f",)
        assert len(hb.master.regions_of("t1")) == 1

    def test_duplicate_table_rejected(self, hb):
        hb.create_table("t1", families=["f"])
        with pytest.raises(ConfigError):
            hb.create_table("t1", families=["f"])

    def test_table_needs_families(self, hb):
        with pytest.raises(ConfigError):
            hb.create_table("t1", families=[])

    def test_unknown_family_rejected(self, hb):
        table = hb.create_table("t1", families=["f"])
        with pytest.raises(ConfigError):
            table.put(Put(row="r").add("ghost", "q", "v"))

    def test_drop_table_frees_hdfs(self, hb):
        table = hb.create_table("t1", families=["info"])
        load_movies(table, count=10)
        table.flush()
        assert any("hfile" in p for p in hb.hdfs_footprint())
        hb.drop_table("t1")
        assert not any("t1" in p for p in hb.hdfs_footprint())


class TestCrud:
    def test_put_get_round_trip(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table)
        row = table.get(Get(row="movie012"))
        assert row.value("info", "title") == "Title 12"

    def test_update_overwrites(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=5)
        table.put(Put(row="movie002").add("info", "title", "Renamed"))
        assert table.get(Get(row="movie002")).value("info", "title") == "Renamed"

    def test_get_missing_row_is_empty(self, hb):
        table = hb.create_table("movies", families=["info"])
        assert table.get(Get(row="nope")).empty

    def test_column_delete(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=5)
        table.delete(Delete(row="movie001").add_column("info", "year"))
        row = table.get(Get(row="movie001"))
        assert row.value("info", "year") is None
        assert row.value("info", "title") == "Title 1"

    def test_row_delete(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=5)
        table.delete(Delete(row="movie003"))
        assert table.get(Get(row="movie003")).empty
        assert table.count() == 4

    def test_scan_with_limit(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=20)
        rows = table.scan(Scan(limit=7))
        assert len(rows) == 7
        assert rows[0].row == "movie000"

    def test_scan_survives_flush(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=12)
        before = [(r.row, dict(r.cells)) for r in table.scan()]
        table.flush()
        after = [(r.row, dict(r.cells)) for r in table.scan()]
        assert before == after


class TestSplits:
    def test_region_splits_under_load(self):
        hb = HBaseCluster(
            num_servers=3,
            seed=4,
            region_config=RegionConfig(
                memstore_flush_bytes=512,
                split_threshold_bytes=2048,
            ),
        )
        table = hb.create_table("big", families=["f"])
        for i in range(120):
            table.put(Put(row=f"row{i:04d}").add("f", "data", "x" * 20))
        assert hb.master.splits_performed >= 1
        regions = hb.master.regions_of("big")
        assert len(regions) >= 2
        # Ranges tile the key space: open start, open end, contiguous.
        assert regions[0].spec.start_row is None
        assert regions[-1].spec.stop_row is None
        for left, right in zip(regions, regions[1:]):
            assert left.spec.stop_row == right.spec.start_row

    def test_data_intact_across_splits(self):
        hb = HBaseCluster(
            num_servers=3,
            seed=4,
            region_config=RegionConfig(
                memstore_flush_bytes=512, split_threshold_bytes=2048
            ),
        )
        table = hb.create_table("big", families=["f"])
        for i in range(120):
            table.put(Put(row=f"row{i:04d}").add("f", "n", str(i)))
        assert table.count() == 120
        for i in (0, 59, 119):
            assert table.get(Get(row=f"row{i:04d}")).value("f", "n") == str(i)

    def test_routing_after_split(self):
        hb = HBaseCluster(
            num_servers=3,
            seed=4,
            region_config=RegionConfig(
                memstore_flush_bytes=512, split_threshold_bytes=2048
            ),
        )
        table = hb.create_table("big", families=["f"])
        for i in range(120):
            table.put(Put(row=f"row{i:04d}").add("f", "n", str(i)))
        # Every row locates to a region that actually contains it.
        for i in range(0, 120, 17):
            row = f"row{i:04d}"
            entry = hb.master.locate("big", row)
            assert entry.spec.contains(row)


class TestCrashRecovery:
    def test_flushed_data_survives_crash(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=20)
        table.flush()
        victim = hb.master.regions_of("movies")[0].server
        hb.crash_server(victim)
        hb.recover(victim)
        assert table.get(Get(row="movie010")).value("info", "title") == "Title 10"
        assert table.count() == 20

    def test_wal_replays_unflushed_edits(self):
        hb = HBaseCluster(num_servers=3, seed=4, wal_sync_every=1)
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=10)  # never flushed (big memstore default)
        victim = hb.master.regions_of("movies")[0].server
        hb.crash_server(victim)
        replayed = hb.recover(victim)
        assert replayed > 0
        assert table.count() == 10
        assert table.get(Get(row="movie007")).value("info", "title") == "Title 7"

    def test_unsynced_tail_is_lost(self):
        hb = HBaseCluster(num_servers=3, seed=4, wal_sync_every=1000)
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=5)  # all edits sit in the WAL buffer
        victim = hb.master.regions_of("movies")[0].server
        hb.crash_server(victim)
        hb.recover(victim)
        # Deferred log flush: the unsynced tail is gone, as documented.
        assert table.count() == 0

    def test_dead_server_rejects_operations(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=3)
        victim = hb.master.regions_of("movies")[0].server
        hb.crash_server(victim)
        with pytest.raises(RegionServerDownError):
            hb.servers[victim].apply_edit("x", None)

    def test_regions_move_to_live_servers(self, hb):
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=10)
        table.flush()
        victim = hb.master.regions_of("movies")[0].server
        hb.crash_server(victim)
        hb.recover(victim)
        for entry in hb.master.regions_of("movies"):
            assert entry.server != victim
            assert hb.servers[entry.server].alive

    def test_recover_live_server_rejected(self, hb):
        hb.create_table("movies", families=["info"])
        name = next(iter(hb.servers))
        with pytest.raises(ConfigError):
            hb.recover(name)


class TestHdfsIntegration:
    def test_hfiles_and_wals_visible_in_hdfs(self):
        hb = HBaseCluster(num_servers=3, seed=4, wal_sync_every=1)
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=10)
        table.flush()
        footprint = hb.hdfs_footprint()
        assert any("/hbase/movies/" in p and "hfile" in p for p in footprint)
        assert any("/.logs/" in p for p in footprint)

    def test_hfiles_replicated_by_hdfs(self):
        hb = HBaseCluster(num_servers=3, seed=4)
        table = hb.create_table("movies", families=["info"])
        load_movies(table, count=10)
        table.flush()
        namenode = hb.hdfs.namenode
        hfile_paths = [p for p in hb.hdfs_footprint() if "hfile" in p]
        assert hfile_paths
        for path in hfile_paths:
            inode = namenode.namespace.get_file(path)
            for block in inode.blocks:
                assert len(namenode.block_map[block.block_id].locations) == 2
