"""Regions: memstore/HFile merge semantics, flush, compaction, split."""

import pytest

from repro.hbase.model import TOMBSTONE, Cell
from repro.hbase.region import Region, RegionConfig, RegionSpec
from tests.conftest import make_hdfs


def make_region(**config_kwargs):
    cluster = make_hdfs(num_datanodes=2, block_size=2048, replication=1)
    client = cluster.client(charge_time=False)
    spec = RegionSpec(table="t", start_row=None, stop_row=None, region_id=1)
    config = RegionConfig(**config_kwargs)
    return Region(spec, client, config), client


class TestReadYourWrites:
    def test_memstore_read(self):
        region, _ = make_region()
        region.apply(Cell("r1", "f", "q", 1, "v1"))
        assert region.get_row("r1").value("f", "q") == "v1"

    def test_newest_version_wins(self):
        region, _ = make_region()
        region.apply(Cell("r1", "f", "q", 1, "old"))
        region.apply(Cell("r1", "f", "q", 2, "new"))
        assert region.get_row("r1").value("f", "q") == "new"

    def test_reads_merge_memstore_and_hfiles(self):
        region, _ = make_region(memstore_flush_bytes=10**9)
        region.apply(Cell("r1", "f", "q", 1, "flushed"))
        region.flush()
        region.apply(Cell("r1", "f", "other", 2, "in-memory"))
        row = region.get_row("r1")
        assert row.value("f", "q") == "flushed"
        assert row.value("f", "other") == "in-memory"

    def test_newer_hfile_version_beats_older(self):
        region, _ = make_region(
            memstore_flush_bytes=10**9, compaction_min_hfiles=99
        )
        region.apply(Cell("r1", "f", "q", 1, "v1"))
        region.flush()
        region.apply(Cell("r1", "f", "q", 5, "v5"))
        region.flush()
        assert region.get_row("r1").value("f", "q") == "v5"

    def test_tombstone_hides_value(self):
        region, _ = make_region(memstore_flush_bytes=10**9)
        region.apply(Cell("r1", "f", "q", 1, "v"))
        region.flush()
        region.apply(Cell("r1", "f", "q", 2, TOMBSTONE))
        assert region.get_row("r1").value("f", "q") is None

    def test_write_after_tombstone_resurrects(self):
        region, _ = make_region()
        region.apply(Cell("r1", "f", "q", 1, "v"))
        region.apply(Cell("r1", "f", "q", 2, TOMBSTONE))
        region.apply(Cell("r1", "f", "q", 3, "back"))
        assert region.get_row("r1").value("f", "q") == "back"


class TestFlushAndCompaction:
    def test_flush_writes_hfile_to_hdfs(self):
        region, client = make_region(memstore_flush_bytes=10**9)
        region.apply(Cell("r1", "f", "q", 1, "v"))
        hfile = region.flush()
        assert hfile is not None
        assert client.exists(hfile.path)
        assert region.memstore.empty

    def test_flush_empty_is_noop(self):
        region, _ = make_region()
        assert region.flush() is None

    def test_auto_flush_at_threshold(self):
        region, _ = make_region(memstore_flush_bytes=64)
        for i in range(20):
            region.apply(Cell(f"r{i:02d}", "f", "q", i, "value"))
        assert region.flushes >= 1
        assert region.hfiles

    def test_compaction_merges_hfiles(self):
        region, client = make_region(
            memstore_flush_bytes=10**9, compaction_min_hfiles=3
        )
        for batch in range(3):
            for i in range(4):
                region.apply(Cell(f"r{i}", "f", "q", batch * 10 + i, f"b{batch}"))
            region.flush()
        assert len(region.hfiles) == 1  # compacted
        assert region.compactions == 1
        for i in range(4):
            assert region.get_row(f"r{i}").value("f", "q") == "b2"

    def test_compaction_drops_tombstones(self):
        region, _ = make_region(
            memstore_flush_bytes=10**9, compaction_min_hfiles=99
        )
        region.apply(Cell("r1", "f", "q", 1, "v"))
        region.flush()
        region.apply(Cell("r1", "f", "q", 2, TOMBSTONE))
        region.flush()
        region.hfiles and region.compact()
        assert len(region.hfiles) == 1
        from repro.hbase.hfile import read_hfile

        cells = read_hfile(region.client, region.hfiles[0])
        assert all(not c.is_tombstone for c in cells)
        assert region.get_row("r1").value("f", "q") is None

    def test_compaction_frees_old_files(self):
        region, client = make_region(
            memstore_flush_bytes=10**9, compaction_min_hfiles=99
        )
        paths = []
        for batch in range(3):
            region.apply(Cell("r", "f", "q", batch, f"v{batch}"))
            paths.append(region.flush().path)
        region.compact()
        for path in paths:
            assert not client.exists(path)


class TestScan:
    def test_scan_row_order(self):
        region, _ = make_region()
        for row in ("c", "a", "b"):
            region.apply(Cell(row, "f", "q", 1, row.upper()))
        rows = region.scan_rows(None, None)
        assert [r.row for r in rows] == ["a", "b", "c"]

    def test_scan_range_half_open(self):
        region, _ = make_region()
        for i in range(6):
            region.apply(Cell(f"r{i}", "f", "q", 1, str(i)))
        rows = region.scan_rows("r2", "r4")
        assert [r.row for r in rows] == ["r2", "r3"]

    def test_scan_column_filter(self):
        region, _ = make_region()
        region.apply(Cell("r1", "f", "a", 1, "keep"))
        region.apply(Cell("r1", "f", "b", 1, "drop"))
        rows = region.scan_rows(None, None, columns=[("f", "a")])
        assert rows[0].cells == {("f", "a"): "keep"}


class TestSplit:
    def test_should_split_at_threshold(self):
        region, _ = make_region(
            memstore_flush_bytes=10**9, split_threshold_bytes=100
        )
        for i in range(10):
            region.apply(Cell(f"r{i}", "f", "q", 1, "x" * 10))
        assert region.should_split()

    def test_midpoint_is_median_row(self):
        region, _ = make_region()
        for i in range(10):
            region.apply(Cell(f"r{i}", "f", "q", 1, "v"))
        assert region.midpoint_row() == "r5"

    def test_no_midpoint_for_single_row(self):
        region, _ = make_region()
        region.apply(Cell("only", "f", "q", 1, "v"))
        assert region.midpoint_row() is None

    def test_spec_contains(self):
        spec = RegionSpec(table="t", start_row="m", stop_row="t", region_id=1)
        assert spec.contains("m") and spec.contains("s")
        assert not spec.contains("t") and not spec.contains("a")
