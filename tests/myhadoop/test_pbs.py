"""The PBS-like scheduler: reservations, preemption, cleanup sweeps."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.myhadoop.pbs import PbsScheduler, ReservationState
from repro.sim.engine import Simulation
from repro.util.errors import ReservationError
from repro.util.units import MINUTE


@pytest.fixture
def pbs():
    sim = Simulation()
    topo = ClusterTopology.regular(num_nodes=16, nodes_per_rack=8)
    return sim, PbsScheduler(sim, topo)


class TestReservations:
    def test_immediate_start_when_free(self, pbs):
        sim, scheduler = pbs
        reservation = scheduler.qsub("alice", 4, 3600)
        assert reservation.state == ReservationState.RUNNING
        assert len(reservation.nodes) == 4
        assert scheduler.free_nodes() == 12

    def test_queueing_when_full(self, pbs):
        sim, scheduler = pbs
        first = scheduler.qsub("alice", 12, 3600)
        second = scheduler.qsub("bob", 8, 3600)
        assert second.state == ReservationState.QUEUED
        scheduler.release(first)
        assert second.state == ReservationState.RUNNING

    def test_walltime_expiry(self, pbs):
        sim, scheduler = pbs
        reservation = scheduler.qsub("alice", 2, walltime=100.0)
        sim.run_until(150.0)
        assert reservation.state == ReservationState.EXPIRED
        assert scheduler.free_nodes() == 16

    def test_early_release_marks_completed(self, pbs):
        sim, scheduler = pbs
        reservation = scheduler.qsub("alice", 2, walltime=1000.0)
        scheduler.release(reservation)
        assert reservation.state == ReservationState.COMPLETED
        sim.run_until(2000.0)  # expiry event must not resurrect it
        assert reservation.state == ReservationState.COMPLETED

    def test_qdel_queued_and_running(self, pbs):
        sim, scheduler = pbs
        running = scheduler.qsub("a", 10, 3600)
        queued = scheduler.qsub("b", 10, 3600)
        assert scheduler.qdel(queued.job_id)
        assert queued.state == ReservationState.CANCELLED
        assert scheduler.qdel(running.job_id)
        assert running.state == ReservationState.CANCELLED
        assert not scheduler.qdel("pbs.999")

    def test_qstat_lists_everything(self, pbs):
        sim, scheduler = pbs
        scheduler.qsub("a", 10, 3600)
        scheduler.qsub("b", 10, 3600)
        states = {r.state for r in scheduler.qstat()}
        assert states == {ReservationState.RUNNING, ReservationState.QUEUED}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0, "walltime": 10},
            {"num_nodes": 99, "walltime": 10},
            {"num_nodes": 1, "walltime": 0},
        ],
    )
    def test_invalid_requests_rejected(self, pbs, kwargs):
        _, scheduler = pbs
        with pytest.raises(ReservationError):
            scheduler.qsub("x", **kwargs)

    def test_lifo_node_reuse(self, pbs):
        """Freed nodes are handed out first — the ghost-daemon vector."""
        sim, scheduler = pbs
        first = scheduler.qsub("alice", 4, 3600)
        nodes = set(first.node_names())
        scheduler.release(first)
        second = scheduler.qsub("bob", 4, 3600)
        assert set(second.node_names()) == nodes


class TestPreemption:
    def test_research_job_preempts_students(self, pbs):
        sim, scheduler = pbs
        student = scheduler.qsub("student", 12, 7200, priority=0)
        research = scheduler.qsub("research", 10, 7200, priority=10)
        assert student.state == ReservationState.PREEMPTED
        assert research.state == ReservationState.RUNNING

    def test_no_needless_preemption(self, pbs):
        sim, scheduler = pbs
        student = scheduler.qsub("student", 4, 7200, priority=0)
        research = scheduler.qsub("research", 8, 7200, priority=10)
        assert student.state == ReservationState.RUNNING
        assert research.state == ReservationState.RUNNING

    def test_equal_priority_does_not_preempt(self, pbs):
        sim, scheduler = pbs
        first = scheduler.qsub("a", 12, 7200)
        second = scheduler.qsub("b", 12, 7200)
        assert first.state == ReservationState.RUNNING
        assert second.state == ReservationState.QUEUED

    def test_release_callback_reports_reason(self, pbs):
        sim, scheduler = pbs
        reasons = []
        scheduler.qsub(
            "student",
            12,
            7200,
            on_release=lambda r, why: reasons.append(why),
        )
        scheduler.qsub("research", 10, 7200, priority=5)
        assert reasons == ["preempted"]


class TestCleanupSweep:
    def test_sweep_runs_every_15_minutes(self, pbs):
        sim, scheduler = pbs
        sim.run_until(46 * MINUTE)
        assert scheduler.cleanups_performed == 3

    def test_hooks_called_per_node(self, pbs):
        sim, scheduler = pbs
        visited = []
        scheduler.cleanup_hooks.append(visited.append)
        sim.run_until(15 * MINUTE)
        assert len(visited) == 16
