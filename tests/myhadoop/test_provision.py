"""myHadoop provisioning: config checks, ports, ghosts, teardown."""

import pytest

from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.myhadoop.pbs import PbsScheduler
from repro.myhadoop.provision import (
    DAEMON_PORTS,
    MyHadoopConfig,
    MyHadoopProvisioner,
    PortRegistry,
)
from repro.sim.engine import Simulation
from repro.util.errors import BadPathError, ConfigError, PortInUseError
from repro.util.units import MINUTE


@pytest.fixture
def env():
    sim = Simulation()
    topo = ClusterTopology.regular(num_nodes=16, nodes_per_rack=8)
    scheduler = PbsScheduler(sim, topo)
    provisioner = MyHadoopProvisioner(
        sim, scheduler, pfs=ParallelFileSystem()
    )
    return sim, scheduler, provisioner


def config_for(user, nodes=4):
    from repro.hdfs.config import HdfsConfig

    return MyHadoopConfig(
        user=user,
        num_nodes=nodes,
        hdfs=HdfsConfig(block_size=1024, replication=2),
    )


class TestConfigValidation:
    def test_defaults_are_valid(self):
        MyHadoopConfig(user="alice").validate()

    def test_wrong_hadoop_home(self):
        config = MyHadoopConfig(user="alice", hadoop_home="/opt/hadoop")
        with pytest.raises(BadPathError):
            config.validate()

    def test_data_dir_must_be_scratch(self):
        # "All Hadoop data storage must reside on the local hard drive."
        config = MyHadoopConfig(user="alice", data_dir="/home/alice/hdfs")
        with pytest.raises(BadPathError):
            config.validate()

    def test_data_dir_must_belong_to_user(self):
        config = MyHadoopConfig(user="alice", data_dir="/scratch/bob/hdfs-data")
        with pytest.raises(BadPathError):
            config.validate()

    def test_persistent_mode_needs_file_locking(self):
        config = MyHadoopConfig(user="alice", persistent=True)
        with pytest.raises(ConfigError):
            config.validate(ParallelFileSystem(supports_file_locking=False))
        # With locking support it would be allowed.
        config.validate(ParallelFileSystem(supports_file_locking=True))


class TestPortRegistry:
    def test_bind_conflict(self):
        ports = PortRegistry()
        ports.bind("n1", 9000, "alice")
        with pytest.raises(PortInUseError):
            ports.bind("n1", 9000, "bob")
        ports.bind("n2", 9000, "bob")  # other node is fine

    def test_release_only_by_owner(self):
        ports = PortRegistry()
        ports.bind("n1", 9000, "alice")
        assert not ports.release("n1", 9000, "bob")
        assert ports.release("n1", 9000, "alice")
        assert ports.owner_of("n1", 9000) is None

    def test_release_all_scoped_by_owner(self):
        ports = PortRegistry()
        ports.bind("n1", 9000, "alice")
        ports.bind("n1", 50030, "bob")
        assert ports.release_all("n1", "alice") == 1
        assert ports.bound_on("n1") == {50030: "bob"}


class TestClusterLifecycle:
    def test_start_and_run(self, env):
        sim, scheduler, provisioner = env
        reservation = scheduler.qsub("alice", 4, 3600)
        cluster = provisioner.start_cluster(reservation, config_for("alice"))
        client = cluster.mr.client()
        client.put_text("/u/f.txt", "hello world")
        assert client.read_text("/u/f.txt") == "hello world"
        provisioner.stop_cluster(cluster)

    def test_ports_bound_while_running(self, env):
        sim, scheduler, provisioner = env
        reservation = scheduler.qsub("alice", 4, 3600)
        cluster = provisioner.start_cluster(reservation, config_for("alice"))
        for node in cluster.node_names:
            assert set(provisioner.ports.bound_on(node)) == set(DAEMON_PORTS)
        provisioner.stop_cluster(cluster)
        for node in cluster.node_names:
            assert provisioner.ports.bound_on(node) == {}

    def test_stop_releases_scratch_space(self, env):
        sim, scheduler, provisioner = env
        reservation = scheduler.qsub("alice", 4, 3600)
        cluster = provisioner.start_cluster(reservation, config_for("alice"))
        cluster.mr.client().put_text("/u/f.txt", "x" * 10_000)
        nodes = [cluster.hdfs.datanodes[n].node for n in cluster.node_names]
        assert sum(n.disk.used for n in nodes) > 0
        provisioner.stop_cluster(cluster)
        assert sum(n.disk.used for n in nodes) == 0

    def test_config_user_must_match_reservation(self, env):
        sim, scheduler, provisioner = env
        reservation = scheduler.qsub("alice", 4, 3600)
        with pytest.raises(ConfigError):
            provisioner.start_cluster(reservation, config_for("bob"))

    def test_queued_reservation_rejected(self, env):
        sim, scheduler, provisioner = env
        scheduler.qsub("hog", 16, 3600)
        queued = scheduler.qsub("alice", 4, 3600)
        with pytest.raises(ConfigError):
            provisioner.start_cluster(queued, config_for("alice"))


class TestGhostDaemons:
    def test_abandoned_cluster_blocks_next_user(self, env):
        sim, scheduler, provisioner = env
        r1 = scheduler.qsub("bob", 4, 3600)
        cluster = provisioner.start_cluster(r1, config_for("bob"))
        provisioner.abandon_cluster(cluster)
        scheduler.release(r1)
        r2 = scheduler.qsub("carol", 4, 3600)
        assert set(r2.node_names()) == set(cluster.node_names)  # LIFO reuse
        with pytest.raises(PortInUseError):
            provisioner.start_cluster(r2, config_for("carol"))
        assert provisioner.ghost_daemon_conflicts == 1

    def test_cleanup_sweep_scrubs_ghosts(self, env):
        sim, scheduler, provisioner = env
        r1 = scheduler.qsub("bob", 4, 3600)
        cluster = provisioner.start_cluster(r1, config_for("bob"))
        provisioner.abandon_cluster(cluster)
        scheduler.release(r1)
        r2 = scheduler.qsub("carol", 4, 3600)
        sim.run_for(16 * MINUTE)  # the paper's worst-case wait
        started = provisioner.start_cluster(r2, config_for("carol"))
        assert started.node_names == r2.node_names()[: 4]

    def test_same_user_can_kill_own_ghosts(self, env):
        sim, scheduler, provisioner = env
        r1 = scheduler.qsub("bob", 4, 3600)
        cluster = provisioner.start_cluster(r1, config_for("bob"))
        provisioner.abandon_cluster(cluster)
        scheduler.release(r1)
        r2 = scheduler.qsub("bob", 4, 3600)
        with pytest.raises(PortInUseError):
            provisioner.start_cluster(r2, config_for("bob"))
        assert provisioner.kill_user_daemons("bob", r2.node_names()) > 0
        restarted = provisioner.start_cluster(r2, config_for("bob"))
        assert not restarted.stopped

    def test_failed_start_leaves_no_partial_binds(self, env):
        sim, scheduler, provisioner = env
        r1 = scheduler.qsub("bob", 2, 3600)
        cluster = provisioner.start_cluster(r1, config_for("bob", nodes=2))
        provisioner.abandon_cluster(cluster)
        scheduler.release(r1)
        r2 = scheduler.qsub("carol", 4, 3600)
        with pytest.raises(PortInUseError):
            provisioner.start_cluster(r2, config_for("carol"))
        # Carol holds no ports anywhere after the failure.
        for node_name in r2.node_names():
            assert "carol" not in provisioner.ports.bound_on(node_name).values()

    def test_active_cluster_not_scrubbed_by_sweep(self, env):
        sim, scheduler, provisioner = env
        reservation = scheduler.qsub("alice", 4, 7200)
        cluster = provisioner.start_cluster(reservation, config_for("alice"))
        cluster.mr.client().put_text("/f", "keep me")
        sim.run_for(31 * MINUTE)  # two sweeps
        assert cluster.mr.client().read_text("/f") == "keep me"
