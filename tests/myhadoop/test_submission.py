"""The batch submission workflow (Section III.D's script)."""

import pytest

from repro.cluster.storage import ParallelFileSystem
from repro.cluster.topology import ClusterTopology
from repro.hdfs.config import HdfsConfig
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.config import JobConf
from repro.mapreduce.streaming import streaming_job
from repro.myhadoop.pbs import PbsScheduler
from repro.myhadoop.provision import MyHadoopConfig, MyHadoopProvisioner
from repro.myhadoop.submission import BatchSubmission
from repro.sim.engine import Simulation


@pytest.fixture
def env():
    sim = Simulation()
    topo = ClusterTopology.regular(num_nodes=16, nodes_per_rack=8)
    scheduler = PbsScheduler(sim, topo)
    provisioner = MyHadoopProvisioner(sim, scheduler, pfs=ParallelFileSystem())
    home = LinuxFileSystem()
    home.write_file("/home/alice/input.txt", "to be or not to be\n" * 20)
    config = MyHadoopConfig(
        user="alice",
        num_nodes=4,
        hdfs=HdfsConfig(block_size=1024, replication=2),
    )
    return sim, scheduler, provisioner, home, config


def make_submission(env, **kwargs):
    sim, scheduler, provisioner, home, config = env
    submission = BatchSubmission(
        scheduler, provisioner, config, home, **kwargs
    )
    submission.add_stage_in("/home/alice/input.txt", "/user/alice/in.txt")
    submission.add_job(
        WordCountWithCombinerJob(),
        "/user/alice/in.txt",
        "/user/alice/out",
        export_local="/home/alice/results.txt",
    )
    return submission


class TestHappyPath:
    def test_full_workflow(self, env):
        sim, scheduler, provisioner, home, config = env
        result = make_submission(env).run()
        assert result.succeeded, result.render_log()
        # The exported answer landed back in the home directory.
        exported = dict(
            line.split("\t")
            for line in home.read_text("/home/alice/results.txt").splitlines()
        )
        assert exported["be"] == "40"
        # The script stopped the cluster: no ghosts anywhere.
        assert provisioner.ghost_daemon_conflicts == 0
        assert scheduler.free_nodes() == 16

    def test_step_log_records_all_commands(self, env):
        result = make_submission(env).run()
        names = [step.name for step in result.steps]
        assert any("start-all.sh" in n for n in names)
        assert any("-put" in n for n in names)
        assert any("fsck" in n for n in names)
        assert any("hadoop jar" in n for n in names)
        assert any("-copyToLocal" in n for n in names)
        assert any("stop-all.sh" in n for n in names)
        assert all(step.ok for step in result.steps)

    def test_job_report_captured(self, env):
        result = make_submission(env).run()
        assert len(result.job_reports) == 1
        assert result.job_reports[0].succeeded

    def test_sleep_turns_batch_interactive(self, env):
        sim = env[0]
        submission = make_submission(env)
        submission.sleep_seconds = 600.0
        t0 = sim.now
        result = submission.run()
        assert result.succeeded
        assert sim.now - t0 >= 600.0
        assert any("sleep" in step.name for step in result.steps)


class TestFailurePaths:
    def test_bad_config_recorded_not_raised(self, env):
        sim, scheduler, provisioner, home, _ = env
        bad_config = MyHadoopConfig(
            user="alice", num_nodes=4, data_dir="/home/alice/hdfs"
        )
        submission = BatchSubmission(scheduler, provisioner, bad_config, home)
        result = submission.run()
        assert not result.succeeded
        assert "scratch" in (result.failure or "")

    def test_failing_job_recorded(self, env):
        sim, scheduler, provisioner, home, config = env
        submission = BatchSubmission(scheduler, provisioner, config, home)
        submission.add_stage_in("/home/alice/input.txt", "/user/alice/in.txt")

        def bad_map(key, value):
            raise ValueError("boom")

        submission.add_job(
            streaming_job(
                "bad",
                bad_map,
                lambda k, vs: [],
                conf=JobConf(name="bad", max_attempts=2),
            ),
            "/user/alice/in.txt",
            "/user/alice/out",
        )
        result = submission.run()
        assert not result.succeeded
        assert result.job_reports and not result.job_reports[0].succeeded
        # Cluster still stopped cleanly in the finally block.
        assert scheduler.free_nodes() == 16

    def test_forgetting_stop_leaves_ghosts(self, env):
        sim, scheduler, provisioner, home, config = env
        submission = make_submission(env)
        submission.stop_cluster_at_end = False
        result = submission.run()
        assert result.succeeded
        # Daemon ports are still bound somewhere on the machine.
        bound = sum(
            len(provisioner.ports.bound_on(f"node{i}")) for i in range(16)
        )
        assert bound > 0

    def test_render_log_readable(self, env):
        result = make_submission(env).run()
        log = result.render_log()
        assert "PBS output for alice" in log
        assert "succeeded" in log
