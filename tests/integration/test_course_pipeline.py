"""End-to-end integration: the course's full data -> answer pipelines."""

import pytest

from repro.datasets.airline import generate_airline
from repro.datasets.movielens import generate_movielens
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.airline_delay import AirlineDelayCombinerJob
from repro.jobs.movie_genres import GenreStatsJob
from repro.mapreduce.local_runner import LocalJobRunner
from tests.conftest import make_mr


class TestSerialVsClusterEquivalence:
    """Assignment 2, part 1: 'takes the jar files from the first
    assignment and reruns them on the data on HDFS' — identical answers."""

    def test_genre_stats_identical(self):
        data = generate_movielens(seed=31, num_ratings=1200, num_movies=50)

        localfs = LinuxFileSystem()
        localfs.write_file("/ratings.dat", data.ratings_text)
        localfs.write_file("/movies.dat", data.movies_text)
        serial = LocalJobRunner(localfs=localfs, split_size=8192).run(
            GenreStatsJob(movies_path="/movies.dat"),
            "/ratings.dat",
            "/out",
        )

        mr = make_mr(num_workers=4, block_size=8192)
        client = mr.client()
        client.put_text("/data/ratings.dat", data.ratings_text)
        client.put_text("/data/movies.dat", data.movies_text)
        mr.run_job(
            GenreStatsJob(movies_path="/data/movies.dat"),
            "/data/ratings.dat",
            "/hdfs-out",
            require_success=True,
        )
        assert sorted(serial.pairs) == sorted(mr.read_output("/hdfs-out"))

    def test_airline_identical_across_reduce_counts(self):
        data = generate_airline(seed=32, num_rows=1500)
        from repro.mapreduce.config import JobConf

        mr = make_mr(num_workers=4, block_size=8192)
        mr.client().put_text("/air.csv", data.csv_text)
        results = []
        for reduces in (1, 3):
            job = AirlineDelayCombinerJob(
                conf=JobConf(name=f"air-{reduces}", num_reduces=reduces)
            )
            mr.run_job(job, "/air.csv", f"/out{reduces}", require_success=True)
            results.append(
                {k: round(float(v), 9) for k, v in mr.read_output(f"/out{reduces}")}
            )
        assert results[0] == results[1]


class TestChainedJobsOverHdfs:
    """Job 2 consumes job 1's HDFS output (the top-word pattern)."""

    def test_output_of_one_is_input_of_next(self):
        mr = make_mr(num_workers=4)
        mr.client().put_text("/in.txt", "b a b c b a\n" * 30)
        from repro.mapreduce.streaming import streaming_job

        wc = streaming_job(
            "wc",
            lambda k, v: ((w, 1) for w in v.split()),
            lambda k, vs: [(k, sum(vs))],
        )
        mr.run_job(wc, "/in.txt", "/counts", require_success=True)

        from repro.mapreduce.inputformat import KeyValueTextInputFormat
        from repro.mapreduce.api import Job, Mapper, Reducer
        from repro.mapreduce.types import IntWritable, Text

        class SwapMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.write(Text("total"), IntWritable(int(value.value)))

        class SumReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.write(key, IntWritable(sum(v.value for v in values)))

        class TotalJob(Job):
            mapper = SwapMapper
            reducer = SumReducer
            input_format = KeyValueTextInputFormat

        mr.run_job(TotalJob(), "/counts", "/total", require_success=True)
        assert mr.output_dict("/total") == {"total": "180"}


class TestWholeClusterLifecycle:
    """Load data, run a job, lose a node, rerun, restart, rerun again."""

    def test_survives_the_semester(self):
        mr = make_mr(num_workers=4, block_size=2048)
        from repro.mapreduce.streaming import streaming_job

        def wc():
            return streaming_job(
                "wc",
                lambda k, v: ((w, 1) for w in v.split()),
                lambda k, vs: [(k, sum(vs))],
            )

        client = mr.client()
        client.put_text("/data/in.txt", "ha doop " * 500)

        first = mr.run_job(wc(), "/data/in.txt", "/o1", require_success=True)
        assert mr.output_dict("/o1") == {"ha": "500", "doop": "500"}

        # A worker dies; the data survives via replication.
        mr.crash_worker("node2")
        mr.hdfs.sim.run_for(mr.hdfs.config.dead_node_timeout + 30)
        second = mr.run_job(wc(), "/data/in.txt", "/o2", require_success=True)
        assert mr.output_dict("/o2") == mr.output_dict("/o1")

        # Full cluster restart (the instructors' hammer), then rerun.
        for tracker in mr.tasktrackers.values():
            if tracker.is_serving:
                tracker.stop()
        scan = mr.hdfs.restart_cluster()
        mr.hdfs.wait_until(
            lambda: not mr.hdfs.namenode.safemode.active, timeout=7200
        )
        for tracker in mr.tasktrackers.values():
            tracker.start(mr.jobtracker)
        third = mr.run_job(wc(), "/data/in.txt", "/o3", require_success=True)
        assert mr.output_dict("/o3") == mr.output_dict("/o1")
