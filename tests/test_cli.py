"""The ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table IV" in out

    def test_curriculum(self, capsys):
        assert main(["curriculum"]) == 0
        assert "all artifacts resolve" in capsys.readouterr().out

    def test_syllabus(self, capsys):
        assert main(["syllabus"]) == 0
        out = capsys.readouterr().out
        assert "Fall 2012" in out and "Data sources" in out

    def test_handout_render_only(self, capsys):
        assert main(["handout"]) == 0
        out = capsys.readouterr().out
        assert "myhadoop-configure" in out
        assert "replaying" not in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "blk_" in capsys.readouterr().out

    def test_chaos_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "kill_datanode" in out and "lost_map_output" in out
        # Omitting the scenario also lists rather than erroring.
        assert main(["chaos"]) == 0

    def test_chaos_drill_runs_and_heals(self, capsys):
        assert main(["chaos", "kill_datanode", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FaultPlan(seed=3)" in out
        assert "injected faults:" in out
        assert "verdict: HEALED" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
