"""The ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table IV" in out

    def test_curriculum(self, capsys):
        assert main(["curriculum"]) == 0
        assert "all artifacts resolve" in capsys.readouterr().out

    def test_syllabus(self, capsys):
        assert main(["syllabus"]) == 0
        out = capsys.readouterr().out
        assert "Fall 2012" in out and "Data sources" in out

    def test_handout_render_only(self, capsys):
        assert main(["handout"]) == 0
        out = capsys.readouterr().out
        assert "myhadoop-configure" in out
        assert "replaying" not in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "blk_" in capsys.readouterr().out

    def test_chaos_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "kill_datanode" in out and "lost_map_output" in out
        # Omitting the scenario also lists rather than erroring.
        assert main(["chaos"]) == 0

    def test_chaos_drill_runs_and_heals(self, capsys):
        assert main(["chaos", "kill_datanode", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FaultPlan(seed=3)" in out
        assert "injected faults:" in out
        assert "verdict: HEALED" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


from pathlib import Path

FIXTURES = str(Path(__file__).parent / "analysis" / "fixtures")


class TestExitCodes:
    """The CLI contract: 0 clean/healed, 1 findings/failed drill, 2 usage."""

    def test_lint_without_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_lint_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "/no/such/path.py"]) == 2
        assert "lint:" in capsys.readouterr().err

    def test_lint_buggy_fixture_exits_one(self, capsys):
        path = f"{FIXTURES}/buggy_mrj001_random.py"
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "MRJ001" in out

    def test_lint_clean_file_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "clean_job.py"
        clean.write_text("def helper(x):\n    return x + 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_self_and_jobs_are_clean(self, capsys):
        assert main(["lint", "--self", "--jobs"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_output_parses(self, capsys):
        import json

        path = f"{FIXTURES}/buggy_mrj007_avg_combiner.py"
        assert main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] == 1
        assert payload["findings"][0]["rule"] == "MRJ007"

    def test_lint_engine_family_on_path(self, capsys, tmp_path):
        snippet = tmp_path / "engine_snippet.py"
        snippet.write_text(
            "def f(live: set):\n    return next(iter(live))\n"
        )
        assert main(["lint", str(snippet), "--family", "engine"]) == 1
        assert "MRE101" in capsys.readouterr().out

    def test_chaos_unknown_scenario_is_usage_error(self, capsys):
        assert main(["chaos", "no_such_drill"]) == 2
        err = capsys.readouterr().err
        assert "unknown chaos scenario" in err
        assert "Traceback" not in err


class TestLintFormatsAndBaseline:
    """mrlint 2.0 plumbing: --format sarif, --baseline, new families."""

    def test_sarif_output_parses(self, capsys):
        import json

        path = f"{FIXTURES}/buggy_mrj001_random.py"
        assert main(["lint", path, "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "MRJ001"

    def test_sparklite_family_on_path(self, capsys):
        path = f"{FIXTURES}/buggy_mrs204_mean_reduce.py"
        assert main(["lint", path, "--family", "sparklite"]) == 1
        assert "MRS204" in capsys.readouterr().out

    def test_hive_family_on_path(self, capsys):
        path = f"{FIXTURES}/buggy_mrh303_tainted_query.py"
        assert main(["lint", path, "--family", "hive"]) == 1
        assert "MRH303" in capsys.readouterr().out

    def test_pipelines_target_is_clean(self, capsys):
        assert main(["lint", "--pipelines"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_write_baseline_then_filter(self, capsys, tmp_path):
        path = f"{FIXTURES}/buggy_mrj001_random.py"
        baseline = tmp_path / "baseline.json"
        # Recording exits 0 even though there are findings.
        assert main(["lint", path, "--write-baseline", str(baseline)]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        # Re-linting against the baseline reports nothing new.
        assert main(["lint", path, "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out
        # A different buggy file still fails against that baseline.
        other = f"{FIXTURES}/buggy_mrj007_avg_combiner.py"
        assert main(["lint", other, "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_usage_error(self, capsys):
        path = f"{FIXTURES}/buggy_mrj001_random.py"
        assert main(["lint", path, "--baseline", "/no/such/base.json"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_chaos_failed_drill_exits_one(self, capsys, monkeypatch):
        import repro.faults as faults_mod

        real = faults_mod.run_scenario

        def sabotaged(name, **kwargs):
            result = real(name, **kwargs)
            result.check("planted failure", False, "sabotaged by the test")
            return result

        monkeypatch.setattr(faults_mod, "run_scenario", sabotaged)
        assert main(["chaos", "kill_datanode"]) == 1
        assert "verdict: FAILED" in capsys.readouterr().out

    def test_chaos_sanitize_flag_healed(self, capsys):
        assert main(["chaos", "kill_datanode", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "verdict: HEALED" in out
        assert "sanitizer" in out


class TestDfsAdminCli:
    def test_save_namespace_and_metasave(self, capsys):
        assert main(["dfsadmin", "-saveNamespace", "-metasave"]) == 0
        out = capsys.readouterr().out
        assert "Save namespace successful" in out
        assert "Journal:" in out and "1 checkpoints" in out

    def test_requires_an_action(self, capsys):
        assert main(["dfsadmin"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_no_journal_cannot_checkpoint(self, capsys):
        assert main(["dfsadmin", "--no-journal", "-saveNamespace"]) == 2
        err = capsys.readouterr().err
        assert "journaling is disabled" in err
        assert "Traceback" not in err

    def test_no_journal_metasave_still_renders(self, capsys):
        assert main(["dfsadmin", "--no-journal", "-metasave"]) == 0
        assert "Journal: disabled" in capsys.readouterr().out

    def test_chaos_list_mentions_durability_drills(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "namenode_crash_recovery" in out
        assert "checkpoint_roll" in out
