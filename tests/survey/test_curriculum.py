"""Table V: curriculum mapping, and that it points at living code."""

from repro.survey.curriculum import (
    TABLE5_OUTCOMES,
    curriculum_table,
    resolve_artifact,
    validate_coverage,
)


class TestTable5:
    def test_six_outcomes_as_in_paper(self):
        assert len(TABLE5_OUTCOMES) == 6

    def test_levels_match_paper(self):
        levels = [o.level for o in TABLE5_OUTCOMES]
        assert levels.count("Familiarity") == 3
        assert levels.count("Usage") == 2
        assert levels.count("Assessment") == 1

    def test_knowledge_areas(self):
        areas = {o.knowledge_area for o in TABLE5_OUTCOMES}
        assert areas == {
            "Parallel & Distributed Computing",
            "Information Management",
        }

    def test_every_artifact_resolves(self):
        assert validate_coverage() == []

    def test_resolve_artifact_returns_object(self):
        artifact = resolve_artifact("repro.mapreduce.api:Job")
        from repro.mapreduce.api import Job

        assert artifact is Job

    def test_table_renders_with_artifacts(self):
        text = curriculum_table(include_artifacts=True).render()
        assert "Table V" in text
        assert "repro.hdfs.placement:ReplicaPlacementPolicy" in text

    def test_table_without_artifacts(self):
        text = curriculum_table(include_artifacts=False).render()
        assert "repro." not in text
