"""Survey synthesis and table regeneration (Tables I-IV)."""

import pytest

from repro.survey.dataset import (
    REPORTED,
    RESPONSES,
    fit_integer_sample,
    synthesize_responses,
)
from repro.survey.likert import (
    PROFICIENCY_SCALE,
    TIME_SCALE,
    USEFULNESS_SCALE,
)
from repro.survey.models import PROFICIENCY_TOPICS, SurveyResponse
from repro.survey.stats import (
    improvement_per_topic,
    mean_std_of,
    summarize_responses,
)
from repro.survey.tables import (
    table1_proficiency,
    table2_time,
    table3_helpfulness,
    table4_level,
)
from repro.util.rng import RngStream

#: Tables print 1-2 decimals; matching within 0.05 is exact-at-print.
TOLERANCE = 0.05


@pytest.fixture(scope="module")
def responses():
    return synthesize_responses(seed=2013)


class TestScales:
    def test_proficiency_bounds(self):
        assert PROFICIENCY_SCALE.validate(0) == 0
        assert PROFICIENCY_SCALE.validate(10) == 10
        with pytest.raises(ValueError):
            PROFICIENCY_SCALE.validate(11)

    def test_band_labels(self):
        assert TIME_SCALE.labels[0] == "less than 30 minutes"
        assert USEFULNESS_SCALE.labels[-1] == "very useful"

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            TIME_SCALE.validate(2.5)


class TestFitIntegerSample:
    def test_matches_targets(self):
        rng = RngStream(1).child("fit")
        values = fit_integer_sample(29, 6.6, 1.2, PROFICIENCY_SCALE, rng)
        mean, std = mean_std_of(values)
        assert abs(mean - 6.6) < TOLERANCE
        assert abs(std - 1.2) < TOLERANCE

    def test_respects_scale_bounds(self):
        rng = RngStream(2).child("fit")
        values = fit_integer_sample(29, 3.9, 0.3, TIME_SCALE, rng)
        assert all(1 <= v <= 4 for v in values)

    def test_near_constant_target(self):
        # Hadoop-before: 0.03 +/- 0.2 - one brave self-rater among zeros.
        rng = RngStream(3).child("fit")
        values = fit_integer_sample(29, 0.03, 0.2, PROFICIENCY_SCALE, rng)
        assert sum(values) <= 2
        mean, std = mean_std_of(values)
        assert abs(mean - 0.03) < TOLERANCE

    def test_deterministic(self):
        a = fit_integer_sample(
            29, 3.1, 0.9, TIME_SCALE, RngStream(4).child("x")
        )
        b = fit_integer_sample(
            29, 3.1, 0.9, TIME_SCALE, RngStream(4).child("x")
        )
        assert a == b


class TestSynthesizedResponses:
    def test_count(self, responses):
        assert len(responses) == RESPONSES == 29

    def test_all_validate(self, responses):
        for response in responses:
            assert response.validate() is response

    def test_every_reported_stat_reproduced(self, responses):
        summary = summarize_responses(responses)
        for section in ("proficiency_before", "proficiency_after",
                        "time_taken", "usefulness"):
            for item, reported in REPORTED[section].items():
                mean, std = summary[section][item]
                assert abs(mean - reported.mean) < TOLERANCE, (section, item)
                assert abs(std - reported.std) < TOLERANCE, (section, item)

    def test_year_counts_exact(self, responses):
        summary = summarize_responses(responses)
        assert summary["year_level_counts"] == REPORTED["year_level_counts"]

    def test_students_mostly_improve(self, responses):
        gains = improvement_per_topic(responses)
        assert all(gain > 0 for gain in gains.values())
        # Hadoop gains the most (from ~zero to 4.5).
        assert gains["Hadoop MapReduce"] == max(gains.values())

    def test_rank_pairing_limits_regressions(self, responses):
        regressions = sum(
            1
            for r in responses
            for t in PROFICIENCY_TOPICS
            if r.proficiency_after[t] < r.proficiency_before[t]
        )
        # Rank pairing keeps declines rare (they can only come from
        # marginal-distribution overlap, not pairing).
        assert regressions <= len(responses)


class TestTables:
    def test_table1(self, responses):
        table, deviations = table1_proficiency(responses)
        assert max(deviations.values()) < TOLERANCE
        rendered = table.render()
        assert "Hadoop MapReduce" in rendered
        assert "Table I" in rendered

    def test_table2(self, responses):
        table, deviations = table2_time(responses)
        assert max(deviations.values()) < TOLERANCE
        assert "Set up Hadoop cluster" in table.render()

    def test_table3(self, responses):
        table, deviations = table3_helpfulness(responses)
        assert max(deviations.values()) < TOLERANCE
        assert "In-class lab" in table.render()

    def test_labs_beat_lectures(self, responses):
        # "The students favored the in-class labs over the lectures."
        summary = summarize_responses(responses)
        assert (
            summary["usefulness"]["In-class lab"][0]
            > summary["usefulness"]["Lecture"][0]
        )

    def test_table4_exact(self, responses):
        table, deviations = table4_level(responses)
        assert max(deviations.values()) == 0
        assert "Junior" in table.render()

    def test_quarter_said_sophomore_or_lower(self, responses):
        # ">25% of the responses still thought that this module could be
        # taught at sophomore or freshman level."
        summary = summarize_responses(responses)
        counts = summary["year_level_counts"]
        low = counts.get("Sophomore", 0) + counts.get("Freshman", 0)
        assert low / len(responses) > 0.25


class TestMeanStd:
    def test_matches_numpy_sample_std(self):
        mean, std = mean_std_of([1, 2, 3, 4])
        assert mean == 2.5
        assert std == pytest.approx(1.2909944, rel=1e-6)

    def test_degenerate_cases(self):
        assert mean_std_of([]) == (0.0, 0.0)
        assert mean_std_of([5]) == (5.0, 0.0)
