"""DFSClient write/read paths: splitting, locality, failover, staging."""

import pytest

from repro.hdfs.localfs import LinuxFileSystem
from repro.util.errors import (
    FileAlreadyExists,
    FileNotFoundInHdfs,
    HdfsError,
    OutputExistsError,
    ReplicationError,
)
from tests.conftest import make_hdfs


class TestWritePath:
    def test_block_splitting(self):
        cluster = make_hdfs(block_size=1000)
        client = cluster.client()
        result = client.put_bytes("/f", b"a" * 2500)
        assert result.blocks == 3
        inode = cluster.namenode.namespace.get_file("/f")
        assert [b.length for b in inode.blocks] == [1000, 1000, 500]

    def test_replication_factor_honored(self):
        cluster = make_hdfs(replication=3, num_datanodes=4)
        client = cluster.client()
        result = client.put_bytes("/f", b"b" * 500)
        for locations in result.locations.values():
            assert len(locations) == 3

    def test_exact_block_multiple(self):
        cluster = make_hdfs(block_size=1000)
        client = cluster.client()
        result = client.put_bytes("/f", b"c" * 2000)
        assert result.blocks == 2

    def test_empty_file(self):
        cluster = make_hdfs()
        client = cluster.client()
        result = client.put_bytes("/empty", b"")
        assert result.blocks == 0
        assert client.read_bytes("/empty").data == b""

    def test_overwrite_flag(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/f", b"one")
        with pytest.raises(FileAlreadyExists):
            client.put_bytes("/f", b"two")
        client.put_bytes("/f", b"two", overwrite=True)
        assert client.read_bytes("/f").data == b"two"

    def test_writer_local_first_replica(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client(node="node2")
        result = client.put_bytes("/f", b"d" * 800)
        for locations in result.locations.values():
            assert locations[0] == "node2"

    def test_too_much_replication_fails_cleanly(self):
        cluster = make_hdfs(num_datanodes=2, replication=2)
        client = cluster.client()
        # min_replicas=1 so 2 replicas on 2 nodes works even if one dies.
        cluster.stop_datanode("node0")
        cluster.stop_datanode("node1")
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        with pytest.raises(ReplicationError):
            client.put_bytes("/f", b"e" * 100)

    def test_write_time_charged_to_clock(self):
        cluster = make_hdfs()
        t0 = cluster.sim.now
        cluster.client().put_bytes("/f", b"f" * 100_000)
        assert cluster.sim.now > t0


class TestReadPath:
    def test_round_trip_multi_block(self):
        cluster = make_hdfs(block_size=700)
        client = cluster.client()
        payload = bytes(range(256)) * 20
        client.put_bytes("/bin", payload)
        assert client.read_bytes("/bin").data == payload

    def test_reads_prefer_local_replica(self):
        cluster = make_hdfs(replication=3, num_datanodes=4)
        client = cluster.client(node="node1")
        client.put_bytes("/f", b"g" * 4000)
        result = client.read_bytes("/f")
        assert result.node_local_blocks == result.blocks

    def test_corrupt_replica_failover_and_report(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client()
        client.put_bytes("/f", b"h" * 1000)
        block_id = next(iter(cluster.namenode.block_map))
        meta = cluster.namenode.block_map[block_id]
        first = sorted(meta.locations)[0]
        cluster.datanode(first).corrupt_block(block_id)
        result = cluster.client(node=first).read_bytes("/f")
        assert result.data == b"h" * 1000
        assert result.corrupt_replicas_hit == 1
        assert first in cluster.namenode.block_map[block_id].corrupt_on

    def test_all_replicas_corrupt_raises(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client()
        client.put_bytes("/f", b"i" * 500)
        block_id = next(iter(cluster.namenode.block_map))
        meta = cluster.namenode.block_map[block_id]
        for name in list(meta.locations):
            cluster.datanode(name).corrupt_block(block_id)
        with pytest.raises(HdfsError):
            client.read_bytes("/f")

    def test_read_with_down_replica_fails_over(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client()
        client.put_bytes("/f", b"j" * 1500)
        block_id = next(iter(cluster.namenode.block_map))
        holder = sorted(cluster.namenode.block_map[block_id].locations)[0]
        cluster.datanode(holder).stop()  # not yet marked dead at the NN
        assert client.read_bytes("/f").data == b"j" * 1500

    def test_read_missing_file(self):
        cluster = make_hdfs()
        with pytest.raises(FileNotFoundInHdfs):
            cluster.client().read_bytes("/ghost")


class TestStaging:
    def test_copy_from_and_to_local(self):
        cluster = make_hdfs()
        client = cluster.client()
        localfs = LinuxFileSystem()
        localfs.write_file("/home/u/in.txt", "payload")
        client.copy_from_local(localfs, "/home/u/in.txt", "/data/in.txt")
        client.copy_to_local(localfs, "/data/in.txt", "/home/u/back.txt")
        assert localfs.read_text("/home/u/back.txt") == "payload"


class TestNamespacePassthroughs:
    def test_mkdirs_exists_delete(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/x/y")
        assert client.exists("/x/y")
        client.delete("/x", recursive=True)
        assert not client.exists("/x")

    def test_delete_frees_datanode_space(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client()
        client.put_bytes("/big", b"k" * 10_000)
        used_before = cluster.total_stored_bytes()
        assert used_before >= 20_000
        client.delete("/big")
        # Invalidations ride heartbeat responses: give them a few beats.
        cluster.sim.run_for(cluster.config.heartbeat_interval * 4)
        assert cluster.total_stored_bytes() == 0

    def test_setrep_triggers_rereplication(self):
        cluster = make_hdfs(replication=1, num_datanodes=4)
        client = cluster.client()
        client.put_bytes("/f", b"l" * 900)
        client.set_replication("/f", 3)
        from repro.hdfs.replication import wait_for_full_replication

        assert wait_for_full_replication(
            cluster.sim, cluster.namenode, timeout=600
        )
        for meta in cluster.namenode.block_map.values():
            assert len(meta.locations) == 3

    def test_du(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/d/a", b"m" * 100)
        client.put_bytes("/d/b", b"m" * 50)
        assert client.du("/d") == 150
