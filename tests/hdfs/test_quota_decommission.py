"""Quotas and DataNode decommissioning."""

import pytest

from repro.util.errors import QuotaExceededError
from tests.conftest import make_hdfs


class TestNamespaceQuota:
    def test_file_count_capped(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", namespace_quota=2)
        client.put_bytes("/q/a", b"1")
        client.put_bytes("/q/b", b"2")
        with pytest.raises(QuotaExceededError):
            client.put_bytes("/q/c", b"3")

    def test_subdirectories_count(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", namespace_quota=2)
        client.mkdirs("/q/sub")
        client.put_bytes("/q/sub/f", b"1")
        with pytest.raises(QuotaExceededError):
            client.mkdirs("/q/other")

    def test_outside_quota_dir_unaffected(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", namespace_quota=1)
        for i in range(5):
            client.put_bytes(f"/free/f{i}", b"x")

    def test_delete_frees_namespace_quota(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", namespace_quota=1)
        client.put_bytes("/q/a", b"1")
        client.delete("/q/a")
        client.put_bytes("/q/b", b"2")  # slot freed

    def test_clear_quota(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", namespace_quota=1)
        client.put_bytes("/q/a", b"1")
        cluster.namenode.set_quota("/q")  # clear
        client.put_bytes("/q/b", b"2")

    def test_quota_on_missing_dir_rejected(self):
        cluster = make_hdfs()
        from repro.util.errors import FileNotFoundInHdfs

        with pytest.raises(FileNotFoundInHdfs):
            cluster.namenode.set_quota("/ghost", namespace_quota=1)


class TestSpaceQuota:
    def test_space_counts_replication(self):
        cluster = make_hdfs(replication=2, block_size=1024)
        client = cluster.client()
        client.mkdirs("/q")
        # 3 KB of quota = 1.5 KB of data at replication 2.
        cluster.namenode.set_quota("/q", space_quota=3 * 1024)
        client.put_bytes("/q/a", b"x" * 1024)  # uses 2048 of 3072
        with pytest.raises(QuotaExceededError):
            client.put_bytes("/q/b", b"x" * 1024)  # would need 2048 more

    def test_partial_write_rolls_back_cleanly(self):
        cluster = make_hdfs(replication=1, block_size=1024)
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", space_quota=1536)
        # Second block of this 2-block write violates the quota.
        with pytest.raises(QuotaExceededError):
            client.put_bytes("/q/big", b"x" * 2048)

    def test_setrep_checks_space_quota(self):
        cluster = make_hdfs(replication=1, block_size=1024, num_datanodes=4)
        client = cluster.client()
        client.mkdirs("/q")
        cluster.namenode.set_quota("/q", space_quota=1024)
        client.put_bytes("/q/f", b"x" * 1024)
        with pytest.raises(QuotaExceededError):
            client.set_replication("/q/f", 3)

    def test_dfsadmin_wrappers(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.mkdirs("/q")
        admin = cluster.dfsadmin()
        assert "Set quota" in admin.set_quota("/q", namespace_quota=5)
        assert "Cleared" in admin.set_quota("/q")


class TestDecommission:
    def _loaded_cluster(self):
        cluster = make_hdfs(num_datanodes=4, replication=2, block_size=1024)
        cluster.client().put_bytes("/data/f", b"d" * 8192)
        return cluster

    def test_drain_copies_blocks_away(self):
        cluster = self._loaded_cluster()
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        cluster.namenode.start_decommission(victim)
        cluster.wait_until(
            lambda: cluster.namenode.decommission_complete(victim),
            timeout=1200,
        )
        assert cluster.namenode.decommission_complete(victim)
        # Every block the victim held is now safe without it.
        for meta in cluster.namenode.block_map.values():
            others = [
                d
                for d in meta.locations
                if d != victim and cluster.namenode._is_live(d)
            ]
            assert len(others) >= meta.expected_replication

    def test_no_new_replicas_on_decommissioning_node(self):
        cluster = self._loaded_cluster()
        victim = "node0"
        cluster.namenode.start_decommission(victim)
        cluster.client().put_bytes("/data/new", b"n" * 4096)
        for meta in cluster.namenode.block_map.values():
            if meta.file_path == "/data/new":
                assert victim not in meta.locations

    def test_reads_work_during_drain(self):
        cluster = self._loaded_cluster()
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        cluster.namenode.start_decommission(victim)
        assert cluster.client().read_bytes("/data/f").data == b"d" * 8192

    def test_safe_shutdown_after_drain_loses_nothing(self):
        cluster = self._loaded_cluster()
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        cluster.namenode.start_decommission(victim)
        cluster.wait_until(
            lambda: cluster.namenode.decommission_complete(victim),
            timeout=1200,
        )
        cluster.stop_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert cluster.namenode.missing_blocks() == []
        assert cluster.client().read_bytes("/data/f").data == b"d" * 8192

    def test_stop_decommission_reverts(self):
        cluster = self._loaded_cluster()
        cluster.namenode.start_decommission("node0")
        cluster.namenode.stop_decommission("node0")
        assert "node0" not in cluster.namenode.decommissioning
        status = cluster.dfsadmin().decommission_status("node0")
        assert "Normal" in status

    def test_status_progression(self):
        cluster = self._loaded_cluster()
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        admin = cluster.dfsadmin()
        assert "Normal" in admin.decommission_status(victim)
        admin.decommission(victim)
        cluster.wait_until(
            lambda: cluster.namenode.decommission_complete(victim),
            timeout=1200,
        )
        assert "Decommissioned" in admin.decommission_status(victim)

    def test_unknown_node_rejected(self):
        cluster = make_hdfs()
        from repro.util.errors import HdfsError

        with pytest.raises(HdfsError):
            cluster.namenode.start_decommission("ghost")
