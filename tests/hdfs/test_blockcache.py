"""The verified-block cache: LRU mechanics, generation keying, and the
strict-eviction rules that keep cached bytes honest."""

import pytest

from repro.hdfs.block import Block, StoredBlock
from repro.hdfs.blockcache import BlockCache
from repro.hdfs.protocol import InvalidateCommand
from repro.util.errors import CorruptBlockError
from tests.conftest import make_hdfs


def _stored(block_id: int, size: int, generation: int = 1) -> StoredBlock:
    return StoredBlock(Block(block_id, generation, size), bytes(size))


class TestBlockCacheUnit:
    def test_hit_and_miss_tallies(self):
        cache = BlockCache(1024)
        assert cache.get(1, 1) is None
        stored = _stored(1, 100)
        cache.put(stored)
        assert cache.get(1, 1) is stored
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_generation_keyed(self):
        cache = BlockCache(1024)
        cache.put(_stored(1, 100, generation=1))
        assert cache.get(1, 2) is None  # newer generation: never stale bytes

    def test_lru_eviction_order(self):
        cache = BlockCache(300)
        a, b, c = _stored(1, 100), _stored(2, 100), _stored(3, 100)
        cache.put(a)
        cache.put(b)
        cache.put(c)
        assert cache.get(1, 1) is a  # promote a
        cache.put(_stored(4, 100))  # evicts b, the LRU entry
        assert cache.get(2, 1) is None
        assert cache.get(1, 1) is a
        assert cache.used_bytes == 300

    def test_zero_capacity_disables(self):
        cache = BlockCache(0)
        cache.put(_stored(1, 10))
        assert len(cache) == 0
        assert cache.get(1, 1) is None

    def test_oversized_entry_refused(self):
        cache = BlockCache(100)
        cache.put(_stored(1, 50))
        cache.put(_stored(2, 101))  # bigger than the whole cache
        assert (2, 1) not in cache
        assert (1, 1) in cache  # and nothing was flushed to admit it

    def test_invalidate_drops_every_generation(self):
        cache = BlockCache(1024)
        cache.put(_stored(1, 100, generation=1))
        cache.put(_stored(1, 100, generation=2))
        cache.put(_stored(2, 100))
        cache.invalidate(1)
        assert (1, 1) not in cache
        assert (1, 2) not in cache
        assert (2, 1) in cache
        assert cache.used_bytes == 100

    def test_replace_same_key_keeps_bytes_consistent(self):
        cache = BlockCache(1024)
        cache.put(_stored(1, 100))
        cache.put(_stored(1, 100))
        assert cache.used_bytes == 100
        assert len(cache) == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)


class TestDataNodeCache:
    def _cluster_with_file(self, **kwargs):
        cluster = make_hdfs(**kwargs)
        client = cluster.client()
        client.put_bytes("/f", b"z" * 3000)  # 3 blocks at block_size=1024
        return cluster, client

    def _replica_holder(self, cluster):
        return next(dn for dn in cluster.datanodes.values() if dn.blocks)

    def test_warm_read_hits_cache(self):
        cluster, client = self._cluster_with_file()
        client.read_bytes("/f")
        hits_before = sum(dn.cache.hits for dn in cluster.datanodes.values())
        assert client.read_bytes("/f").data == b"z" * 3000
        hits_after = sum(dn.cache.hits for dn in cluster.datanodes.values())
        assert hits_after >= hits_before + 3  # every block served warm

    def test_cache_off_still_reads(self):
        cluster, client = self._cluster_with_file(block_cache_bytes=0)
        client.read_bytes("/f")
        assert client.read_bytes("/f").data == b"z" * 3000
        assert all(dn.cache.hits == 0 for dn in cluster.datanodes.values())

    def test_corrupt_after_population_evicts_and_detects(self):
        cluster, client = self._cluster_with_file()
        client.read_bytes("/f")  # populate caches
        holder = self._replica_holder(cluster)
        block_id = next(iter(holder.blocks))
        holder.corrupt_block(block_id)
        assert (block_id, 1) not in holder.cache
        with pytest.raises(CorruptBlockError):
            holder.read_block(block_id)

    def test_corrupt_replica_reported_despite_warm_caches(self):
        cluster, client = self._cluster_with_file()
        client.read_bytes("/f")  # every replica holder may now be warm
        holder = self._replica_holder(cluster)
        block_id = next(iter(holder.blocks))
        holder.corrupt_block(block_id)
        result = client.read_bytes("/f")  # fails over to the good replica
        assert result.data == b"z" * 3000
        assert result.corrupt_replicas_hit == 1
        assert holder.name in cluster.namenode.block_map[block_id].corrupt_on

    def test_invalidate_command_evicts(self):
        cluster, client = self._cluster_with_file()
        client.read_bytes("/f")
        holder = self._replica_holder(cluster)
        block_id = next(iter(holder.blocks))
        holder._execute(InvalidateCommand(block_ids=(block_id,)))
        assert block_id not in holder.blocks
        assert (block_id, 1) not in holder.cache

    def test_drop_block_keeps_counter_and_cache_in_sync(self):
        cluster, client = self._cluster_with_file()
        client.read_bytes("/f")
        holder = self._replica_holder(cluster)
        block_id = next(iter(holder.blocks))
        before = holder.used_bytes
        dropped = holder.drop_block(block_id)
        assert dropped is not None
        assert holder.used_bytes == before - dropped.length
        assert (block_id, 1) not in holder.cache


class TestUsedBytesCounter:
    def _assert_counter_invariant(self, cluster):
        for dn in cluster.datanodes.values():
            assert dn.used_bytes == sum(
                b.length for b in dn.blocks.values()
            ), dn.name

    def test_counter_tracks_writes(self):
        cluster = make_hdfs()
        cluster.client().put_bytes("/f", b"a" * 5000)
        self._assert_counter_invariant(cluster)

    def test_counter_tracks_invalidates(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/f", b"b" * 5000)
        client.delete("/f")
        cluster.sim.run_for(60)  # invalidate commands ride heartbeats
        self._assert_counter_invariant(cluster)
        assert all(dn.used_bytes == 0 for dn in cluster.datanodes.values())

    def test_counter_tracks_rereplication(self):
        cluster = make_hdfs(replication=3)
        client = cluster.client()
        client.put_bytes("/f", b"c" * 4000)
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        cluster.crash_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 120)
        self._assert_counter_invariant(cluster)

    def test_counter_tracks_balancer_moves(self):
        from repro.hdfs.balancer import Balancer

        cluster = make_hdfs(num_datanodes=5, replication=1, seed=3)
        client = cluster.client(node="node0")  # writer-local pile-up
        for i in range(8):
            client.put_bytes(f"/skew/{i}", b"d" * 2048)
        report = Balancer(cluster, threshold=1e-9).run()
        assert report.blocks_moved > 0
        self._assert_counter_invariant(cluster)
