"""The balancer: skew correction without breaking replication."""

import pytest

from repro.hdfs.balancer import Balancer
from tests.conftest import make_hdfs


def skewed_cluster():
    """All first replicas on node0 (writer-local placement)."""
    cluster = make_hdfs(num_datanodes=4, block_size=1024, replication=1)
    client = cluster.client(node="node0")
    for i in range(12):
        client.put_bytes(f"/data/f{i}", bytes([i]) * 1024)
    return cluster


class TestBalancer:
    def test_detects_imbalance(self):
        cluster = skewed_cluster()
        balancer = Balancer(cluster, threshold=1e-9)
        util = balancer.utilization()
        assert util["node0"] > 0
        assert not balancer.is_balanced()

    def test_run_reduces_spread(self):
        cluster = skewed_cluster()
        balancer = Balancer(cluster, threshold=1e-9)
        before = balancer.utilization()
        report = balancer.run()
        assert report.blocks_moved > 0
        before_spread = max(before.values()) - min(before.values())
        assert report.spread_after() < before_spread

    def test_replication_invariant_preserved(self):
        cluster = make_hdfs(num_datanodes=4, block_size=1024, replication=2)
        client = cluster.client(node="node0")
        for i in range(8):
            client.put_bytes(f"/d/f{i}", bytes([i]) * 1500)
        Balancer(cluster, threshold=0.01).run()
        for meta in cluster.namenode.block_map.values():
            assert len(meta.locations) == 2
            assert len(set(meta.locations)) == 2

    def test_data_still_readable_after_balancing(self):
        cluster = skewed_cluster()
        Balancer(cluster, threshold=0.01).run()
        client = cluster.client()
        for i in range(12):
            assert client.read_bytes(f"/data/f{i}").data == bytes([i]) * 1024

    def test_balanced_cluster_is_noop(self):
        cluster = make_hdfs(num_datanodes=4)
        report = Balancer(cluster, threshold=0.1).run()
        assert report.converged
        assert report.blocks_moved == 0

    def test_invalid_threshold(self):
        cluster = make_hdfs(num_datanodes=2)
        with pytest.raises(ValueError):
            Balancer(cluster, threshold=0.0)

    def test_moves_charged_to_network(self):
        cluster = skewed_cluster()
        before = cluster.network.counters.total_bytes
        report = Balancer(cluster, threshold=0.01).run()
        assert cluster.network.counters.total_bytes >= (
            before + report.blocks_moved * 1024
        )
