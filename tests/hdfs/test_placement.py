"""Rack-aware replica placement policy."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.hdfs.placement import ReplicaPlacementPolicy
from repro.util.rng import RngStream


def make_policy(num_nodes=9, nodes_per_rack=3, seed=1):
    topo = ClusterTopology.regular(
        num_nodes=num_nodes, nodes_per_rack=nodes_per_rack
    )
    return topo, ReplicaPlacementPolicy(topo, RngStream(seed).child("p"))


class TestPlacementPolicy:
    def test_writer_gets_first_replica(self):
        topo, policy = make_policy()
        candidates = [n.name for n in topo.nodes()]
        targets = policy.choose_targets(3, candidates, writer="node4")
        assert targets[0] == "node4"

    def test_second_replica_off_rack(self):
        topo, policy = make_policy()
        candidates = [n.name for n in topo.nodes()]
        for _ in range(20):
            targets = policy.choose_targets(3, candidates, writer="node0")
            assert topo.rack_of(targets[1]) != topo.rack_of(targets[0])

    def test_third_replica_same_rack_as_second(self):
        topo, policy = make_policy()
        candidates = [n.name for n in topo.nodes()]
        for _ in range(20):
            targets = policy.choose_targets(3, candidates, writer="node0")
            assert topo.rack_of(targets[2]) == topo.rack_of(targets[1])
            assert targets[2] != targets[1]

    def test_targets_are_distinct(self):
        topo, policy = make_policy()
        candidates = [n.name for n in topo.nodes()]
        for rep in range(1, 6):
            targets = policy.choose_targets(rep, candidates, writer="node0")
            assert len(targets) == len(set(targets)) == rep

    def test_single_rack_degrades_gracefully(self):
        topo, policy = make_policy(num_nodes=4, nodes_per_rack=8)
        candidates = [n.name for n in topo.nodes()]
        targets = policy.choose_targets(3, candidates, writer="node1")
        assert len(targets) == 3
        assert len(set(targets)) == 3

    def test_fewer_candidates_than_replicas(self):
        topo, policy = make_policy(num_nodes=2, nodes_per_rack=2)
        candidates = [n.name for n in topo.nodes()]
        targets = policy.choose_targets(3, candidates)
        assert len(targets) == 2  # under-replicated, not an error

    def test_exclusions_respected(self):
        topo, policy = make_policy()
        candidates = [n.name for n in topo.nodes()]
        exclude = {"node0", "node1", "node2"}
        for _ in range(10):
            targets = policy.choose_targets(
                3, candidates, writer="node0", exclude=exclude
            )
            assert not exclude & set(targets)

    def test_writer_not_a_candidate_falls_back(self):
        topo, policy = make_policy()
        candidates = ["node1", "node2"]
        targets = policy.choose_targets(2, candidates, writer="node8")
        assert set(targets) <= {"node1", "node2"}

    def test_no_candidates_returns_empty(self):
        _topo, policy = make_policy()
        assert policy.choose_targets(3, []) == []

    def test_deterministic_given_seed(self):
        topo1, p1 = make_policy(seed=42)
        topo2, p2 = make_policy(seed=42)
        candidates = [n.name for n in topo1.nodes()]
        seq1 = [p1.choose_targets(3, candidates, writer="node0") for _ in range(5)]
        seq2 = [p2.choose_targets(3, candidates, writer="node0") for _ in range(5)]
        assert seq1 == seq2
