"""NameNode durability: edit-log codec, fsimage, checkpoints, recovery.

The contract under test (see ``repro.hdfs.journal``): every namespace
mutation is journaled as a logical-redo record, a crashed NameNode
replays fsimage + edits back to the exact pre-crash namespace, and a
torn edit-log tail loses only the torn record — never the valid prefix.
"""

import pytest

from repro.hdfs.journal import (
    EDIT_SPECS,
    EDITS_MAGIC,
    OP_ADD_BLOCK,
    OP_CREATE,
    OP_MKDIRS,
    OP_SET_QUOTA,
    DirJournalStorage,
    MemoryJournalStorage,
    NameNodeJournal,
    decode_edit,
    decode_image,
    edits_header,
    empty_image_state,
    encode_edit,
    encode_image,
    frame_record,
    scan_edits,
)
from repro.util.errors import (
    ConfigError,
    HdfsError,
    JournalFormatError,
    NameNodeDownError,
)
from tests.conftest import make_hdfs

#: One representative value per field kind, for spec-driven round trips.
SAMPLE_VALUES = {
    "str": "/user/stüdent/file.txt",
    "u32": 3,
    "u64": 1_000_000_007,
    "i64": -42,
    "f64": 1234.5,
    "bool": True,
    "opt_i64": None,
}


def sample_record(op):
    return tuple(SAMPLE_VALUES[kind] for kind in EDIT_SPECS[op])


class TestEditCodec:
    @pytest.mark.parametrize("op", sorted(EDIT_SPECS))
    def test_round_trip_every_opcode(self, op):
        values = sample_record(op)
        assert decode_edit(encode_edit(op, values)) == (op, values)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(JournalFormatError):
            encode_edit(99, ())
        with pytest.raises(JournalFormatError):
            decode_edit(b"\x63")

    def test_wrong_arity_rejected(self):
        with pytest.raises(JournalFormatError):
            encode_edit(OP_MKDIRS, ("/a",))

    def test_trailing_bytes_rejected(self):
        payload = encode_edit(OP_MKDIRS, ("/a", 1.0))
        with pytest.raises(JournalFormatError):
            decode_edit(payload + b"\x00")

    def test_optional_quota_presence_byte(self):
        values = ("/q", 5, None)
        assert decode_edit(encode_edit(OP_SET_QUOTA, values))[1] == values


class TestEditScan:
    def _blob(self, *records):
        out = bytearray(edits_header())
        for op, values in records:
            out += frame_record(encode_edit(op, values))
        return bytes(out)

    def test_scan_full_valid_log(self):
        records = [
            (OP_MKDIRS, ("/a", 1.0)),
            (OP_CREATE, ("/a/f", 2, 2.0)),
            (OP_ADD_BLOCK, ("/a/f", 1001, 0, 512)),
        ]
        scan = scan_edits(self._blob(*records))
        assert list(scan.records) == records
        assert scan.torn_bytes == 0

    def test_scan_stops_at_corrupt_record(self):
        blob = bytearray(
            self._blob((OP_MKDIRS, ("/a", 1.0)), (OP_MKDIRS, ("/b", 2.0)))
        )
        blob[-1] ^= 0xFF  # corrupt the second record's payload
        scan = scan_edits(bytes(blob))
        assert [op for op, _ in scan.records] == [OP_MKDIRS]
        assert scan.torn_bytes > 0
        assert scan.valid_bytes + scan.torn_bytes == len(blob)

    def test_scan_short_header_is_all_torn(self):
        scan = scan_edits(EDITS_MAGIC[:2])
        assert scan.records == () and scan.torn_bytes == 2

    def test_scan_wrong_magic_is_hard_error(self):
        blob = b"NOPE" + self._blob()[4:]
        with pytest.raises(JournalFormatError):
            scan_edits(blob)


class TestImageCodec:
    def _state(self):
        state = empty_image_state()
        ns = state.namespace
        ns.mkdirs("/user/a", mtime=1.0)
        inode = ns.create_file("/user/a/f.txt", replication=2, mtime=2.0)
        inode.under_construction = False
        state.quotas["/user"] = (10, None)
        state.decommissioning.add("node3")
        state.next_block_id = 2000
        return state

    def test_image_round_trip(self):
        state = self._state()
        decoded = decode_image(encode_image(state))
        assert decoded.namespace.dump() == state.namespace.dump()
        assert decoded.quotas == state.quotas
        assert decoded.decommissioning == state.decommissioning
        assert decoded.next_block_id == state.next_block_id

    def test_image_corruption_is_hard_error(self):
        blob = bytearray(encode_image(self._state()))
        blob[-1] ^= 0xFF
        with pytest.raises(JournalFormatError):
            decode_image(bytes(blob))

    def test_image_truncation_is_hard_error(self):
        blob = encode_image(self._state())
        with pytest.raises(JournalFormatError):
            decode_image(blob[: len(blob) - 3])


class TestJournalManager:
    def _journal(self, limit=0):
        return NameNodeJournal(MemoryJournalStorage(), checkpoint_edit_limit=limit)

    def test_log_then_recover_replays(self):
        journal = self._journal()
        journal.format()
        journal.log_mkdirs("/a", 1.0)
        journal.log_create("/a/f", 2, 2.0)
        journal.log_add_block("/a/f", 1001, 0, 512)
        journal.log_complete("/a/f", 3.0)
        state = journal.recover()
        dump = dict(
            (entry[0], entry) for entry in state.namespace.dump()
        )
        assert "/a/f" in dump
        assert state.next_block_id == 1002
        assert journal.last_recovery.replayed_edits == 4
        assert journal.last_recovery.torn_bytes == 0

    def test_checkpoint_truncates_then_recovery_replays_only_the_tail(self):
        journal = self._journal()
        journal.format()
        journal.log_mkdirs("/a", 1.0)
        journal.log_mkdirs("/b", 2.0)
        # Bind a snapshot equal to what the log built so far.
        state = journal.recover()
        journal.bind(lambda: state)
        stats = journal.checkpoint()
        assert stats.edits_truncated == 2 and stats.image_inodes == 3
        journal.log_mkdirs("/c", 3.0)
        recovered = journal.recover()
        assert journal.last_recovery.replayed_edits == 1
        assert journal.last_recovery.image_inodes == 3
        paths = [path for path, *_ in recovered.namespace.dump()]
        assert paths == ["/", "/a", "/b", "/c"]

    def test_auto_checkpoint_at_edit_limit(self):
        journal = self._journal(limit=3)
        journal.bind(lambda: journal.recover())
        journal.format()
        for i in range(7):
            journal.log_mkdirs(f"/d{i}", float(i))
        assert journal.checkpoints == 2
        assert journal.edits_since_checkpoint == 1
        assert journal.edits_logged == 7

    def test_tear_tail_drops_only_the_last_record(self):
        journal = self._journal()
        journal.format()
        journal.log_mkdirs("/a", 1.0)
        journal.log_mkdirs("/b", 2.0)
        assert journal.tear_tail() > 0
        state = journal.recover()
        assert journal.last_recovery.torn_bytes > 0
        paths = [path for path, *_ in state.namespace.dump()]
        assert paths == ["/", "/a"]  # the torn record ("/b") is lost

    def test_disabled_journal_noops_and_refuses(self):
        journal = NameNodeJournal(None)
        assert not journal.enabled
        journal.log_mkdirs("/a", 1.0)  # silent no-op, never raises
        assert journal.edits_logged == 0
        assert journal.tear_tail() == 0
        assert "disabled" in journal.describe()
        with pytest.raises(HdfsError):
            journal.checkpoint()
        with pytest.raises(HdfsError):
            journal.recover()


class TestDirJournalStorage:
    def test_persists_across_storage_instances(self, tmp_path):
        directory = str(tmp_path / "name")
        journal = NameNodeJournal(DirJournalStorage(directory))
        journal.format()
        journal.log_mkdirs("/a", 1.0)
        journal.log_create("/a/f", 2, 2.0)
        reopened = NameNodeJournal(DirJournalStorage(directory))
        state = reopened.recover()
        paths = [path for path, *_ in state.namespace.dump()]
        assert paths == ["/", "/a", "/a/f"]

    def test_image_swap_is_atomic_no_tmp_left(self, tmp_path):
        directory = str(tmp_path / "name")
        storage = DirJournalStorage(directory)
        journal = NameNodeJournal(storage)
        journal.bind(empty_image_state)
        journal.format()
        journal.checkpoint()
        assert storage.read_image() is not None
        import os

        assert not os.path.exists(storage.image_path + ".tmp")
        assert not os.path.exists(storage.edits_path + ".tmp")


class TestNameNodeCrashRecovery:
    def _loaded_cluster(self, **config_kwargs):
        hdfs = make_hdfs(num_datanodes=3, **config_kwargs)
        client = hdfs.client()
        client.put_text("/user/a/one.txt", "first file body\n" * 30)
        client.put_text("/user/a/two.txt", "second file body\n" * 20)
        client.mkdirs("/user/b")
        client.rename("/user/a/two.txt", "/user/b/two.txt")
        return hdfs

    def test_crash_wipes_memory_and_rpcs_fail(self):
        hdfs = self._loaded_cluster()
        hdfs.crash_namenode()
        nn = hdfs.namenode
        assert nn.down and nn.crashes == 1
        assert len(nn.block_map) == 0 and len(nn.datanodes) == 0
        with pytest.raises(NameNodeDownError):
            nn.exists("/user/a/one.txt")
        with pytest.raises(NameNodeDownError):
            nn.mkdirs("/nope")

    def test_recovery_restores_the_exact_namespace(self):
        hdfs = self._loaded_cluster()
        before = hdfs.namenode.namespace_digest()
        hdfs.crash_namenode()
        hdfs.recover_namenode()
        nn = hdfs.namenode
        assert not nn.down and nn.recoveries == 1
        assert not nn.safemode.active
        assert nn.namespace_digest() == before
        # And the data path works end to end on the recovered namespace.
        assert "first file" in hdfs.client().read_text("/user/a/one.txt")

    def test_restart_replays_the_journal(self):
        hdfs = self._loaded_cluster()
        before = hdfs.namenode.namespace_digest()
        hdfs.restart_cluster()
        hdfs.wait_until(lambda: not hdfs.namenode.safemode.active)
        assert hdfs.namenode.namespace_digest() == before

    def test_save_namespace_bounds_replay(self):
        hdfs = self._loaded_cluster()
        stats = hdfs.namenode.save_namespace()
        assert stats.image_inodes > 0 and stats.edits_truncated > 0
        hdfs.client().mkdirs("/after-checkpoint")
        hdfs.crash_namenode()
        hdfs.recover_namenode()
        recovery = hdfs.namenode.journal.last_recovery
        assert recovery.image_inodes == stats.image_inodes
        assert 0 < recovery.replayed_edits < hdfs.namenode.journal.edits_logged
        assert hdfs.namenode.exists("/after-checkpoint")

    def test_journal_off_cluster_cannot_recover(self):
        hdfs = self._loaded_cluster(journal=False)
        assert not hdfs.namenode.journal.enabled
        hdfs.crash_namenode()
        with pytest.raises(HdfsError):
            hdfs.namenode.recover()

    def test_config_validation(self):
        from repro.hdfs.config import HdfsConfig

        with pytest.raises(ConfigError):
            HdfsConfig(journal=False, journal_dir="/tmp/nn")
        with pytest.raises(ConfigError):
            HdfsConfig(checkpoint_edit_limit=-1)

    def test_journal_dir_storage_wired_through_config(self, tmp_path):
        hdfs = self._loaded_cluster(journal_dir=str(tmp_path / "name"))
        assert isinstance(hdfs.namenode.journal.storage, DirJournalStorage)
        before = hdfs.namenode.namespace_digest()
        hdfs.crash_namenode()
        hdfs.recover_namenode()
        assert hdfs.namenode.namespace_digest() == before
