"""Re-replication after failures — the recovery machinery the paper's
students inadvertently load-tested."""

import pytest

from repro.hdfs.replication import replication_health, wait_for_full_replication
from tests.conftest import make_hdfs


class TestReplicationHealth:
    def test_healthy_after_write(self):
        cluster = make_hdfs(replication=2)
        cluster.client().put_bytes("/f", b"a" * 3000)
        health = replication_health(cluster.namenode)
        assert health.healthy
        assert health.total_blocks == 3
        assert health.average_replication == pytest.approx(2.0)

    def test_under_replication_detected_on_crash(self):
        cluster = make_hdfs(replication=2)
        cluster.client().put_bytes("/f", b"b" * 3000)
        victim = next(n for n, d in cluster.datanodes.items() if d.blocks)
        # Sample the under-replication count at the instant the NameNode
        # declares the node dead — before the repair sweeps heal it.
        observed = {}
        cluster.sim.bus.subscribe(
            "hdfs.namenode.node_dead",
            lambda e: observed.setdefault(
                "under", len(cluster.namenode.under_replicated)
            ),
        )
        cluster.crash_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert observed["under"] > 0

    def test_rereplication_converges(self):
        cluster = make_hdfs(replication=2, num_datanodes=4)
        cluster.client().put_bytes("/f", b"c" * 5000)
        victim = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(victim)
        # Let the NameNode notice the death before demanding convergence.
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert wait_for_full_replication(
            cluster.sim, cluster.namenode, timeout=1200
        )
        health = replication_health(cluster.namenode)
        assert health.healthy
        # Replicas must live on surviving nodes only.
        for meta in cluster.namenode.block_map.values():
            assert victim not in meta.locations

    def test_data_still_readable_after_recovery(self):
        cluster = make_hdfs(replication=2, num_datanodes=4)
        payload = b"d" * 4096
        cluster.client().put_bytes("/f", payload)
        victim = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        wait_for_full_replication(cluster.sim, cluster.namenode, timeout=1200)
        assert cluster.client().read_bytes("/f").data == payload

    def test_missing_blocks_when_all_replicas_lost(self):
        cluster = make_hdfs(replication=1, num_datanodes=3)
        cluster.client().put_bytes("/f", b"e" * 1000)
        holders = {
            name for name, dn in cluster.datanodes.items() if dn.blocks
        }
        for name in holders:
            cluster.crash_datanode(name)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert cluster.namenode.missing_blocks()
        health = replication_health(cluster.namenode)
        assert health.missing > 0

    def test_missing_block_recovers_when_node_returns(self):
        cluster = make_hdfs(replication=1, num_datanodes=3)
        cluster.client().put_bytes("/f", b"f" * 1000)
        holder = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(holder)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert cluster.namenode.missing_blocks()
        cluster.restart_datanode(holder)
        cluster.wait_until(
            lambda: not cluster.namenode.missing_blocks(), timeout=600
        )
        assert cluster.client().read_bytes("/f").data == b"f" * 1000

    def test_over_replication_trimmed(self):
        cluster = make_hdfs(replication=2, num_datanodes=4)
        cluster.client().put_bytes("/f", b"g" * 1000)
        block_id = next(iter(cluster.namenode.block_map))
        meta = cluster.namenode.block_map[block_id]
        # A node that went away and came back re-reports an old replica.
        extra = next(
            name
            for name in cluster.datanodes
            if name not in meta.locations
        )
        stored = next(iter(
            cluster.datanode(sorted(meta.locations)[0]).blocks.values()
        ))
        cluster.datanode(extra).write_block(stored.block, stored.data)
        cluster.namenode.block_received(extra, stored.block)
        assert block_id in cluster.namenode.over_replicated
        cluster.wait_until(
            lambda: len(meta.locations) == 2, timeout=600
        )
        assert block_id not in cluster.namenode.over_replicated
