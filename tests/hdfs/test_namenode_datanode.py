"""NameNode/DataNode interaction: liveness, reports, commands, restart."""

import pytest

from repro.hdfs.datanode import DataNodeState
from repro.util.errors import (
    BlockNotFoundError,
    DataNodeDownError,
    SafeModeException,
)
from tests.conftest import make_hdfs


class TestStartup:
    def test_fresh_cluster_leaves_safemode(self):
        cluster = make_hdfs()
        assert not cluster.namenode.safemode.active
        assert len(cluster.namenode.datanodes) == 4

    def test_all_datanodes_registered_and_live(self):
        cluster = make_hdfs(num_datanodes=3)
        live = [d for d in cluster.namenode.datanodes.values() if d.alive]
        assert len(live) == 3

    def test_heartbeats_flow(self):
        cluster = make_hdfs()
        before = cluster.datanode("node0").heartbeats_sent
        cluster.sim.run_for(30)
        assert cluster.datanode("node0").heartbeats_sent > before


class TestDeadNodeDetection:
    def test_crashed_node_declared_dead(self):
        cluster = make_hdfs()
        cluster.crash_datanode("node1")
        timeout = cluster.config.dead_node_timeout
        cluster.sim.run_for(timeout + 3 * cluster.config.heartbeat_interval)
        assert not cluster.namenode.datanodes["node1"].alive

    def test_dead_node_locations_removed(self):
        cluster = make_hdfs(replication=3)
        client = cluster.client()
        client.put_bytes("/f", b"x" * 3000)
        victim = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        cluster.crash_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        for meta in cluster.namenode.block_map.values():
            assert victim not in meta.locations

    def test_returning_node_reregisters(self):
        cluster = make_hdfs()
        cluster.stop_datanode("node2")
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        assert not cluster.namenode.datanodes["node2"].alive
        cluster.restart_datanode("node2")
        cluster.wait_until(
            lambda: cluster.namenode.datanodes["node2"].alive, timeout=120
        )
        assert cluster.datanode("node2").state == DataNodeState.UP


class TestBlockReports:
    def test_orphan_blocks_invalidated(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/f", b"y" * 2048)
        holder_name = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        holder = cluster.datanode(holder_name)
        # Delete the file while the node is offline; on return its blocks
        # are orphans and must be scrubbed.
        blocks_before = set(holder.blocks)
        holder.stop()
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        client.delete("/f")
        holder.start()
        cluster.wait_until(
            lambda: not (set(holder.blocks) & blocks_before), timeout=300
        )
        assert not set(holder.blocks) & blocks_before

    def test_corrupt_replica_reported_in_block_report(self):
        cluster = make_hdfs(replication=2)
        client = cluster.client()
        client.put_bytes("/f", b"z" * 1024)
        holder_name = next(
            name for name, dn in cluster.datanodes.items() if dn.blocks
        )
        holder = cluster.datanode(holder_name)
        block_id = next(iter(holder.blocks))
        holder.corrupt_block(block_id)
        bad = holder.verify_all()
        assert bad == [block_id]
        meta = cluster.namenode.block_map[block_id]
        assert holder_name in meta.corrupt_on
        assert holder_name not in meta.locations


class TestSafeModeOnRestart:
    def test_restart_reenters_safemode(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/f", b"q" * 4096)
        cluster.restart_cluster()
        assert cluster.namenode.safemode.active
        with pytest.raises(SafeModeException):
            cluster.namenode.mkdirs("/blocked")
        cluster.wait_until(
            lambda: not cluster.namenode.safemode.active, timeout=3600
        )
        # Data survives the restart.
        assert client.read_bytes("/f").data == b"q" * 4096

    def test_restart_preserves_namespace(self):
        cluster = make_hdfs()
        client = cluster.client()
        client.put_bytes("/a/b/file", b"keep")
        cluster.restart_cluster()
        cluster.wait_until(
            lambda: not cluster.namenode.safemode.active, timeout=3600
        )
        assert cluster.namenode.exists("/a/b/file")

    def test_ballast_lengthens_startup_scan(self):
        cluster = make_hdfs()
        cluster.datanode("node0").ballast_bytes = int(
            cluster.config.startup_scan_bw * 120
        )
        cluster.stop_datanode("node0")
        scan = cluster.restart_datanode("node0")
        assert scan == pytest.approx(120.0, rel=0.01)


class TestDataNodeDataPath:
    def test_read_from_down_node_raises(self):
        cluster = make_hdfs()
        cluster.stop_datanode("node0")
        with pytest.raises(DataNodeDownError):
            cluster.datanode("node0").read_block(1)

    def test_read_missing_block_raises(self):
        cluster = make_hdfs()
        with pytest.raises(BlockNotFoundError):
            cluster.datanode("node0").read_block(424242)

    def test_write_refused_when_full(self):
        cluster = make_hdfs()
        datanode = cluster.datanode("node0")
        limit = datanode.node.spec.disk_bytes
        datanode.node.disk.allocate(int(limit * 0.99))
        from repro.hdfs.block import Block

        assert not datanode.write_block(Block(777, 1, 64 * 1024), b"x" * 65536)

    def test_physical_listing_shows_blk_files(self):
        cluster = make_hdfs()
        cluster.client().put_bytes("/f", b"m" * 1024)
        listings = [
            cluster.datanode(n).physical_listing() for n in cluster.datanodes
        ]
        names = [name for listing in listings for name in listing]
        assert names and all(name.startswith("blk_") for name in names)


class TestNameNodeMetrics:
    def test_heap_usage_tracks_block_count(self):
        cluster = make_hdfs()
        base = cluster.namenode.heap_used_bytes()
        cluster.client().put_bytes("/f", b"n" * 5000)  # 5 blocks
        per_block = cluster.config.namenode_bytes_per_block
        assert cluster.namenode.heap_used_bytes() == base + 5 * per_block

    def test_capacity_report_consistent(self):
        cluster = make_hdfs(num_datanodes=3)
        report = cluster.namenode.capacity_report()
        assert report["live_datanodes"] == 3
        assert report["capacity"] > 0
        assert report["remaining"] <= report["capacity"]
