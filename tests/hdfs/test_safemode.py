"""Safe mode state machine."""

import pytest

from repro.hdfs.safemode import SafeMode
from repro.util.errors import SafeModeException


class TestSafeMode:
    def test_starts_active(self):
        sm = SafeMode(threshold=0.999, extension=5.0)
        assert sm.active
        with pytest.raises(SafeModeException):
            sm.check("create")

    def test_empty_namespace_meets_threshold(self):
        sm = SafeMode(threshold=0.999, extension=5.0)
        sm.set_block_totals(0, 0)
        assert sm.ratio == 1.0
        assert sm.threshold_met()

    def test_exit_requires_extension_to_elapse(self):
        sm = SafeMode(threshold=0.9, extension=5.0)
        sm.set_block_totals(10, 10)
        exit_time = sm.maybe_schedule_exit(now=100.0)
        assert exit_time == 105.0
        assert not sm.try_exit(now=102.0)  # too early: exit aborted
        # The abort cleared the deadline; schedule again.
        exit_time = sm.maybe_schedule_exit(now=102.0)
        assert exit_time == 107.0
        assert sm.try_exit(now=107.0)
        assert not sm.active

    def test_exit_not_scheduled_twice(self):
        sm = SafeMode(threshold=0.9, extension=5.0)
        sm.set_block_totals(10, 10)
        assert sm.maybe_schedule_exit(now=0.0) == 5.0
        assert sm.maybe_schedule_exit(now=1.0) is None

    def test_threshold_regression_aborts_exit(self):
        sm = SafeMode(threshold=0.9, extension=5.0)
        sm.set_block_totals(10, 10)
        sm.maybe_schedule_exit(now=0.0)
        sm.set_block_totals(10, 5)  # a node died during the extension
        assert not sm.try_exit(now=5.0)
        assert sm.active

    def test_manual_enter_blocks_auto_exit(self):
        sm = SafeMode(threshold=0.5, extension=0.0)
        sm.set_block_totals(2, 2)
        sm.enter_manual()
        assert sm.maybe_schedule_exit(now=0.0) is None
        assert not sm.try_exit(now=100.0)
        sm.leave_manual()
        assert not sm.active

    def test_check_passes_when_off(self):
        sm = SafeMode(threshold=0.5, extension=0.0)
        sm.leave_manual()
        sm.check("create")  # must not raise

    def test_describe_mentions_state(self):
        sm = SafeMode(threshold=0.999, extension=1.0)
        sm.set_block_totals(4, 3)
        text = sm.describe()
        assert "ON" in text and "3 of 4" in text
