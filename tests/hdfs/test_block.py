"""Blocks, checksums, corruption detection."""

import pytest

from repro.hdfs.block import Block, BlockIdGenerator, StoredBlock, checksum
from repro.util.errors import CorruptBlockError


class TestBlock:
    def test_physical_name(self):
        assert Block(1001, 1, 64).name == "blk_1001"

    def test_id_generator_monotonic(self):
        gen = BlockIdGenerator()
        first = gen.next_id()
        assert gen.next_id() == first + 1


class TestStoredBlock:
    def test_length_must_match(self):
        with pytest.raises(ValueError):
            StoredBlock(Block(1, 1, 10), b"short")

    def test_verify_fresh(self):
        stored = StoredBlock(Block(1, 1, 4), b"data")
        assert stored.verify()
        assert stored.read() == b"data"

    def test_corruption_detected(self):
        stored = StoredBlock(Block(1, 1, 4), b"data")
        stored.corrupt()
        assert not stored.verify()
        with pytest.raises(CorruptBlockError):
            stored.read()

    def test_corrupt_at_offset(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh")
        stored.corrupt(offset=3)
        assert stored.data[:3] == b"abc"
        assert stored.data[3] != ord("d")

    def test_corrupt_offset_wraps(self):
        stored = StoredBlock(Block(1, 1, 4), b"abcd")
        stored.corrupt(offset=6)  # 6 % 4 == 2
        assert stored.data[2] != ord("c")

    def test_corrupting_empty_block_is_noop(self):
        stored = StoredBlock(Block(1, 1, 0), b"")
        stored.corrupt()
        assert stored.verify()

    def test_checksum_is_stable(self):
        assert checksum(b"abc") == checksum(b"abc")
        assert checksum(b"abc") != checksum(b"abd")
