"""Blocks, checksums, corruption detection."""

import pytest

from repro.hdfs.block import Block, BlockIdGenerator, StoredBlock, checksum
from repro.util.errors import CorruptBlockError


class TestBlock:
    def test_physical_name(self):
        assert Block(1001, 1, 64).name == "blk_1001"

    def test_id_generator_monotonic(self):
        gen = BlockIdGenerator()
        first = gen.next_id()
        assert gen.next_id() == first + 1


class TestStoredBlock:
    def test_length_must_match(self):
        with pytest.raises(ValueError):
            StoredBlock(Block(1, 1, 10), b"short")

    def test_verify_fresh(self):
        stored = StoredBlock(Block(1, 1, 4), b"data")
        assert stored.verify()
        assert stored.read() == b"data"

    def test_corruption_detected(self):
        stored = StoredBlock(Block(1, 1, 4), b"data")
        stored.corrupt()
        assert not stored.verify()
        with pytest.raises(CorruptBlockError):
            stored.read()

    def test_corrupt_at_offset(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh")
        stored.corrupt(offset=3)
        assert stored.data[:3] == b"abc"
        assert stored.data[3] != ord("d")

    def test_corrupt_offset_wraps(self):
        stored = StoredBlock(Block(1, 1, 4), b"abcd")
        stored.corrupt(offset=6)  # 6 % 4 == 2
        assert stored.data[2] != ord("c")

    def test_corrupting_empty_block_is_noop(self):
        stored = StoredBlock(Block(1, 1, 0), b"")
        stored.corrupt()
        assert stored.verify()

    def test_checksum_is_stable(self):
        assert checksum(b"abc") == checksum(b"abc")
        assert checksum(b"abc") != checksum(b"abd")


class TestChunkedChecksums:
    def test_chunk_count(self):
        stored = StoredBlock(Block(1, 1, 10), b"0123456789", chunk_size=4)
        assert stored.n_chunks == 3  # 4 + 4 + 2

    def test_empty_block_has_no_chunks(self):
        stored = StoredBlock(Block(1, 1, 0), b"", chunk_size=4)
        assert stored.n_chunks == 0
        assert stored.verify()
        assert bytes(stored.read_range(0, 10)) == b""

    def test_born_verified(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh", chunk_size=4)
        assert stored.unverified_bytes == 0

    def test_corrupt_invalidates_only_touched_chunk(self):
        stored = StoredBlock(Block(1, 1, 12), b"abcdefghijkl", chunk_size=4)
        stored.corrupt(offset=5)  # chunk 1
        assert stored.unverified_bytes == 4
        # Untouched chunks still read clean via ranges.
        assert bytes(stored.read_range(0, 4)) == b"abcd"
        assert bytes(stored.read_range(8, 4)) == b"ijkl"
        # The damaged chunk raises, whole reads raise.
        with pytest.raises(CorruptBlockError):
            stored.read_range(4, 4)
        with pytest.raises(CorruptBlockError):
            stored.read()

    def test_range_straddling_corrupt_chunk_raises(self):
        stored = StoredBlock(Block(1, 1, 12), b"abcdefghijkl", chunk_size=4)
        stored.corrupt(offset=5)
        with pytest.raises(CorruptBlockError):
            stored.read_range(2, 4)  # touches chunks 0 and 1

    def test_verdicts_are_memoised_both_ways(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh", chunk_size=4)
        stored.corrupt(offset=0)
        assert stored.unverified_bytes == 4
        assert not stored.verify()
        # The BAD verdict is remembered: nothing left to scan either.
        assert stored.unverified_bytes == 0
        assert not stored.verify()

    def test_memo_disabled_scans_everything(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh", chunk_size=4, memo=False)
        assert not stored.memo_enabled
        assert stored.unverified_bytes == 8
        assert stored.verify()
        assert stored.unverified_bytes == 8  # never attested

    def test_read_range_clamps_and_validates(self):
        stored = StoredBlock(Block(1, 1, 10), b"0123456789", chunk_size=4)
        assert bytes(stored.read_range(8)) == b"89"  # to end
        assert bytes(stored.read_range(9, 100)) == b"9"  # clamped
        assert bytes(stored.read_range(10, 1)) == b""  # at end
        assert bytes(stored.read_range(99, 1)) == b""  # past end
        with pytest.raises(ValueError):
            stored.read_range(-1, 1)
        with pytest.raises(ValueError):
            stored.read_range(0, -1)

    def test_read_range_is_zero_copy(self):
        stored = StoredBlock(Block(1, 1, 8), b"abcdefgh", chunk_size=4)
        view = stored.read_range(2, 4)
        assert isinstance(view, memoryview)
        assert view.obj is stored.data

    def test_constructor_copies_views_once(self):
        buffer = bytearray(b"abcdefgh")
        stored = StoredBlock(Block(1, 1, 4), memoryview(buffer)[2:6])
        buffer[3] = 0  # mutating the source must not reach the replica
        assert stored.read() == b"cdef"

    def test_whole_block_crc_still_exposed(self):
        stored = StoredBlock(Block(1, 1, 4), b"data")
        assert stored.crc == checksum(b"data")
