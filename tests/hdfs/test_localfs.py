"""The Linux-FS stand-in."""

import pytest

from repro.hdfs.localfs import LinuxFileSystem
from repro.util.errors import FileNotFoundInHdfs, IsADirectory


class TestLinuxFileSystem:
    def test_write_read_roundtrip(self):
        fs = LinuxFileSystem()
        fs.write_file("/home/u/f.txt", "hello")
        assert fs.read_text("/home/u/f.txt") == "hello"
        assert fs.read_file("/home/u/f.txt") == b"hello"

    def test_bytes_and_str_accepted(self):
        fs = LinuxFileSystem()
        fs.write_file("/a", b"\x00\x01")
        assert fs.read_file("/a") == b"\x00\x01"

    def test_append(self):
        fs = LinuxFileSystem()
        fs.append_file("/log", "a")
        fs.append_file("/log", "b")
        assert fs.read_text("/log") == "ab"

    def test_missing_file_raises(self):
        fs = LinuxFileSystem()
        with pytest.raises(FileNotFoundInHdfs):
            fs.read_file("/nope")

    def test_read_directory_raises(self):
        fs = LinuxFileSystem()
        fs.write_file("/d/f", "x")
        with pytest.raises(IsADirectory):
            fs.read_file("/d")

    def test_exists_and_is_dir(self):
        fs = LinuxFileSystem()
        fs.write_file("/d/sub/f", "x")
        assert fs.exists("/d/sub/f")
        assert fs.exists("/d/sub")
        assert fs.is_dir("/d")
        assert not fs.is_dir("/d/sub/f")
        assert fs.is_dir("/")

    def test_listdir(self):
        fs = LinuxFileSystem()
        fs.write_file("/d/a", "1")
        fs.write_file("/d/b/c", "2")
        assert fs.listdir("/d") == ["a", "b"]
        assert fs.listdir("/") == ["d"]

    def test_walk_and_total_bytes(self):
        fs = LinuxFileSystem()
        fs.write_file("/d/a", "12")
        fs.write_file("/d/b", "345")
        assert fs.walk("/d") == ["/d/a", "/d/b"]
        assert fs.total_bytes("/d") == 5

    def test_delete_file_and_tree(self):
        fs = LinuxFileSystem()
        fs.write_file("/d/a", "1")
        fs.write_file("/d/b", "2")
        assert fs.delete("/d/a")
        assert not fs.exists("/d/a")
        assert fs.delete("/d")
        assert not fs.exists("/d")
        assert not fs.delete("/ghost")

    def test_size(self):
        fs = LinuxFileSystem()
        fs.write_file("/f", "abcd")
        assert fs.size("/f") == 4

    def test_normalizes_paths(self):
        fs = LinuxFileSystem()
        fs.write_file("a/b.txt", "x")  # no leading slash
        assert fs.read_text("/a/b.txt") == "x"
