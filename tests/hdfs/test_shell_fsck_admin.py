"""FsShell commands, fsck, dfsadmin — the assignment-2 observability."""

import pytest

from repro.hdfs.fsck import fsck
from repro.hdfs.localfs import LinuxFileSystem
from tests.conftest import make_hdfs


@pytest.fixture
def setup():
    cluster = make_hdfs()
    localfs = LinuxFileSystem()
    localfs.write_file("/home/u/data.txt", "line one\nline two\n")
    shell = cluster.shell(localfs=localfs)
    return cluster, localfs, shell


class TestFsShell:
    def test_put_ls_cat_roundtrip(self, setup):
        cluster, localfs, shell = setup
        assert shell.run("-mkdir", "/user/u").ok
        assert shell.run("-put", "/home/u/data.txt", "/user/u/data.txt").ok
        listing = shell.run("-ls", "/user/u")
        assert listing.ok and "data.txt" in listing.output
        assert shell.run("-cat", "/user/u/data.txt").output == (
            "line one\nline two\n"
        )

    def test_put_into_directory_uses_basename(self, setup):
        cluster, localfs, shell = setup
        shell.run("-mkdir", "/dir")
        assert shell.run("-put", "/home/u/data.txt", "/dir").ok
        assert shell.run("-test", "-e", "/dir/data.txt").code == 0

    def test_get_roundtrip(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/f")
        assert shell.run("-get", "/f", "/home/u/out.txt").ok
        assert localfs.read_text("/home/u/out.txt") == "line one\nline two\n"

    def test_rm_vs_rmr(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/d/f")
        assert not shell.run("-rm", "/d").ok  # directory needs -rmr
        assert shell.run("-rmr", "/d").ok
        assert shell.run("-test", "-e", "/d").code == 1

    def test_mv_and_cp(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/a")
        assert shell.run("-cp", "/a", "/b").ok
        assert shell.run("-mv", "/a", "/c").ok
        assert shell.run("-test", "-e", "/a").code == 1
        assert shell.run("-cat", "/b").output == shell.run("-cat", "/c").output

    def test_du_and_dus_and_count(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/d/f")
        assert "18" in shell.run("-du", "/d").output
        assert shell.run("-dus", "/d").output.endswith("18")
        count = shell.run("-count", "/d").output.split()
        assert count[:3] == ["1", "1", "18"]

    def test_stat_reports_blocks(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/f")
        output = shell.run("-stat", "/f").output
        assert "length=18" in output and "blocks=1" in output

    def test_tail(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/f")
        assert shell.run("-tail", "/f").output.endswith("line two\n")

    def test_setrep(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/f")
        assert shell.run("-setrep", "-w", "1", "/f").ok
        assert cluster.namenode.namespace.get_file("/f").replication == 1

    def test_touchz(self, setup):
        cluster, localfs, shell = setup
        assert shell.run("-touchz", "/zero").ok
        assert shell.run("-test", "-z", "/zero").code == 0

    def test_unknown_command(self, setup):
        _, _, shell = setup
        result = shell.run("-frobnicate")
        assert result.code == 1 and "Unknown command" in result.output

    def test_errors_become_exit_codes(self, setup):
        _, _, shell = setup
        result = shell.run("-cat", "/no/such/file")
        assert result.code == 1

    def test_lsr_recurses(self, setup):
        cluster, localfs, shell = setup
        shell.run("-put", "/home/u/data.txt", "/a/b/f")
        output = shell.run("-lsr", "/a").output
        assert "/a/b" in output and "/a/b/f" in output


class TestFsck:
    def test_healthy_filesystem(self, setup):
        cluster, _, shell = setup
        cluster.client().put_bytes("/f", b"x" * 2500)
        report = fsck(cluster.namenode)
        assert report.healthy
        assert report.total_blocks == 3
        assert report.total_files == 1
        assert "HEALTHY" in report.render()

    def test_corrupt_after_total_loss(self):
        cluster = make_hdfs(replication=1, num_datanodes=3)
        cluster.client().put_bytes("/f", b"y" * 1000)
        holder = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(holder)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        report = fsck(cluster.namenode)
        assert report.status == "CORRUPT"
        assert report.missing_blocks == 1
        assert report.problem_files == ["/f"]

    def test_under_replication_reported_but_healthy(self):
        cluster = make_hdfs(replication=2, num_datanodes=4)
        cluster.client().put_bytes("/f", b"z" * 1000)
        victim = next(n for n, d in cluster.datanodes.items() if d.blocks)
        cluster.crash_datanode(victim)
        cluster.sim.run_for(cluster.config.dead_node_timeout + 5)
        # Check before the replication monitor fixes things: pause it by
        # reading immediately after death detection.
        report = fsck(cluster.namenode)
        assert report.status == "HEALTHY"

    def test_list_blocks_detail(self, setup):
        cluster, _, shell = setup
        cluster.client().put_bytes("/f", b"w" * 1100)
        report = fsck(cluster.namenode, list_blocks=True)
        assert any("blk_" in line for line in report.detail_lines)

    def test_subtree_scoping(self, setup):
        cluster, _, _ = setup
        client = cluster.client()
        client.put_bytes("/a/f", b"1" * 100)
        client.put_bytes("/b/g", b"2" * 100)
        report = fsck(cluster.namenode, path="/a")
        assert report.total_files == 1


class TestDfsAdmin:
    def test_report_contents(self, setup):
        cluster, _, _ = setup
        cluster.client().put_bytes("/f", b"r" * 1000)
        report = cluster.dfsadmin().report()
        assert "Datanodes available: 4 (4 live, 0 dead)" in report
        assert "DFS Used" in report
        assert "node0" in report

    def test_report_shows_dead_nodes(self, setup):
        cluster, _, _ = setup
        cluster.crash_datanode("node3")
        cluster.sim.run_for(cluster.config.dead_node_timeout + 10)
        report = cluster.dfsadmin().report()
        assert "(3 live, 1 dead)" in report

    def test_safemode_commands(self, setup):
        cluster, _, _ = setup
        admin = cluster.dfsadmin()
        assert "OFF" in admin.safemode("get")
        admin.safemode("enter")
        assert cluster.namenode.safemode.active
        from repro.util.errors import SafeModeException
        import pytest as _pytest

        with _pytest.raises(SafeModeException):
            cluster.client().put_bytes("/blocked", b"x")
        admin.safemode("leave")
        assert not cluster.namenode.safemode.active

    def test_metasave_lists_blocks(self, setup):
        cluster, _, _ = setup
        cluster.client().put_bytes("/f", b"s" * 2000)
        dump = cluster.dfsadmin().metasave()
        assert "blk_" in dump and "/f" in dump
