"""Namespace (inode tree) semantics."""

import pytest

from repro.hdfs.block import Block
from repro.hdfs.namespace import Namespace, normalize, split_path
from repro.util.errors import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFoundInHdfs,
    IsADirectory,
    NotADirectory,
)


class TestPathNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/", "/"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/b/../c", "/a/c"),
            ("/a/b/", "/a/b"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize(raw) == expected

    def test_relative_rejected(self):
        with pytest.raises(FileNotFoundInHdfs):
            normalize("relative/path")

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        with pytest.raises(FileNotFoundInHdfs):
            split_path("/")


class TestDirectories:
    def test_mkdirs_creates_parents(self):
        ns = Namespace()
        ns.mkdirs("/a/b/c")
        assert ns.is_dir("/a")
        assert ns.is_dir("/a/b/c")

    def test_mkdirs_idempotent(self):
        ns = Namespace()
        ns.mkdirs("/a")
        assert ns.mkdirs("/a")

    def test_mkdirs_through_file_rejected(self):
        ns = Namespace()
        ns.create_file("/a/file", replication=1)
        with pytest.raises(NotADirectory):
            ns.mkdirs("/a/file/sub")

    def test_root_always_exists(self):
        ns = Namespace()
        assert ns.exists("/")
        assert ns.is_dir("/")


class TestFiles:
    def test_create_sets_under_construction(self):
        ns = Namespace()
        inode = ns.create_file("/data/f", replication=3)
        assert inode.under_construction
        assert inode.replication == 3
        assert inode.length == 0

    def test_create_existing_without_overwrite(self):
        ns = Namespace()
        ns.create_file("/f", replication=1)
        with pytest.raises(FileAlreadyExists):
            ns.create_file("/f", replication=1)

    def test_create_with_overwrite(self):
        ns = Namespace()
        ns.create_file("/f", replication=1)
        ns.create_file("/f", replication=2, overwrite=True)
        assert ns.get_file("/f").replication == 2

    def test_create_over_directory_rejected(self):
        ns = Namespace()
        ns.mkdirs("/d")
        with pytest.raises(IsADirectory):
            ns.create_file("/d", replication=1)

    def test_length_sums_blocks(self):
        ns = Namespace()
        inode = ns.create_file("/f", replication=1)
        inode.blocks.append(Block(1, 1, 100))
        inode.blocks.append(Block(2, 1, 50))
        assert inode.length == 150

    def test_get_file_on_directory_raises(self):
        ns = Namespace()
        ns.mkdirs("/d")
        with pytest.raises(IsADirectory):
            ns.get_file("/d")


class TestDelete:
    def test_delete_file_returns_blocks(self):
        ns = Namespace()
        inode = ns.create_file("/f", replication=1)
        inode.blocks.append(Block(9, 1, 10))
        freed = ns.delete("/f")
        assert [b.block_id for b in freed] == [9]
        assert not ns.exists("/f")

    def test_delete_nonempty_dir_requires_recursive(self):
        ns = Namespace()
        ns.create_file("/d/f", replication=1)
        with pytest.raises(DirectoryNotEmpty):
            ns.delete("/d")
        freed = ns.delete("/d", recursive=True)
        assert freed == []  # file had no blocks
        assert not ns.exists("/d")

    def test_recursive_delete_collects_all_blocks(self):
        ns = Namespace()
        f1 = ns.create_file("/d/a", replication=1)
        f2 = ns.create_file("/d/sub/b", replication=1)
        f1.blocks.append(Block(1, 1, 5))
        f2.blocks.append(Block(2, 1, 5))
        freed = {b.block_id for b in ns.delete("/d", recursive=True)}
        assert freed == {1, 2}

    def test_delete_missing_raises(self):
        ns = Namespace()
        with pytest.raises(FileNotFoundInHdfs):
            ns.delete("/nope")

    def test_delete_root_rejected(self):
        ns = Namespace()
        with pytest.raises(IsADirectory):
            ns.delete("/")


class TestRename:
    def test_simple_rename(self):
        ns = Namespace()
        ns.create_file("/a", replication=1)
        ns.rename("/a", "/b")
        assert ns.exists("/b") and not ns.exists("/a")

    def test_rename_into_directory(self):
        ns = Namespace()
        ns.create_file("/f", replication=1)
        ns.mkdirs("/d")
        ns.rename("/f", "/d")
        assert ns.exists("/d/f")

    def test_rename_onto_existing_file_rejected(self):
        ns = Namespace()
        ns.create_file("/a", replication=1)
        ns.create_file("/b", replication=1)
        with pytest.raises(FileAlreadyExists):
            ns.rename("/a", "/b")

    def test_rename_into_itself_rejected(self):
        ns = Namespace()
        ns.mkdirs("/d")
        with pytest.raises(NotADirectory):
            ns.rename("/d", "/d/sub")

    def test_rename_to_missing_parent_rejected(self):
        ns = Namespace()
        ns.create_file("/a", replication=1)
        with pytest.raises(FileNotFoundInHdfs):
            ns.rename("/a", "/missing/b")


class TestListingAndStats:
    def test_list_status_sorted(self):
        ns = Namespace()
        ns.create_file("/d/z", replication=1)
        ns.create_file("/d/a", replication=1)
        names = [s.path for s in ns.list_status("/d")]
        assert names == ["/d/a", "/d/z"]

    def test_list_status_of_file_returns_self(self):
        ns = Namespace()
        ns.create_file("/f", replication=1)
        statuses = ns.list_status("/f")
        assert len(statuses) == 1 and statuses[0].path == "/f"

    def test_walk_files(self):
        ns = Namespace()
        ns.create_file("/a/x", replication=1)
        ns.create_file("/a/b/y", replication=1)
        ns.mkdirs("/empty")
        paths = [p for p, _ in ns.walk_files("/")]
        assert paths == ["/a/b/y", "/a/x"]

    def test_du_and_count(self):
        ns = Namespace()
        f = ns.create_file("/d/f", replication=1)
        f.blocks.append(Block(1, 1, 100))
        ns.create_file("/d/sub/g", replication=1)
        assert ns.du("/d") == 100
        dirs, files, nbytes = ns.count("/d")
        assert (dirs, files, nbytes) == (2, 2, 100)

    def test_ls_line_format(self):
        ns = Namespace()
        f = ns.create_file("/f", replication=3)
        f.blocks.append(Block(1, 1, 42))
        line = ns.status("/f").ls_line()
        assert line.startswith("-rw-r--r--")
        assert "42" in line and "/f" in line
        ns.mkdirs("/d")
        assert ns.status("/d").ls_line().startswith("drw")
