"""Property: TextInputFormat reads every line exactly once, regardless
of where block boundaries fall — the invariant that makes "one split per
block" safe."""

from hypothesis import given, settings, strategies as st

from repro.mapreduce.inputformat import TextInputFormat

SETTINGS = settings(max_examples=120, deadline=None)

LINE = st.text(alphabet="abcXYZ 09", min_size=0, max_size=30)


def chunked_fetch(data: bytes, block_size: int):
    def fetch(path, block_index, max_bytes, offset=0):
        start = block_index * block_size
        if start >= len(data) and block_index > 0:
            raise IndexError(block_index)
        chunk = data[start : start + block_size]
        if offset:
            chunk = chunk[offset:]
        if max_bytes is not None:
            chunk = chunk[:max_bytes]
        return chunk, 0.0

    return fetch


def read_lines(data: bytes, block_size: int) -> list[str]:
    lengths = []
    offset = 0
    while offset < len(data):
        lengths.append(min(block_size, len(data) - offset))
        offset += lengths[-1]
    if not lengths:
        lengths = [0]
    splits = TextInputFormat.splits_for_file(
        "/f", lengths, [("n",)] * len(lengths)
    )
    fetch = chunked_fetch(data, block_size)
    out = []
    for split in splits:
        for _key, value in TextInputFormat.read_records(split, fetch):
            out.append(value.value)
    return out


class TestExactlyOnce:
    @SETTINGS
    @given(
        lines=st.lists(LINE, min_size=0, max_size=20),
        block_size=st.integers(min_value=1, max_value=64),
    )
    def test_lines_partition_exactly(self, lines, block_size):
        data = ("\n".join(lines) + "\n").encode() if lines else b""
        assert read_lines(data, block_size) == lines

    @SETTINGS
    @given(
        lines=st.lists(LINE, min_size=1, max_size=10),
        block_size=st.integers(min_value=1, max_value=32),
    )
    def test_missing_final_newline(self, lines, block_size):
        data = "\n".join(lines).encode()
        expected = list(lines)
        # A trailing empty line without a newline yields no record.
        if expected and expected[-1] == "":
            expected = expected[:-1]
        assert read_lines(data, block_size) == expected

    @SETTINGS
    @given(
        lines=st.lists(LINE, min_size=0, max_size=12),
        block_size=st.integers(min_value=1, max_value=48),
    )
    def test_offsets_strictly_increasing(self, lines, block_size):
        data = ("\n".join(lines) + "\n").encode() if lines else b""
        lengths = []
        offset = 0
        while offset < len(data):
            lengths.append(min(block_size, len(data) - offset))
            offset += lengths[-1]
        if not lengths:
            return
        splits = TextInputFormat.splits_for_file(
            "/f", lengths, [("n",)] * len(lengths)
        )
        fetch = chunked_fetch(data, block_size)
        offsets = []
        for split in splits:
            for key, _value in TextInputFormat.read_records(split, fetch):
                offsets.append(key.value)
        assert offsets == sorted(set(offsets))
