"""Property: the zero-copy HDFS data path is invisible to results.

The verified-block cache, chunk memos, and ranged continuation reads
only change where *host* time goes.  Everything the simulation can
observe — counters, output pairs, simulated clocks, event counts —
must be bit-identical cache-on vs cache-off, on the cluster, across
repeated jobs over the same dataset (where the cache actually hits),
and under every chaos drill.  ``read_range`` itself must agree with
the plain byte slices it replaces at every chunk boundary +-1.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.hdfs.block import Block, StoredBlock
from repro.hdfs.config import HdfsConfig
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.local_runner import LocalJobRunner

ALL_DRILLS = tuple(SCENARIOS)

CACHE_ON = 64 * 1024 * 1024
CACHE_OFF = 0

#: Short lines plus one line far longer than the 2048-byte block size,
#: so continuation reads span whole blocks mid-line.
CORPUS = (
    "the quick brown fox jumps over the lazy dog\n" * 120
    + "x" * 5000
    + " end\n"
    + "pack my box with five dozen liquor jugs\n" * 80
)


def _cluster_fingerprint(block_cache_bytes: int):
    """Two identical jobs over one dataset: the second runs warm when
    the cache is on, and nothing observable may move."""
    hdfs_config = HdfsConfig(
        block_size=2048, replication=2, block_cache_bytes=block_cache_bytes
    )
    with MapReduceCluster(num_workers=4, seed=11, hdfs_config=hdfs_config) as mr:
        mr.client().put_text("/in/corpus.txt", CORPUS)
        fingerprint = []
        for run in range(2):
            job = WordCountWithCombinerJob(JobConf(name=f"wc{run}", num_reduces=3))
            report = mr.run_job(job, "/in", f"/out{run}", require_success=True)
            fingerprint.append(
                (
                    report.elapsed,
                    report.counters.as_dict(),
                    tuple(sorted(mr.read_output(f"/out{run}"))),
                )
            )
        fingerprint.append((mr.sim.now, mr.sim.events_processed))
        return fingerprint


class TestCacheOnEqualsCacheOff:
    def test_cluster_bit_identical(self):
        warm = _cluster_fingerprint(CACHE_ON)
        cold = _cluster_fingerprint(CACHE_OFF)
        assert warm == cold

    def test_cache_actually_hit_during_warm_run(self):
        """Guard against the property above passing vacuously."""
        hdfs_config = HdfsConfig(
            block_size=2048, replication=2, block_cache_bytes=CACHE_ON
        )
        with MapReduceCluster(num_workers=4, seed=11, hdfs_config=hdfs_config) as mr:
            mr.client().put_text("/in/corpus.txt", CORPUS)
            for run in range(2):
                job = WordCountWithCombinerJob(
                    JobConf(name=f"wc{run}", num_reduces=3)
                )
                mr.run_job(job, "/in", f"/out{run}", require_success=True)
            hits = sum(
                dn.cache.hits for dn in mr.hdfs.datanodes.values()
            )
            assert hits > 0

    def test_local_runner_output_split_size_invariant(self):
        """Ranged continuation probes reassemble boundary lines exactly:
        the same corpus yields the same records at any split size."""
        outputs = []
        for split_size in (512, 2048, 64 * 1024):
            fs = LinuxFileSystem()
            fs.write_file("/data/corpus.txt", CORPUS)
            with LocalJobRunner(localfs=fs, split_size=split_size) as runner:
                job = WordCountWithCombinerJob(JobConf(name="wc", num_reduces=2))
                result = runner.run(job, "/data/corpus.txt", "/out")
                outputs.append(tuple(sorted(result.pairs)))
        assert outputs[0] == outputs[1] == outputs[2]


class TestChaosDrillsCacheOnOff:
    """All five drills heal identically with the cache on and off."""

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_drill_bit_identical(self, name):
        warm = run_scenario(name, seed=0, block_cache_bytes=CACHE_ON)
        cold = run_scenario(name, seed=0, block_cache_bytes=CACHE_OFF)
        assert warm.ok, warm.summary()
        assert cold.ok, cold.summary()
        assert warm.output_files == cold.output_files
        assert warm.baseline_files == cold.baseline_files
        assert warm.fault_log == cold.fault_log
        assert (
            warm.report.counters.as_dict() == cold.report.counters.as_dict()
        )
        assert warm.report.elapsed == cold.report.elapsed


# ---------------------------------------------------------------------------
# read_range at chunk boundaries +-1

CHUNK = st.integers(min_value=1, max_value=9)
DATA = st.binary(min_size=0, max_size=64)


@settings(max_examples=150, deadline=None)
@given(data=DATA, chunk_size=CHUNK, boundary=st.integers(0, 8), delta=st.integers(-1, 1), length=st.integers(0, 64))
def test_read_range_at_chunk_boundaries(data, chunk_size, boundary, delta, length):
    stored = StoredBlock(Block(1, 1, len(data)), data, chunk_size=chunk_size)
    offset = max(0, boundary * chunk_size + delta)
    assert bytes(stored.read_range(offset, length)) == data[offset : offset + length]


@settings(max_examples=100, deadline=None)
@given(data=DATA, chunk_size=CHUNK, cuts=st.lists(st.integers(0, 64), max_size=6))
def test_ranged_reads_reassemble_whole_block(data, chunk_size, cuts):
    """Any partition of a block into ranges concatenates back to the
    same bytes a whole-block read returns."""
    stored = StoredBlock(Block(1, 1, len(data)), data, chunk_size=chunk_size)
    points = sorted({0, len(data), *[c % (len(data) + 1) for c in cuts]})
    pieces = [
        bytes(stored.read_range(start, end - start))
        for start, end in zip(points, points[1:])
    ]
    assert b"".join(pieces) == stored.read()
