"""Determinism: same seed, same universe — end to end.

The guides' reproducibility discipline, verified at system level: two
independent constructions with the same seed produce byte-identical
reports, block layouts and simulation traces.
"""

from repro.core.classroom import ClassroomScenario, run_classroom
from repro.datasets.airline import generate_airline
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.util.units import HOUR
from tests.conftest import make_mr


def _job_fingerprint(seed: int):
    mr = make_mr(num_workers=4, seed=seed)
    mr.client().put_text("/in.txt", "a b c a\n" * 200)
    report = mr.run_job(
        WordCountWithCombinerJob(), "/in.txt", "/out", require_success=True
    )
    locations = {
        block_id: tuple(sorted(meta.locations))
        for block_id, meta in mr.hdfs.namenode.block_map.items()
    }
    return (
        report.elapsed,
        report.counters.as_dict(),
        report.data_local_maps,
        tuple(sorted(mr.read_output("/out"))),
        tuple(sorted(locations.items())),
        mr.sim.events_processed,
    )


class TestDeterminism:
    def test_cluster_job_identical_across_runs(self):
        assert _job_fingerprint(11) == _job_fingerprint(11)

    def test_different_seeds_differ_somewhere(self):
        a = _job_fingerprint(11)
        b = _job_fingerprint(12)
        # Same answers (the data is the same), but different placement.
        assert a[3] == b[3]
        assert a[4] != b[4]

    def test_dataset_generation_identical(self):
        assert (
            generate_airline(seed=5, num_rows=500).csv_text
            == generate_airline(seed=5, num_rows=500).csv_text
        )

    def test_classroom_identical_across_runs(self):
        def run():
            report = run_classroom(
                ClassroomScenario(
                    name="det",
                    platform="dedicated",
                    num_students=8,
                    window=8 * HOUR,
                    seed=3,
                    input_bytes=30 * 1024,
                )
            )
            return (
                report.completed,
                report.daemon_crashes,
                report.cluster_restarts,
                report.total_job_submissions,
                tuple(report.timeline),
            )

        assert run() == run()
