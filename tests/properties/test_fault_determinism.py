"""Property: chaos never changes the answer, only the journey.

For randomly seeded :class:`FaultPlan`\\ s, wordcount and the
movie-ratings job must produce output files and user-level counters
*identical* to a fault-free run on an identically-seeded cluster — on
the serial backend and on a pooled backend alike.  "Job Counters"
(launches, locality, failures) are the journey and legitimately differ;
everything else is the answer and must not.
"""

import pytest

from repro.datasets.movielens import generate_movielens
from repro.faults import FaultInjector, FaultPlan
from repro.hdfs.config import HdfsConfig
from repro.jobs.movie_genres import GenreStatsJob
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.types import IntWritable, Text, Writable

BACKENDS = ("serial", "pooled-threads")
WORDS_COUNTED = ("App Metrics", "words counted")


class CountingMapper(Mapper):
    """Tokenize and bump a *user* counter — chaos must preserve both."""

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        for word in value.value.split():
            context.write(Text(word), IntWritable(1))
            context.increment(WORDS_COUNTED)


class SumReducer(Reducer):
    def reduce(self, key: Writable, values, context: Context) -> None:
        context.write(key, IntWritable(sum(v.value for v in values)))


class CountingWordCount(Job):
    mapper = CountingMapper
    reducer = SumReducer


def chaos_plan(seed: int) -> FaultPlan:
    return (
        FaultPlan(seed=seed)
        .shuffle_failure_rate(0.25)
        .task_exception_rate(0.1)
        .straggler_rate(0.15, factor=2.5)
    )


def make_cluster(backend: str) -> MapReduceCluster:
    return MapReduceCluster(
        num_workers=4,
        hdfs_config=HdfsConfig(block_size=2048, replication=2),
        mr_config=MapReduceConfig(execution_backend=backend, backend_workers=2),
        seed=1,
    )


def run_wordcount(backend: str, plan: FaultPlan | None):
    with make_cluster(backend) as mr:
        mr.client().put_text("/in.txt", "lorem ipsum dolor sit amet " * 700)
        injector = FaultInjector(plan, mr).arm() if plan else None
        try:
            report = mr.run_job(
                CountingWordCount(JobConf(name="cwc", num_reduces=2)),
                "/in.txt",
                "/out",
                timeout=48 * 3600,
                require_success=True,
            )
        finally:
            if injector:
                injector.disarm()
        return (
            sorted(mr.read_output("/out")),
            report.counters.get(WORDS_COUNTED),
            injector.fault_log() if injector else [],
        )


def run_movie_ratings(backend: str, plan: FaultPlan | None):
    data = generate_movielens(seed=7, num_ratings=800, num_movies=40, num_users=50)
    with make_cluster(backend) as mr:
        client = mr.client()
        client.put_text("/in/ratings.dat", data.ratings_text)
        client.put_text("/aux/movies.dat", data.movies_text)
        injector = FaultInjector(plan, mr).arm() if plan else None
        try:
            mr.run_job(
                GenreStatsJob(movies_path="/aux/movies.dat"),
                "/in/ratings.dat",
                "/out",
                timeout=48 * 3600,
                require_success=True,
            )
        finally:
            if injector:
                injector.disarm()
        return sorted(mr.read_output("/out"))


class TestWordCountUnderChaos:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("plan_seed", (17, 23))
    def test_output_and_user_counters_survive(self, backend, plan_seed):
        clean_pairs, clean_counter, _ = run_wordcount(backend, None)
        pairs, counter, fault_log = run_wordcount(backend, chaos_plan(plan_seed))
        assert fault_log, "these rates should inject faults"
        assert pairs == clean_pairs
        assert counter == clean_counter > 0

    def test_backends_see_identical_chaos(self):
        """The fault draws are name-keyed, so serial and pooled runs of
        the same plan inject the *same* faults and agree on the answer.
        (Log *order* may interleave differently at equal timestamps —
        pooled callbacks land at the join — so compare the sorted set.)"""
        results = {b: run_wordcount(b, chaos_plan(17)) for b in BACKENDS}
        serial, pooled = results["serial"], results["pooled-threads"]
        assert sorted(serial[2]) == sorted(pooled[2])
        assert serial[0] == pooled[0]
        assert serial[1] == pooled[1]


class TestMovieRatingsUnderChaos:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_side_file_job_survives(self, backend):
        clean = run_movie_ratings(backend, None)
        chaotic = run_movie_ratings(backend, chaos_plan(29))
        assert chaotic == clean
