"""Property: the shared-memory shuffle plane is invisible to results.

The shm transport (``repro.mapreduce.shm``) changes only *where* frozen
RWF1 partition blobs live while crossing the pool — a shared-memory
segment instead of a pickled bytes payload.  Everything observable —
counters, output pairs, simulated clocks, event counts — must be
bit-identical between ``shuffle_transport="shm"`` and both older
transports, on the local runner and the cluster, in both arenas, with
spilling on, and under every chaos drill with the runtime sanitizer
watching.  Each run must also leave zero live segments behind.
"""

import warnings

import pytest

from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountJob, WordCountWithCombinerJob
from repro.mapreduce import shm
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.local_runner import LocalJobRunner

ALL_DRILLS = tuple(SCENARIOS)

CORPUS = (
    "the quick brown fox jumps over the lazy dog\n" * 300
    + "pack my box with five dozen liquor jugs\n" * 200
)


def _mr_config(transport, backend="pooled", spill=None, arena="auto"):
    return MapReduceConfig(
        execution_backend=backend,
        backend_workers=2,
        shuffle_transport=transport,
        spill_record_limit=spill,
        shm_arena=arena,
    )


def _local_fingerprint(mr_config, job_cls=WordCountWithCombinerJob):
    fs = LinuxFileSystem()
    fs.write_file("/data/corpus.txt", CORPUS)
    with LocalJobRunner(
        localfs=fs, mr_config=mr_config, split_size=8 * 1024
    ) as runner:
        job = job_cls(JobConf(name="wc", num_reduces=3))
        result = runner.run(job, "/data/corpus.txt", "/out")
        return (
            result.simulated_seconds,
            result.counters.as_dict(),
            tuple(sorted(result.pairs)),
            result.num_splits,
        )


def _cluster_fingerprint(mr_config):
    with MapReduceCluster(num_workers=4, seed=11, mr_config=mr_config) as mr:
        mr.client().put_text("/in/corpus.txt", CORPUS)
        job = WordCountWithCombinerJob(JobConf(name="wc", num_reduces=3))
        report = mr.run_job(job, "/in", "/out", require_success=True)
        return (
            report.elapsed,
            report.counters.as_dict(),
            tuple(sorted(mr.read_output("/out"))),
            mr.sim.now,
            mr.sim.events_processed,
        )


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test in this module must end with zero live scopes."""
    yield
    assert shm.live_scope_tokens() == []


class TestShmEqualsOtherTransports:
    @pytest.mark.parametrize("job_cls", [WordCountJob, WordCountWithCombinerJob])
    def test_local_runner_bit_identical(self, job_cls):
        with warnings.catch_warnings():
            # an inline/pickle fallback would mask a broken shm path
            warnings.simplefilter("error", RuntimeWarning)
            shared = _local_fingerprint(_mr_config("shm"), job_cls)
            framed = _local_fingerprint(_mr_config("framed"), job_cls)
            plain = _local_fingerprint(_mr_config("object"), job_cls)
        assert shared == framed == plain

    def test_local_runner_matches_serial(self):
        shared = _local_fingerprint(_mr_config("shm"))
        serial = _local_fingerprint(_mr_config("shm", backend="serial"))
        assert shared == serial

    def test_file_arena_bit_identical(self):
        """The mmap-backed file arena answers exactly like the POSIX
        one (and like framed) — only the segment's address changes."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            filed = _local_fingerprint(_mr_config("shm", arena="file"))
            framed = _local_fingerprint(_mr_config("framed"))
        assert filed == framed

    def test_thread_backend_bit_identical(self):
        shared = _local_fingerprint(_mr_config("shm", backend="pooled-threads"))
        plain = _local_fingerprint(_mr_config("object", backend="pooled-threads"))
        assert shared == plain

    def test_cluster_bit_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            shared = _cluster_fingerprint(_mr_config("shm"))
            plain = _cluster_fingerprint(_mr_config("object"))
        assert shared == plain

    def test_cluster_shm_matches_serial(self):
        shared = _cluster_fingerprint(_mr_config("shm"))
        serial = _cluster_fingerprint(_mr_config("shm", backend="serial"))
        assert shared == serial

    def test_shm_with_spill_bit_identical(self):
        """Spilling and shm compose: still equal to the plain object
        run, with only spill accounting allowed to move."""
        shared = _local_fingerprint(_mr_config("shm", spill=128))
        plain = _local_fingerprint(_mr_config("object"))
        assert shared[2] == plain[2]  # identical output pairs
        sc, pc = shared[1], plain[1]
        for group in pc:
            for name in pc[group]:
                if name == "Spilled Records":
                    continue
                assert sc[group][name] == pc[group][name], (group, name)

    def test_shm_min_bytes_gate_is_invisible(self):
        """A threshold that forces every output back to framed blobs
        must not change a single observable bit."""
        gated = MapReduceConfig(
            execution_backend="pooled",
            backend_workers=2,
            shuffle_transport="shm",
            shm_min_bytes=1 << 30,
        )
        assert _local_fingerprint(gated) == _local_fingerprint(_mr_config("shm"))


class TestChaosDrillsShm:
    """The five drills, pooled + shm + sanitizer: heal and match."""

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_drill_heals_shm(self, name):
        result = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="shm"
        )
        assert result.ok, result.summary()

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_shm_drill_matches_object_drill(self, name):
        shared = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="shm"
        )
        plain = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="object"
        )
        assert shared.output_files == plain.output_files
        assert shared.baseline_files == plain.baseline_files
        assert shared.fault_log == plain.fault_log
