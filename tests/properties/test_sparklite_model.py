"""Model-based testing: random RDD pipelines vs plain-list semantics.

Hypothesis composes random chains of transformations and checks the
distributed result against the same chain over a plain Python list —
under every partitioning, and with caching + an executor crash thrown
into the middle.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.sparklite import SparkLiteContext

DATA = st.lists(st.integers(min_value=-50, max_value=50), max_size=40)

#: (name, rdd-step, list-step) triples to chain.
STEPS = st.sampled_from(
    [
        ("double", lambda r: r.map(lambda x: x * 2),
         lambda xs: [x * 2 for x in xs]),
        ("inc", lambda r: r.map(lambda x: x + 1),
         lambda xs: [x + 1 for x in xs]),
        ("evens", lambda r: r.filter(lambda x: x % 2 == 0),
         lambda xs: [x for x in xs if x % 2 == 0]),
        ("positive", lambda r: r.filter(lambda x: x > 0),
         lambda xs: [x for x in xs if x > 0]),
        ("fan", lambda r: r.flat_map(lambda x: [x, -x]),
         lambda xs: [y for x in xs for y in (x, -x)]),
        ("dedup", lambda r: r.distinct(),
         lambda xs: list(set(xs))),
    ]
)


class TestPipelinesAgainstListModel:
    @settings(max_examples=60, deadline=None)
    @given(
        data=DATA,
        steps=st.lists(STEPS, max_size=4),
        partitions=st.integers(min_value=1, max_value=7),
    )
    def test_chain_matches_list_semantics(self, data, steps, partitions):
        sc = SparkLiteContext.local(num_executors=3)
        rdd = sc.parallelize(data, num_partitions=partitions)
        expected = list(data)
        for _name, rdd_step, list_step in steps:
            rdd = rdd_step(rdd)
            expected = list_step(expected)
        assert Counter(rdd.collect()) == Counter(expected)
        assert rdd.count() == len(expected)

    @settings(max_examples=40, deadline=None)
    @given(
        data=DATA,
        partitions=st.integers(min_value=1, max_value=6),
        crash_index=st.integers(min_value=0, max_value=2),
    )
    def test_crash_mid_pipeline_is_invisible(self, data, partitions, crash_index):
        sc = SparkLiteContext.local(num_executors=3)
        rdd = (
            sc.parallelize(data, num_partitions=partitions)
            .map(lambda x: (x % 3, x))
            .cache()
        )
        rdd.collect()  # populate caches
        sc.crash_executor(f"executor{crash_index}")
        grouped = rdd.reduce_by_key(lambda a, b: a + b)
        expected: dict = {}
        for x in data:
            expected[x % 3] = expected.get(x % 3, 0) + x
        assert dict(grouped.collect()) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(-9, 9)), max_size=30
        ),
        partitions=st.integers(min_value=1, max_value=5),
    )
    def test_reduce_by_key_matches_dict_fold(self, pairs, partitions):
        sc = SparkLiteContext.local(num_executors=2)
        rdd = sc.parallelize(pairs, num_partitions=partitions).reduce_by_key(
            lambda a, b: a + b
        )
        expected: dict = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert dict(rdd.collect()) == expected
