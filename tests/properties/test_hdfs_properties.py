"""Property-based tests on HDFS invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.hdfs.namespace import Namespace, normalize
from tests.conftest import make_hdfs

# Cluster construction is cheap but not free: keep example counts sane.
CLUSTER_SETTINGS = settings(max_examples=20, deadline=None)
FAST_SETTINGS = settings(max_examples=100, deadline=None)


class TestWriteReadRoundTrip:
    @CLUSTER_SETTINGS
    @given(
        payload=st.binary(min_size=0, max_size=8000),
        block_size=st.integers(min_value=64, max_value=2048),
        replication=st.integers(min_value=1, max_value=3),
    )
    def test_round_trip_exact(self, payload, block_size, replication):
        cluster = make_hdfs(
            num_datanodes=3, block_size=block_size, replication=replication
        )
        client = cluster.client()
        client.put_bytes("/f", payload)
        assert client.read_bytes("/f").data == payload

    @CLUSTER_SETTINGS
    @given(
        payload=st.binary(min_size=1, max_size=8000),
        block_size=st.integers(min_value=64, max_value=2048),
    )
    def test_block_count_is_ceiling(self, payload, block_size):
        cluster = make_hdfs(num_datanodes=3, block_size=block_size)
        client = cluster.client()
        result = client.put_bytes("/f", payload)
        assert result.blocks == math.ceil(len(payload) / block_size)
        inode = cluster.namenode.namespace.get_file("/f")
        assert sum(b.length for b in inode.blocks) == len(payload)
        assert all(b.length <= block_size for b in inode.blocks)

    @CLUSTER_SETTINGS
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=2000), min_size=1, max_size=5
        )
    )
    def test_du_equals_total_payload(self, payloads):
        cluster = make_hdfs(num_datanodes=3)
        client = cluster.client()
        for i, payload in enumerate(payloads):
            client.put_bytes(f"/d/f{i}", payload)
        assert client.du("/d") == sum(len(p) for p in payloads)

    @CLUSTER_SETTINGS
    @given(
        payload=st.binary(min_size=1, max_size=4000),
        replication=st.integers(min_value=1, max_value=3),
    )
    def test_replica_counts_match_factor(self, payload, replication):
        cluster = make_hdfs(num_datanodes=4, replication=replication)
        client = cluster.client()
        client.put_bytes("/f", payload)
        for meta in cluster.namenode.block_map.values():
            assert len(meta.locations) == replication
            # Replicas on distinct nodes.
            assert len(set(meta.locations)) == replication

    @CLUSTER_SETTINGS
    @given(payload=st.binary(min_size=1, max_size=4000))
    def test_stored_bytes_equals_length_times_replication(self, payload):
        cluster = make_hdfs(num_datanodes=4, replication=2)
        cluster.client().put_bytes("/f", payload)
        assert cluster.total_stored_bytes() == 2 * len(payload)


PATH_SEGMENT = st.text(alphabet="abcdefgh123", min_size=1, max_size=6)


class TestNamespaceProperties:
    @FAST_SETTINGS
    @given(segments=st.lists(PATH_SEGMENT, min_size=1, max_size=5))
    def test_mkdirs_then_exists(self, segments):
        ns = Namespace()
        path = "/" + "/".join(segments)
        ns.mkdirs(path)
        assert ns.exists(path)
        assert ns.is_dir(path)
        # Every prefix exists too.
        for i in range(1, len(segments)):
            assert ns.is_dir("/" + "/".join(segments[:i]))

    @FAST_SETTINGS
    @given(segments=st.lists(PATH_SEGMENT, min_size=1, max_size=5))
    def test_create_delete_is_identity(self, segments):
        ns = Namespace()
        path = "/" + "/".join(segments)
        ns.create_file(path, replication=1)
        assert ns.exists(path)
        ns.delete(path)
        assert not ns.exists(path)

    @FAST_SETTINGS
    @given(segments=st.lists(PATH_SEGMENT, min_size=1, max_size=4))
    def test_normalize_idempotent(self, segments):
        path = "/" + "//".join(segments)
        assert normalize(normalize(path)) == normalize(path)

    @FAST_SETTINGS
    @given(
        src=st.lists(PATH_SEGMENT, min_size=1, max_size=3),
        dst=st.lists(PATH_SEGMENT, min_size=1, max_size=3),
    )
    def test_rename_preserves_file_count(self, src, dst):
        ns = Namespace()
        src_path = "/src/" + "/".join(src)
        dst_path = "/dst/" + "/".join(dst)
        if normalize(src_path) == normalize(dst_path):
            return
        ns.create_file(src_path, replication=1)
        ns.mkdirs("/dst/" + "/".join(dst[:-1]) if len(dst) > 1 else "/dst")
        try:
            ns.rename(src_path, dst_path)
        except Exception:
            return  # collisions etc. are allowed to fail
        files = list(ns.walk_files("/"))
        assert len(files) == 1
