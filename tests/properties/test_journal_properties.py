"""Property tests on the NameNode journal (edit log + fsimage).

Three durability claims, each load-bearing for the crash drills:

1. the edit codec round-trips every record type exactly;
2. truncating an edit log at *any* byte offset recovers precisely the
   records whose frames survived intact — no exception, no partial
   record, no lost valid prefix;
3. a NameNode recovered after a crash holds a namespace bit-identical
   to the live one, across seeds and op mixes — and journaling itself
   never perturbs a fault-free cluster (journal on ≡ off).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdfs.fsck import fsck
from repro.hdfs.journal import (
    EDIT_SPECS,
    edits_header,
    encode_edit,
    decode_edit,
    frame_record,
    scan_edits,
)
from repro.util.rng import RngStream
from tests.conftest import make_hdfs

FAST_SETTINGS = settings(max_examples=100, deadline=None)

_FIELD_STRATEGIES = {
    "str": st.text(max_size=12),
    "u32": st.integers(min_value=0, max_value=2**32 - 1),
    "u64": st.integers(min_value=0, max_value=2**64 - 1),
    "i64": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "f64": st.floats(allow_nan=False),
    "bool": st.booleans(),
    "opt_i64": st.none()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1),
}


def _record_strategy():
    def per_op(op):
        return st.tuples(
            *(_FIELD_STRATEGIES[kind] for kind in EDIT_SPECS[op])
        ).map(lambda values: (op, values))

    return st.one_of([per_op(op) for op in sorted(EDIT_SPECS)])


class TestEditCodecRoundTrip:
    @FAST_SETTINGS
    @given(record=_record_strategy())
    def test_round_trip(self, record):
        op, values = record
        assert decode_edit(encode_edit(op, values)) == (op, values)


class TestTornTailTolerance:
    @FAST_SETTINGS
    @given(
        records=st.lists(_record_strategy(), max_size=6),
        data=st.data(),
    )
    def test_truncation_at_any_offset_keeps_exactly_the_valid_prefix(
        self, records, data
    ):
        blob = bytearray(edits_header())
        frame_ends = []
        for op, values in records:
            blob += frame_record(encode_edit(op, values))
            frame_ends.append(len(blob))
        cut = data.draw(
            st.integers(min_value=0, max_value=len(blob)), label="cut"
        )
        scan = scan_edits(bytes(blob[:cut]))
        expected = sum(1 for end in frame_ends if end <= cut)
        assert len(scan.records) == expected
        assert list(scan.records) == records[:expected]
        assert scan.valid_bytes + scan.torn_bytes == cut


def _mutate_namespace(hdfs, seed):
    """A seed-determined mix of every journaled mutation kind."""
    rng = RngStream(seed=seed).child("journal-ops")
    client = hdfs.client()
    nn = hdfs.namenode
    for i in range(4):
        client.mkdirs(f"/d{i}")
    for i in range(3):
        size = 200 + rng.child("size", i).integers(0, 3000)
        client.put_text(f"/d{i}/f{i}.txt", "x" * size)
    client.mkdirs("/renamed")
    client.rename("/d0/f0.txt", "/renamed/f0.txt")
    client.delete("/d1/f1.txt")
    nn.set_replication("/d2/f2.txt", 1 + rng.child("repl").integers(0, 1))
    nn.set_quota("/d3", namespace_quota=50, space_quota=None)
    nn.start_decommission("node2")
    if rng.child("stop-decomm").bernoulli(0.5):
        nn.stop_decommission("node2")


@pytest.mark.parametrize("seed", [0, 7, 2013])
def test_recovered_namespace_is_bit_identical_to_live(seed):
    hdfs = make_hdfs(num_datanodes=3, seed=seed)
    _mutate_namespace(hdfs, seed)
    hdfs.sim.run_for(600.0)  # let the replication sweep settle first
    live_digest = hdfs.namenode.namespace_digest()
    live_fsck = fsck(hdfs.namenode).render()
    hdfs.crash_namenode()
    hdfs.recover_namenode()
    assert hdfs.namenode.namespace_digest() == live_digest
    hdfs.sim.run_for(600.0)  # block reports + sweep reconverge
    assert fsck(hdfs.namenode).render() == live_fsck


@pytest.mark.parametrize("seed", [1, 11])
def test_journal_on_and_off_are_bit_identical_fault_free(seed):
    digests = {}
    renders = {}
    clocks = {}
    for journal in (True, False):
        hdfs = make_hdfs(num_datanodes=3, seed=seed, journal=journal)
        _mutate_namespace(hdfs, seed)
        hdfs.sim.run_for(60.0)
        digests[journal] = hdfs.namenode.namespace_digest()
        renders[journal] = fsck(hdfs.namenode).render()
        clocks[journal] = (hdfs.sim.now, hdfs.sim.events_processed)
    assert digests[True] == digests[False]
    assert renders[True] == renders[False]
    assert clocks[True] == clocks[False]


@pytest.mark.parametrize("seed", [3, 17])
def test_torn_tail_loses_at_most_the_torn_record(seed):
    hdfs = make_hdfs(num_datanodes=3, seed=seed)
    _mutate_namespace(hdfs, seed)
    journal = hdfs.namenode.journal
    edits_before = journal.edits_logged
    assert journal.tear_tail() > 0
    hdfs.crash_namenode()
    hdfs.recover_namenode()
    recovery = journal.last_recovery
    assert recovery.torn_bytes > 0
    # Exactly one record was torn; everything before it replayed.
    assert recovery.replayed_edits == edits_before - 1
