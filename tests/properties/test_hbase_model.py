"""Model-based testing: HBase-lite vs a plain-dict reference.

Hypothesis drives random operation sequences — puts, column deletes,
row deletes, flushes, compactions, even RegionServer crash+recover —
against both the real store and a dict model.  After every sequence,
a full scan must agree with the model exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.hbase import Delete, Get, HBaseCluster, Put, Scan
from repro.hbase.region import RegionConfig

ROWS = [f"row{i}" for i in range(6)]
QUALIFIERS = ["a", "b"]

OPERATION = st.one_of(
    st.tuples(
        st.just("put"),
        st.sampled_from(ROWS),
        st.sampled_from(QUALIFIERS),
        st.text(alphabet="xyz09", min_size=1, max_size=5),
    ),
    st.tuples(st.just("delete_col"), st.sampled_from(ROWS),
              st.sampled_from(QUALIFIERS)),
    st.tuples(st.just("delete_row"), st.sampled_from(ROWS)),
    st.tuples(st.just("flush")),
    st.tuples(st.just("compact")),
    st.tuples(st.just("crash_recover")),
)


def apply_to_model(model: dict, op: tuple) -> None:
    kind = op[0]
    if kind == "put":
        _, row, qualifier, value = op
        model[(row, qualifier)] = value
    elif kind == "delete_col":
        _, row, qualifier = op
        model.pop((row, qualifier), None)
    elif kind == "delete_row":
        _, row = op
        for key in [k for k in model if k[0] == row]:
            del model[key]
    # flush/compact/crash_recover don't change visible contents.


def apply_to_store(hb: HBaseCluster, table, op: tuple) -> None:
    kind = op[0]
    if kind == "put":
        _, row, qualifier, value = op
        table.put(Put(row=row).add("f", qualifier, value))
    elif kind == "delete_col":
        _, row, qualifier = op
        table.delete(Delete(row=row).add_column("f", qualifier))
    elif kind == "delete_row":
        _, row = op
        table.delete(Delete(row=row))
    elif kind == "flush":
        table.flush()
    elif kind == "compact":
        for entry in hb.master.regions_of("t"):
            hb.master.region_handle(entry).compact()
    elif kind == "crash_recover":
        # Crash the server hosting the first region, then recover.
        victim = hb.master.regions_of("t")[0].server
        hb.crash_server(victim)
        hb.recover(victim)
        hb.servers[victim].alive = True  # node repaired for later ops


def store_contents(table) -> dict:
    contents = {}
    for row_result in table.scan(Scan()):
        for (family, qualifier), value in row_result.cells.items():
            contents[(row_result.row, qualifier)] = value
    return contents


class TestHBaseAgainstModel:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(OPERATION, min_size=1, max_size=25))
    def test_scan_matches_dict_model(self, ops):
        hb = HBaseCluster(
            num_servers=3,
            seed=17,
            wal_sync_every=1,  # full durability: crashes lose nothing
            region_config=RegionConfig(
                memstore_flush_bytes=256,  # frequent flushes
                compaction_min_hfiles=3,
                split_threshold_bytes=4 * 1024,  # splits under load
            ),
        )
        table = hb.create_table("t", families=["f"])
        model: dict = {}
        for op in ops:
            apply_to_store(hb, table, op)
            apply_to_model(model, op)
        assert store_contents(table) == model

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(OPERATION, min_size=1, max_size=20))
    def test_gets_match_model_per_row(self, ops):
        hb = HBaseCluster(num_servers=2, seed=18, wal_sync_every=1)
        table = hb.create_table("t", families=["f"])
        model: dict = {}
        for op in ops:
            apply_to_store(hb, table, op)
            apply_to_model(model, op)
        for row in ROWS:
            result = table.get(Get(row=row))
            expected = {
                ("f", q): v for (r, q), v in model.items() if r == row
            }
            assert result.cells == expected
