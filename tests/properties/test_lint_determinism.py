"""mrlint determinism: byte-identical output across runs and hash seeds.

The dataflow solver, the taint fixpoint and the renderers all promise
deterministic iteration order; this suite holds them to it.  Findings
must not depend on ``PYTHONHASHSEED`` (set-ordering bugs in the
analysis would leak straight into CI diffs and graded feedback), and
arbitrary syntactically-valid modules must lint identically twice.
"""

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_paths, lint_source, render_json, render_sarif

FIXTURES = Path(__file__).parent.parent / "analysis" / "fixtures"
REPO_SRC = Path(__file__).parent.parent.parent / "src"

_LINT_SNIPPET = """
import json
from repro.analysis import lint_paths, render_json
findings = lint_paths([{path!r}], families={families!r})
print(render_json(findings))
"""


def _lint_under_hashseed(path: Path, families: tuple, seed: str) -> str:
    code = _LINT_SNIPPET.format(path=str(path), families=families)
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(REPO_SRC),
            "PYTHONHASHSEED": seed,
            "PATH": "/usr/bin:/bin",
        },
        check=True,
    )
    return result.stdout


class TestHashSeedIndependence:
    def test_findings_identical_across_hash_seeds(self):
        """The full fixture corpus, linted under three different seeds."""
        families = ("jobs", "engine", "sparklite", "hive")
        outputs = {
            _lint_under_hashseed(FIXTURES, families, seed)
            for seed in ("0", "1", "424242")
        }
        assert len(outputs) == 1
        payload = json.loads(outputs.pop())
        assert payload["summary"]["total"] > 0

    def test_interprocedural_chain_stable_across_hash_seeds(self):
        target = FIXTURES / "interproc_mrj001_buggy.py"
        outputs = {
            _lint_under_hashseed(target, ("jobs",), seed)
            for seed in ("7", "1337")
        }
        assert len(outputs) == 1


class TestRepeatability:
    def test_fixture_corpus_lints_identically_twice(self):
        families = ("jobs", "engine", "sparklite", "hive")
        first = render_json(lint_paths([FIXTURES], families=families))
        second = render_json(lint_paths([FIXTURES], families=families))
        assert first == second

    def test_sarif_identical_twice(self):
        findings = lint_paths([FIXTURES], families=("jobs",))
        assert render_sarif(findings) == render_sarif(findings)


_IDENT = st.sampled_from(
    ["alpha", "beta", "gamma", "counts", "acc", "rng", "value", "key"]
)
_NONDET = st.sampled_from(
    ["random.random()", "time.time()", "os.urandom(4)", "uuid.uuid4()"]
)


@st.composite
def task_modules(draw):
    """Small synthetic Mapper modules, some buggy, some clean."""
    helper = draw(_IDENT)
    attr = draw(_IDENT)
    nondet = draw(_NONDET)
    buggy = draw(st.booleans())
    via_helper = draw(st.booleans())
    body = nondet if buggy else "1.0"
    if via_helper:
        lines = [
            "import os, random, time, uuid",
            f"def {helper}():",
            f"    return {body}",
            "class M(Mapper):",
            "    def map(self, key, value, context):",
            f"        context.write(key, {helper}())",
        ]
    else:
        lines = [
            "import os, random, time, uuid",
            "class M(Mapper):",
            "    def map(self, key, value, context):",
            f"        self.{attr} = {body}",
            f"        context.write(key, self.{attr})",
        ]
    return "\n".join(lines) + "\n", buggy


class TestPropertyLint:
    @settings(max_examples=40, deadline=None)
    @given(task_modules())
    def test_lint_is_pure_and_matches_bugginess(self, module):
        source, buggy = module
        first = lint_source(source, "gen.py", families=("jobs",))
        second = lint_source(source, "gen.py", families=("jobs",))
        assert [f.as_dict() for f in first] == [f.as_dict() for f in second]
        if buggy:
            assert any(f.rule == "MRJ001" for f in first)
        else:
            assert all(f.rule != "MRJ001" for f in first)
