"""Property: the survey synthesizer hits arbitrary feasible targets."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.survey.dataset import fit_integer_sample
from repro.survey.likert import PROFICIENCY_SCALE, TIME_SCALE, Scale
from repro.survey.stats import mean_std_of
from repro.util.rng import RngStream

SETTINGS = settings(max_examples=40, deadline=None)


def feasible_std_bound(mean: float, scale: Scale, n: int) -> float:
    """A loose upper bound on achievable sample std for a clipped mean."""
    spread = min(mean - scale.low, scale.high - mean)
    return max(0.3, spread)


def min_feasible_std(mean: float) -> float:
    """Integer samples with a fractional mean cannot have tiny std: a
    mix of floor/ceil values already spreads by ~sqrt(f(1-f))."""
    frac = mean - int(mean)
    return (frac * (1 - frac)) ** 0.5


class TestFitProperties:
    @SETTINGS
    @given(
        mean=st.floats(min_value=0.5, max_value=9.5),
        std_frac=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_proficiency_targets_hit(self, mean, std_frac, seed):
        std = std_frac * feasible_std_bound(mean, PROFICIENCY_SCALE, 29)
        assume(std >= min_feasible_std(mean) - 0.05)
        values = fit_integer_sample(
            29, mean, std, PROFICIENCY_SCALE, RngStream(seed).child("p")
        )
        assert all(0 <= v <= 10 for v in values)
        got_mean, got_std = mean_std_of(values)
        assert abs(got_mean - mean) < 0.15
        assert abs(got_std - std) < 0.25

    @SETTINGS
    @given(
        mean=st.floats(min_value=1.2, max_value=3.8),
        std=st.floats(min_value=0.2, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_time_scale_targets(self, mean, std, seed):
        assume(std <= feasible_std_bound(mean, TIME_SCALE, 29) + 0.3)
        assume(std >= min_feasible_std(mean) - 0.05)
        values = fit_integer_sample(
            29, mean, std, TIME_SCALE, RngStream(seed).child("t")
        )
        assert all(1 <= v <= 4 for v in values)
        got_mean, _ = mean_std_of(values)
        assert abs(got_mean - mean) < 0.15

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_deterministic_per_seed(self, seed):
        a = fit_integer_sample(
            29, 3.0, 0.9, TIME_SCALE, RngStream(seed).child("d")
        )
        b = fit_integer_sample(
            29, 3.0, 0.9, TIME_SCALE, RngStream(seed).child("d")
        )
        assert a == b
