"""Hypothesis differential suite: compiled workloads ≡ reference paths.

Random pipelines and random tables, two evaluators each:

- sparklite: random element mixes and transformation chains run on
  ``sparklite_backend="local"`` and ``"mapreduce"`` must collect the
  exact same list (order, values, types);
- Hive: random tables and ORDER BY queries answered by the legacy
  driver-side sort and the multi-stage total-order sort stage must
  return the exact same rows.

Pipelines use module-level functions only, so the compiled runs stay
poolable — and any silent fallback would still be caught by identity.
"""

from hypothesis import given, settings, strategies as st

from repro.hive import ColumnType, HiveLite, TableSchema
from repro.sparklite import SparkLiteContext
from tests.conftest import make_mr

# -- sparklite ------------------------------------------------------------


def double(x):
    return x * 2


def negate(x):
    return -x


def is_positive(x):
    return x > 0


def fan(x):
    return [x, -x]


def pair_mod3(x):
    return (x % 3, x)


def add(a, b):
    return a + b


def subtract(a, b):  # non-associative on purpose
    return a - b


STEPS = st.sampled_from(
    [
        ("map-double", lambda r: r.map(double)),
        ("map-negate", lambda r: r.map(negate)),
        ("filter-positive", lambda r: r.filter(is_positive)),
        ("flat-fan", lambda r: r.flat_map(fan)),
        ("distinct", lambda r: r.distinct(2)),
    ]
)

WIDE = st.sampled_from(
    [
        ("fold-add", lambda r: r.map(pair_mod3).reduce_by_key(add, 2)),
        ("fold-sub", lambda r: r.map(pair_mod3).reduce_by_key(subtract, 2)),
        ("group", lambda r: r.map(pair_mod3).group_by_key(3)),
    ]
)


class TestSparkliteCompiledEqualsLocal:
    @settings(max_examples=12, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=-30, max_value=30), max_size=25),
        steps=st.lists(STEPS, max_size=3),
        wide=WIDE,
        num_partitions=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=1, max_value=3),
    )
    def test_random_pipelines_bit_identical(
        self, data, steps, wide, num_partitions, seed
    ):
        def run(sc):
            rdd = sc.parallelize(data, num_partitions)
            for _name, step in steps:
                rdd = step(rdd)
            rdd = wide[1](rdd)
            return rdd.collect()

        local = run(SparkLiteContext.local(num_executors=3))
        compiled = run(
            SparkLiteContext.on_mapreduce(num_workers=4, seed=seed)
        )
        assert compiled == local


# -- Hive ------------------------------------------------------------------

ROW = st.tuples(
    st.integers(min_value=0, max_value=5),  # grp
    st.integers(min_value=-100, max_value=100),  # score
    st.floats(
        min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
    ),
)

HIVE_SQL = st.sampled_from(
    [
        "SELECT grp, SUM(score) FROM t GROUP BY grp ORDER BY SUM(score)",
        "SELECT grp, AVG(weight) FROM t GROUP BY grp "
        "ORDER BY AVG(weight) DESC LIMIT 3",
        "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY COUNT(*) DESC",
        "SELECT grp, score FROM t ORDER BY score LIMIT 5",
        "SELECT grp, weight FROM t ORDER BY weight DESC",
    ]
)


class TestHiveMultiStageEqualsLegacy:
    @settings(max_examples=10, deadline=None)
    @given(rows=st.lists(ROW, min_size=0, max_size=20), sql=HIVE_SQL)
    def test_sort_stage_equals_driver_sort(self, rows, sql):
        def build(multi_stage):
            engine = HiveLite(
                make_mr(num_workers=4, block_size=4096),
                multi_stage=multi_stage,
                sort_partitions=3,
            )
            engine.create_table(
                TableSchema(
                    name="t",
                    columns=(
                        ("grp", ColumnType.INT),
                        ("score", ColumnType.INT),
                        ("weight", ColumnType.FLOAT),
                    ),
                    location="/warehouse/t.csv",
                ),
                data="".join(f"{g},{s},{w!r}\n" for g, s, w in rows),
            )
            return engine

        legacy = build(multi_stage=False).execute(sql)
        staged = build(multi_stage=True).execute(sql)
        assert staged.rows == legacy.rows
        assert staged.columns == legacy.columns
