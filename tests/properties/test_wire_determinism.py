"""Property: the framed shuffle transport is invisible to results.

The binary wire codec (``repro.mapreduce.wire``) only changes how
pooled task payloads cross the process boundary.  Everything the
simulation can observe — counters, output pairs, simulated clocks,
event counts — must be bit-identical between
``shuffle_transport="framed"`` and ``"object"``, on the local runner
and the cluster, with spilling on, and under every chaos drill with
the runtime sanitizer watching.
"""

import warnings

import pytest

from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.wordcount import WordCountJob, WordCountWithCombinerJob
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.local_runner import LocalJobRunner

ALL_DRILLS = tuple(SCENARIOS)

CORPUS = (
    "the quick brown fox jumps over the lazy dog\n" * 300
    + "pack my box with five dozen liquor jugs\n" * 200
)


def _mr_config(transport, backend="pooled", spill=None):
    return MapReduceConfig(
        execution_backend=backend,
        backend_workers=2,
        shuffle_transport=transport,
        spill_record_limit=spill,
    )


def _local_fingerprint(mr_config, job_cls=WordCountWithCombinerJob):
    fs = LinuxFileSystem()
    fs.write_file("/data/corpus.txt", CORPUS)
    with LocalJobRunner(
        localfs=fs, mr_config=mr_config, split_size=8 * 1024
    ) as runner:
        job = job_cls(JobConf(name="wc", num_reduces=3))
        result = runner.run(job, "/data/corpus.txt", "/out")
        return (
            result.simulated_seconds,
            result.counters.as_dict(),
            tuple(sorted(result.pairs)),
            result.num_splits,
        )


def _cluster_fingerprint(mr_config):
    with MapReduceCluster(num_workers=4, seed=11, mr_config=mr_config) as mr:
        mr.client().put_text("/in/corpus.txt", CORPUS)
        job = WordCountWithCombinerJob(JobConf(name="wc", num_reduces=3))
        report = mr.run_job(job, "/in", "/out", require_success=True)
        return (
            report.elapsed,
            report.counters.as_dict(),
            tuple(sorted(mr.read_output("/out"))),
            mr.sim.now,
            mr.sim.events_processed,
        )


class TestFramedEqualsObject:
    @pytest.mark.parametrize("job_cls", [WordCountJob, WordCountWithCombinerJob])
    def test_local_runner_bit_identical(self, job_cls):
        with warnings.catch_warnings():
            # an inline/pickle fallback would mask a broken framed path
            warnings.simplefilter("error", RuntimeWarning)
            framed = _local_fingerprint(_mr_config("framed"), job_cls)
            plain = _local_fingerprint(_mr_config("object"), job_cls)
        assert framed == plain

    def test_local_runner_matches_serial(self):
        framed = _local_fingerprint(_mr_config("framed"))
        serial = _local_fingerprint(_mr_config("framed", backend="serial"))
        assert framed == serial

    def test_cluster_bit_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            framed = _cluster_fingerprint(_mr_config("framed"))
            plain = _cluster_fingerprint(_mr_config("object"))
        assert framed == plain

    def test_cluster_framed_matches_serial(self):
        framed = _cluster_fingerprint(_mr_config("framed"))
        serial = _cluster_fingerprint(_mr_config("framed", backend="serial"))
        assert framed == serial

    def test_framed_with_spill_bit_identical(self):
        """Spilling and framing compose: still equal to the plain
        object run, with only spill accounting allowed to move."""
        framed = _local_fingerprint(_mr_config("framed", spill=128))
        plain = _local_fingerprint(_mr_config("object"))
        assert framed[2] == plain[2]  # identical output pairs
        fc, pc = framed[1], plain[1]
        for group in pc:
            for name in pc[group]:
                if name == "Spilled Records":
                    continue
                assert fc[group][name] == pc[group][name], (group, name)


class TestChaosDrillsFramed:
    """The five drills, pooled + framed + sanitizer: heal and match."""

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_drill_heals_framed(self, name):
        result = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="framed"
        )
        assert result.ok, result.summary()

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_framed_drill_matches_object_drill(self, name):
        framed = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="framed"
        )
        plain = run_scenario(
            name, seed=0, backend="pooled", sanitize=True, transport="object"
        )
        assert framed.output_files == plain.output_files
        assert framed.baseline_files == plain.baseline_files
        assert framed.fault_log == plain.fault_log
