"""Property: the sanitizer observes chaos without perturbing it.

Satellite of the mrlint PR: every chaos drill run with
``sanitize=True`` must (a) still heal — all scenario checks pass,
including the new "zero sanitizer violations" check — and (b) produce
output files bit-identical to the unsanitized drill at the same seed.
The engine watching itself must not change what it sees.
"""

import pytest

from repro.faults.scenarios import SCENARIOS, run_scenario

ALL_DRILLS = tuple(SCENARIOS)


class TestSanitizedChaosDrills:
    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_drill_heals_with_zero_violations(self, name):
        result = run_scenario(name, seed=0, sanitize=True)
        assert result.ok, result.summary()
        sanitizer_checks = [
            (label, passed)
            for label, passed, _ in result.checks
            if "sanitizer" in label
        ]
        assert sanitizer_checks, "sanitize=True must add a sanitizer check"
        assert all(passed for _, passed in sanitizer_checks)

    @pytest.mark.parametrize("name", ALL_DRILLS)
    def test_sanitized_drill_is_bit_identical(self, name):
        plain = run_scenario(name, seed=0)
        sanitized = run_scenario(name, seed=0, sanitize=True)
        assert sanitized.output_files == plain.output_files
        assert sanitized.baseline_files == plain.baseline_files
        assert sanitized.fault_log == plain.fault_log
