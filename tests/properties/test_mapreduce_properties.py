"""Property-based tests on MapReduce invariants.

The headline property is Lin's monoid law: with a lawful combiner, the
job's answer is independent of split boundaries, reduce counts, and
whether the combiner runs at all.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.hdfs.localfs import LinuxFileSystem
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.streaming import streaming_job
from repro.mapreduce.types import (
    FloatWritable,
    IntWritable,
    Text,
    record_writable,
)

SETTINGS = settings(max_examples=30, deadline=None)
FAST = settings(max_examples=100, deadline=None)

WORDS = st.lists(
    st.text(alphabet="abcde", min_size=1, max_size=4), min_size=0, max_size=80
)


def run_wc(text: str, split_size: int, combine: bool, num_reduces: int = 1):
    fs = LinuxFileSystem()
    fs.write_file("/in.txt", text)
    job = streaming_job(
        name="wc",
        map_fn=lambda k, v: ((w, 1) for w in v.split()),
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        combine_fn=(lambda k, vs: [(k, sum(vs))]) if combine else None,
        num_reduces=num_reduces,
    )
    runner = LocalJobRunner(localfs=fs, split_size=split_size)
    return runner.run(job, "/in.txt", "/out")


class TestWordCountProperties:
    @SETTINGS
    @given(words=WORDS)
    def test_matches_counter(self, words):
        text = " ".join(words)
        result = run_wc(text + "\n" if text else "", split_size=64, combine=False)
        assert {k: int(v) for k, v in result.pairs} == dict(Counter(words))

    @SETTINGS
    @given(words=WORDS, split_size=st.integers(min_value=4, max_value=256))
    def test_split_size_invariance(self, words, split_size):
        text = "\n".join(" ".join(words[i : i + 5]) for i in range(0, len(words), 5))
        baseline = run_wc(text, split_size=10_000, combine=False)
        chunked = run_wc(text, split_size=split_size, combine=False)
        assert sorted(baseline.pairs) == sorted(chunked.pairs)

    @SETTINGS
    @given(
        words=WORDS,
        split_size=st.integers(min_value=8, max_value=128),
        num_reduces=st.integers(min_value=1, max_value=5),
    )
    def test_combiner_monoid_law(self, words, split_size, num_reduces):
        """Plain == combined, for every split/reduce configuration."""
        text = " ".join(words)
        plain = run_wc(text, split_size=split_size, combine=False,
                       num_reduces=num_reduces)
        combined = run_wc(text, split_size=split_size, combine=True,
                          num_reduces=num_reduces)
        assert sorted(plain.pairs) == sorted(combined.pairs)

    @SETTINGS
    @given(words=WORDS, num_reduces=st.integers(min_value=1, max_value=6))
    def test_reduce_count_invariance(self, words, num_reduces):
        text = " ".join(words)
        one = run_wc(text, split_size=64, combine=True, num_reduces=1)
        many = run_wc(text, split_size=64, combine=True, num_reduces=num_reduces)
        assert sorted(one.pairs) == sorted(many.pairs)


class TestAverageMonoid:
    """(sum, count) pairs are the monoid that makes averaging combinable."""

    SumCount = record_writable("SC", [("total", float), ("count", int)])

    @SETTINGS
    @given(
        values=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=60,
        ),
        split_size=st.integers(min_value=8, max_value=64),
    )
    def test_average_via_sumcount_invariant(self, values, split_size):
        text = "\n".join(f"{k},{v}" for k, v in values)
        SumCount = self.SumCount

        def map_fn(key, line):
            k, v = line.split(",")
            yield k, SumCount(total=float(v), count=1)

        def merge(key, partials):
            total = sum(p.total for p in partials)
            count = sum(p.count for p in partials)
            return [(key, SumCount(total=total, count=count))]

        def finish(key, partials):
            total = sum(p.total for p in partials)
            count = sum(p.count for p in partials)
            return [(key, total / count)]

        fs = LinuxFileSystem()
        fs.write_file("/in.txt", text)
        job = streaming_job("avg", map_fn, finish, combine_fn=merge)
        result = LocalJobRunner(localfs=fs, split_size=split_size).run(
            job, "/in.txt", "/out"
        )
        expected: dict[str, list] = {}
        for k, v in values:
            expected.setdefault(k, []).append(v)
        for key, value in result.pairs:
            truth = sum(expected[key]) / len(expected[key])
            assert abs(float(value) - truth) < 1e-9


class TestWritableProperties:
    @FAST
    @given(st.text(alphabet=st.characters(blacklist_characters="\x01"), max_size=50))
    def test_text_round_trip(self, value):
        assert Text.decode(Text(value).encode()).value == value

    @FAST
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_int_round_trip(self, value):
        assert IntWritable.decode(IntWritable(value).encode()).value == value

    @FAST
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_round_trip_exact(self, value):
        decoded = FloatWritable.decode(FloatWritable(value).encode())
        assert decoded.value == value

    @FAST
    @given(
        total=st.floats(allow_nan=False, allow_infinity=False, width=32),
        count=st.integers(min_value=0, max_value=10**9),
    )
    def test_record_round_trip(self, total, count):
        SumCount = self.__class__.SumCount if hasattr(self.__class__, "SumCount") else record_writable(
            "RT", [("total", float), ("count", int)]
        )
        value = SumCount(total=float(total), count=count)
        assert SumCount.decode(value.encode()) == value

    SumCount = record_writable("RT", [("total", float), ("count", int)])


class TestPartitionerProperties:
    @FAST
    @given(
        key=st.text(min_size=0, max_size=30),
        num_reduces=st.integers(min_value=1, max_value=64),
    )
    def test_partition_in_range_and_stable(self, key, num_reduces):
        partitioner = HashPartitioner()
        first = partitioner.partition(Text(key), num_reduces)
        assert 0 <= first < num_reduces
        assert partitioner.partition(Text(key), num_reduces) == first
