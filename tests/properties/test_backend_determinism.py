"""Serial vs pooled execution: bit-identical simulated universes.

The ExecutionBackend contract (see ``repro.mapreduce.backend``): pooled
backends may run task attempts' real work in parallel, but counters,
output pairs and *simulated* clocks must equal a serial run exactly —
parallelism is an optimisation of host wall-clock, never a semantic.
"""

import warnings

import pytest

from repro.datasets.movielens import generate_movielens
from repro.hdfs.localfs import LinuxFileSystem
from repro.jobs.movie_genres import GenreStatsJob
from repro.jobs.wordcount import WordCountWithCombinerJob
from repro.mapreduce.backend import create_backend
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.local_runner import LocalJobRunner

BACKENDS = ("pooled", "pooled-threads")

CORPUS = (
    "the quick brown fox jumps over the lazy dog\n" * 400
    + "pack my box with five dozen liquor jugs\n" * 250
)


def _cluster_fingerprint(backend_name):
    backend = create_backend(backend_name, 2)
    with MapReduceCluster(num_workers=4, seed=11, backend=backend) as mr:
        mr.client().put_text("/in/corpus.txt", CORPUS)
        job = WordCountWithCombinerJob(JobConf(name="wc", num_reduces=3))
        report = mr.run_job(job, "/in", "/out", require_success=True)
        return (
            report.elapsed,
            report.counters.as_dict(),
            tuple(sorted(mr.read_output("/out"))),
            mr.sim.now,
            mr.sim.events_processed,
        )


def _local_fingerprint(backend_name, job_factory, files):
    fs = LinuxFileSystem()
    for path, text in files.items():
        fs.write_file(path, text)
    backend = create_backend(backend_name, 2)
    with LocalJobRunner(
        localfs=fs, backend=backend, split_size=8 * 1024
    ) as runner:
        result = runner.run(job_factory(), list(files)[0], "/out")
        return (
            result.simulated_seconds,
            result.counters.as_dict(),
            tuple(sorted(result.pairs)),
            result.num_splits,
        )


class TestClusterDeterminism:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_wordcount_identical_to_serial(self, backend_name):
        serial = _cluster_fingerprint("serial")
        with warnings.catch_warnings():
            # Any inline fallback would hide a broken pooled path.
            warnings.simplefilter("error", RuntimeWarning)
            pooled = _cluster_fingerprint(backend_name)
        assert pooled == serial


class TestLocalRunnerDeterminism:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_wordcount_identical_to_serial(self, backend_name):
        files = {"/data/corpus.txt": CORPUS}

        def job():
            return WordCountWithCombinerJob(JobConf(name="wc", num_reduces=2))

        serial = _local_fingerprint("serial", job, files)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            pooled = _local_fingerprint(backend_name, job, files)
        assert pooled == serial

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_movie_ratings_job_runs_inline_identically(self, backend_name):
        """GenreStatsJob reads a side file via node-state sharing, so a
        pooled backend must route it inline — and still match serial."""
        data = generate_movielens(
            seed=7, num_ratings=800, num_movies=40, num_users=50
        )
        files = {
            "/ratings.dat": data.ratings_text,
            "/movies.dat": data.movies_text,
        }
        assert GenreStatsJob.shares_node_state

        def job():
            return GenreStatsJob(movies_path="/movies.dat", strategy="cached")

        serial = _local_fingerprint("serial", job, files)
        pooled = _local_fingerprint(backend_name, job, files)
        assert pooled == serial
