"""Property: snapshot -> restore -> run is bit-identical to never pausing.

For randomly drawn campus workloads — students, submission windows,
snapshot instants, chaos on or off — a run captured mid-flight with
``sim.snapshot()`` and continued from the restored copy must end in
exactly the state of the run that never paused: same simulated clock,
same engine event count, same per-user completions and wait sums, same
fsck verdict.  The :meth:`CampusClusterRun.digest` hash folds all of
those observables together, so one string equality is the whole claim.
"""

from hypothesis import given, settings, strategies as st

from repro.core.campus import CampusClusterRun, CampusScenario


def small_scenario(seed: int, chaos: bool) -> CampusScenario:
    return CampusScenario(
        name="prop",
        num_students=24,
        num_clusters=1,
        jobs_per_student=2,
        window=900.0,
        chaos_interval=240.0 if chaos else 0.0,
        seed=seed,
    )


class TestSnapshotDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        chaos=st.booleans(),
        pause_fraction=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_mid_run_restore_matches_uninterrupted_run(
        self, seed, chaos, pause_fraction
    ):
        scenario = small_scenario(seed, chaos)

        straight = CampusClusterRun(scenario, 0)
        straight_stats = straight.run_to_completion()
        straight.close()

        paused = CampusClusterRun(scenario, 0)
        paused.sim.run_until(
            paused.sim.now + scenario.window * pause_fraction
        )
        snapshot = paused.sim.snapshot(paused)
        resumed_stats = paused.run_to_completion()
        paused.close()

        _sim, (restored,) = snapshot.restore()
        restored_stats = restored.run_to_completion()
        restored.close()

        assert resumed_stats.digest == straight_stats.digest
        assert restored_stats.digest == straight_stats.digest
        # The digest folds these in, but assert the headline counters
        # directly so a failure names the divergent observable.
        assert restored_stats.jobs_succeeded == straight_stats.jobs_succeeded
        assert restored_stats.events_processed == straight_stats.events_processed
        assert restored_stats.sim_seconds == straight_stats.sim_seconds
        assert (
            restored_stats.per_user_completed
            == straight_stats.per_user_completed
        )
