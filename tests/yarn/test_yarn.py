"""YARN-lite: resources, containers, scheduling policies, recovery."""

import pytest

from repro.util.errors import ConfigError, ReproError
from repro.util.units import GB
from repro.yarn import (
    Application,
    Container,
    ContainerState,
    Resource,
    TaskSpec,
    YarnCluster,
)
from repro.yarn.application import AppState
from repro.yarn.resources import DEFAULT_CONTAINER


class TestResource:
    def test_fits_in(self):
        small = Resource(memory=GB, vcores=1)
        big = Resource(memory=4 * GB, vcores=4)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_arithmetic(self):
        a = Resource(memory=2 * GB, vcores=2)
        b = Resource(memory=GB, vcores=1)
        assert (a + b).memory == 3 * GB
        assert (a - b).vcores == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            Resource(memory=-1, vcores=0)

    def test_describe(self):
        assert "MB" in Resource(memory=GB, vcores=2).describe()


class TestNodeManager:
    def test_capacity_accounting(self):
        cluster = YarnCluster(num_nodes=1)
        node = cluster.nodes["node0"]
        before = node.available
        app = Application("a", [TaskSpec(name="t", duration=100.0)])
        cluster.submit(app)
        cluster.sim.run_for(3.0)
        assert node.used == DEFAULT_CONTAINER
        assert node.available.memory == before.memory - DEFAULT_CONTAINER.memory

    def test_resources_released_on_completion(self):
        cluster = YarnCluster(num_nodes=1)
        app = Application("a", [TaskSpec(name="t", duration=2.0)])
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=60)
        assert cluster.nodes["node0"].used == Resource.zero()

    def test_overcommit_rejected(self):
        cluster = YarnCluster(
            num_nodes=1, node_capacity=Resource(memory=GB, vcores=1)
        )
        node = cluster.nodes["node0"]
        with pytest.raises(ReproError):
            node.launch("app", Resource(memory=2 * GB, vcores=1), 1.0)

    def test_dead_node_rejects_launch(self):
        cluster = YarnCluster(num_nodes=1)
        cluster.crash_node("node0")
        with pytest.raises(ReproError):
            cluster.nodes["node0"].launch("app", DEFAULT_CONTAINER, 1.0)

    def test_kill_container(self):
        cluster = YarnCluster(num_nodes=1)
        app = Application("a", [TaskSpec(name="t", duration=100.0)])
        cluster.submit(app)
        cluster.sim.run_for(3.0)
        container_id = next(iter(app.running))
        cluster.nodes["node0"].kill_container(container_id, "preempted")
        cluster.sim.run_for(2.0)
        # The AM saw the kill and re-queued the task.
        assert app.pending or app.running


class TestApplicationLifecycle:
    def test_simple_app_succeeds(self):
        cluster = YarnCluster(num_nodes=2)
        app = Application(
            "wc", [TaskSpec(name=f"t{i}", duration=3.0) for i in range(8)]
        )
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=600)
        assert app.state == AppState.SUCCEEDED
        assert app.progress == 1.0

    def test_payload_results_collected(self):
        cluster = YarnCluster(num_nodes=1)
        app = Application(
            "calc",
            [TaskSpec(name="t", duration=1.0, payload=lambda: 7 * 6)],
        )
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=60)
        assert app.results["t"] == 42

    def test_empty_app_rejected(self):
        with pytest.raises(ReproError):
            Application("empty", [])

    def test_retry_then_success(self):
        cluster = YarnCluster(num_nodes=2)
        app = Application(
            "flaky",
            [TaskSpec(name="x", duration=2.0, failures_before_success=2)],
        )
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=600)
        assert app.state == AppState.SUCCEEDED
        assert app.attempts["x"] == 3

    def test_exhausted_retries_fail_app(self):
        cluster = YarnCluster(num_nodes=2)
        app = Application(
            "doomed",
            [TaskSpec(name="x", duration=1.0, failures_before_success=99)],
            max_attempts_per_task=3,
        )
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=600)
        assert app.state == AppState.FAILED
        assert "3 times" in app.failure_reason

    def test_parallel_apps_both_finish(self):
        cluster = YarnCluster(num_nodes=4)
        apps = [
            Application(f"a{i}", [TaskSpec(name=f"t{j}", duration=2.0)
                                  for j in range(6)])
            for i in range(3)
        ]
        for app in apps:
            cluster.submit(app)
        cluster.run_until_finished(*apps, timeout=600)
        assert all(a.state == AppState.SUCCEEDED for a in apps)


class TestSchedulingPolicies:
    def _mixed_workload(self, policy):
        # Scarce capacity (8 concurrent containers) so policy matters.
        cluster = YarnCluster(
            num_nodes=2,
            policy=policy,
            node_capacity=Resource(memory=8 * GB, vcores=4),
        )
        big = Application(
            "batch", [TaskSpec(name=f"b{i}", duration=8.0) for i in range(60)]
        )
        small = Application(
            "query", [TaskSpec(name=f"q{i}", duration=2.0) for i in range(4)]
        )
        cluster.submit(big)
        cluster.sim.run_for(2.0)
        cluster.submit(small)
        cluster.run_until_finished(small, timeout=3600)
        return cluster.sim.now, big

    def test_fair_lets_small_job_through(self):
        fair_time, big = self._mixed_workload("fair")
        assert big.progress < 1.0  # the query did not wait for the batch

    def test_fifo_starves_small_job(self):
        fifo_time, big_fifo = self._mixed_workload("fifo")
        fair_time, _big = self._mixed_workload("fair")
        # Under FIFO the query waits behind most of the batch.
        assert fifo_time > fair_time * 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            YarnCluster(num_nodes=1, policy="chaos")


class TestLocality:
    def test_preferred_node_honored_when_free(self):
        cluster = YarnCluster(num_nodes=3)
        app = Application(
            "local",
            [TaskSpec(name="t", duration=2.0, preferred_nodes=("node2",))],
        )
        cluster.submit(app)
        cluster.sim.run_for(3.0)
        hosted = [
            name
            for name, nm in cluster.nodes.items()
            if any(
                c.application_id == app.application_id
                for c in nm.containers.values()
            )
        ]
        assert hosted == ["node2"]

    def test_delay_scheduling_falls_back(self):
        cluster = YarnCluster(
            num_nodes=2, node_capacity=Resource(memory=2 * GB, vcores=1)
        )
        # Fill the preferred node with a long task.
        blocker = Application(
            "blocker",
            [TaskSpec(name="b", duration=1000.0,
                      preferred_nodes=("node0",))],
        )
        cluster.submit(blocker)
        cluster.sim.run_for(3.0)
        app = Application(
            "wants-node0",
            [TaskSpec(name="t", duration=2.0, preferred_nodes=("node0",))],
        )
        cluster.submit(app)
        cluster.run_until_finished(app, timeout=120)
        # It gave up on locality after the delay and ran on node1.
        assert app.state == AppState.SUCCEEDED


class TestNodeLossRecovery:
    def test_containers_rescheduled_after_node_loss(self):
        cluster = YarnCluster(num_nodes=3)
        app = Application(
            "survivor",
            [TaskSpec(name=f"s{i}", duration=40.0) for i in range(6)],
        )
        cluster.submit(app)
        cluster.sim.run_for(5.0)
        victim = next(
            name for name, nm in cluster.nodes.items() if nm.containers
        )
        cluster.crash_node(victim)
        cluster.run_until_finished(app, timeout=3600)
        assert app.state == AppState.SUCCEEDED
        assert app.containers_lost > 0

    def test_lost_node_removed_from_capacity(self):
        cluster = YarnCluster(num_nodes=3)
        before = cluster.rm.cluster_capacity()
        cluster.crash_node("node1")
        cluster.sim.run_for(60.0)  # past the heartbeat timeout
        after = cluster.rm.cluster_capacity()
        assert after.memory == before.memory * 2 // 3

    def test_node_loss_does_not_count_against_retries(self):
        cluster = YarnCluster(num_nodes=3)
        app = Application(
            "fragile",
            [TaskSpec(name="t", duration=40.0)],
            max_attempts_per_task=99,
        )
        cluster.submit(app)
        cluster.sim.run_for(3.0)
        victim = next(
            name for name, nm in cluster.nodes.items() if nm.containers
        )
        cluster.crash_node(victim)
        cluster.run_until_finished(app, timeout=3600)
        assert app.state == AppState.SUCCEEDED
