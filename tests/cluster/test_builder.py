"""Figure-1 cluster builders and their scan-time models."""

import pytest

from repro.cluster.builder import build_hadoop_cluster, build_hpc_cluster
from repro.cluster.hardware import NodeSpec
from repro.util.units import GB, MB


class TestHadoopBuilder:
    def test_default_is_paper_cluster(self):
        hadoop = build_hadoop_cluster()
        assert len(hadoop.topology) == 8
        assert hadoop.topology.num_racks() == 1
        node = hadoop.topology.node("node0")
        assert node.spec.disk_bytes == 850 * GB

    def test_scan_splits_across_nodes(self):
        hadoop = build_hadoop_cluster(num_workers=4)
        t4 = hadoop.scan_time(100 * GB)
        hadoop8 = build_hadoop_cluster(num_workers=8)
        t8 = hadoop8.scan_time(100 * GB)
        assert t8 == pytest.approx(t4 / 2)

    def test_scan_overlap_compute_dominates_when_larger(self):
        hadoop = build_hadoop_cluster(num_workers=4)
        io_only = hadoop.scan_time(1 * GB)
        assert hadoop.scan_time(1 * GB, overlap_compute=io_only * 10) == (
            pytest.approx(io_only * 10)
        )

    def test_scan_requires_live_nodes(self):
        hadoop = build_hadoop_cluster(num_workers=2)
        for node in hadoop.topology.nodes():
            node.mark_down()
        with pytest.raises(ValueError):
            hadoop.scan_time(GB)


class TestHpcBuilder:
    def test_compute_nodes_have_small_scratch(self):
        hpc = build_hpc_cluster(num_compute=8)
        assert hpc.topology.node("node0").spec.disk_bytes == 100 * GB

    def test_scan_flattens_at_saturation(self):
        hpc_small = build_hpc_cluster(
            num_compute=8, storage_aggregate_bw=1000 * MB
        )
        hpc_large = build_hpc_cluster(
            num_compute=64, storage_aggregate_bw=1000 * MB
        )
        # Both are past saturation (8 * 125MB/s = 1GB/s): same total time.
        assert hpc_small.scan_time(100 * GB) == pytest.approx(
            hpc_large.scan_time(100 * GB)
        )

    def test_hadoop_beats_hpc_beyond_saturation(self):
        """The Figure-1 claim: data locality wins at scale."""
        data = 10 * 1024 * GB
        n = 128
        hpc = build_hpc_cluster(num_compute=n, storage_aggregate_bw=4000 * MB)
        hadoop = build_hadoop_cluster(num_workers=n, nodes_per_rack=16)
        assert hadoop.scan_time(data) < hpc.scan_time(data)

    def test_custom_spec_respected(self):
        spec = NodeSpec(disk_bytes=10 * GB)
        hpc = build_hpc_cluster(num_compute=2, spec=spec)
        assert hpc.topology.node("node1").spec.disk_bytes == 10 * GB
