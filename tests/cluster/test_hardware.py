"""Node specs and state."""

import pytest

from repro.cluster.hardware import CLEMSON_NODE_SPEC, Node, NodeSpec, NodeState
from repro.util.units import GB


class TestNodeSpec:
    def test_clemson_spec_matches_paper(self):
        # "Each node had dual 8-core CPUs, 64GB RAM, and 850GB HDD."
        assert CLEMSON_NODE_SPEC.cores == 16
        assert CLEMSON_NODE_SPEC.ram_bytes == 64 * GB
        assert CLEMSON_NODE_SPEC.disk_bytes == 850 * GB

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"ram_bytes": 0},
            {"disk_bytes": -1},
            {"disk_read_bw": 0},
            {"nic_bw": -5},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)


class TestNode:
    def test_disk_provisioned_from_spec(self):
        node = Node(name="n1")
        assert node.disk.capacity == CLEMSON_NODE_SPEC.disk_bytes
        assert node.disk.free == node.disk.capacity

    def test_state_transitions(self):
        node = Node(name="n1")
        assert node.is_up
        node.mark_down()
        assert node.state == NodeState.DOWN
        assert not node.is_up
        node.mark_up()
        assert node.is_up

    def test_network_location(self):
        node = Node(name="n3", rack_name="rack1")
        assert node.network_location == "/rack1/n3"

    def test_hashable_by_name(self):
        assert len({Node(name="a"), Node(name="a")}) == 1
