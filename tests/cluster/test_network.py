"""Network cost model and traffic counters."""

import pytest

from repro.cluster.network import NetworkModel, TrafficCounters
from repro.cluster.topology import ClusterTopology
from repro.util.units import MB


@pytest.fixture
def net():
    topo = ClusterTopology.regular(num_nodes=6, nodes_per_rack=3)
    return NetworkModel(topology=topo, nic_bw=100 * MB, rack_oversubscription=4.0)


class TestBandwidth:
    def test_node_local_is_free(self, net):
        assert net.bandwidth_between("node0", "node0") == float("inf")
        assert net.transfer_time("node0", "node0", 10 * MB) == 0.0

    def test_rack_local_full_nic(self, net):
        assert net.bandwidth_between("node0", "node1") == 100 * MB

    def test_cross_rack_oversubscribed(self, net):
        assert net.bandwidth_between("node0", "node3") == 25 * MB

    def test_transfer_time_scales_linearly(self, net):
        t1 = net.transfer_time("node0", "node1", 10 * MB)
        t2 = net.transfer_time("node0", "node1", 20 * MB)
        assert t2 - net.latency > (t1 - net.latency) * 1.99

    def test_cross_rack_slower_than_rack_local(self, net):
        rack = net.transfer_time("node0", "node1", 50 * MB)
        cross = net.transfer_time("node0", "node3", 50 * MB)
        assert cross > rack

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValueError):
            net.transfer_time("node0", "node1", -1)


class TestCounters:
    def test_buckets(self, net):
        net.transfer_time("node0", "node0", 100)
        net.transfer_time("node0", "node1", 200)
        net.transfer_time("node0", "node3", 300)
        counters = net.counters
        assert counters.node_local == 100
        assert counters.rack_local == 200
        assert counters.off_rack == 300
        assert counters.network_bytes == 500
        assert counters.total_bytes == 600

    def test_reset(self, net):
        net.transfer_time("node0", "node1", 200)
        net.reset_counters()
        assert net.counters.total_bytes == 0

    def test_merged(self):
        a = TrafficCounters(node_local=1, rack_local=2, off_rack=3)
        b = TrafficCounters(node_local=10, rack_local=20, off_rack=30)
        merged = a.merged(b)
        assert merged.as_dict() == {
            "node_local": 11,
            "rack_local": 22,
            "off_rack": 33,
        }


class TestValidation:
    def test_oversubscription_below_one_rejected(self):
        topo = ClusterTopology.regular(num_nodes=2)
        with pytest.raises(ValueError):
            NetworkModel(topology=topo, rack_oversubscription=0.5)

    def test_nonpositive_bw_rejected(self):
        topo = ClusterTopology.regular(num_nodes=2)
        with pytest.raises(ValueError):
            NetworkModel(topology=topo, nic_bw=0)
