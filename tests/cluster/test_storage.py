"""Local disks and the central parallel file system."""

import pytest

from repro.cluster.storage import LocalDisk, ParallelFileSystem
from repro.util.errors import ConfigError
from repro.util.units import MB


class TestLocalDisk:
    def test_allocate_and_release(self):
        disk = LocalDisk(capacity=1000, read_bw=100, write_bw=100)
        assert disk.allocate(400)
        assert disk.used == 400
        assert disk.free == 600
        disk.release(150)
        assert disk.used == 250

    def test_allocate_refuses_overflow(self):
        disk = LocalDisk(capacity=100, read_bw=1, write_bw=1)
        assert not disk.allocate(101)
        assert disk.used == 0

    def test_release_floors_at_zero(self):
        disk = LocalDisk(capacity=100, read_bw=1, write_bw=1)
        disk.allocate(10)
        disk.release(999)
        assert disk.used == 0

    def test_negative_amounts_rejected(self):
        disk = LocalDisk(capacity=100, read_bw=1, write_bw=1)
        with pytest.raises(ValueError):
            disk.allocate(-1)
        with pytest.raises(ValueError):
            disk.release(-1)

    def test_timing_and_io_accounting(self):
        disk = LocalDisk(capacity=10**9, read_bw=100 * MB, write_bw=50 * MB)
        assert disk.read_time(100 * MB) == pytest.approx(1.0)
        assert disk.write_time(100 * MB) == pytest.approx(2.0)
        assert disk.bytes_read == 100 * MB
        assert disk.bytes_written == 100 * MB

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            LocalDisk(capacity=0, read_bw=1, write_bw=1)


class TestParallelFileSystem:
    def test_single_client_limited_by_nic(self):
        pfs = ParallelFileSystem(aggregate_bw=1000 * MB, per_client_bw=100 * MB)
        assert pfs.effective_bw(1) == 100 * MB

    def test_many_clients_share_backbone(self):
        pfs = ParallelFileSystem(aggregate_bw=1000 * MB, per_client_bw=100 * MB)
        assert pfs.effective_bw(20) == 50 * MB

    def test_saturation_point(self):
        pfs = ParallelFileSystem(aggregate_bw=1000 * MB, per_client_bw=100 * MB)
        assert pfs.saturation_point() == 10
        # Below saturation, adding clients doesn't hurt each client.
        assert pfs.effective_bw(5) == pfs.effective_bw(10) == 100 * MB
        # Beyond it, per-client bandwidth decays.
        assert pfs.effective_bw(11) < 100 * MB

    def test_read_time_under_contention(self):
        pfs = ParallelFileSystem(aggregate_bw=1000 * MB, per_client_bw=100 * MB)
        solo = pfs.read_time(100 * MB, concurrent_clients=1)
        crowded = pfs.read_time(100 * MB, concurrent_clients=40)
        assert crowded == pytest.approx(solo * 4)

    def test_invalid_client_count(self):
        pfs = ParallelFileSystem()
        with pytest.raises(ValueError):
            pfs.effective_bw(0)

    def test_no_file_locking_by_default(self):
        # The Clemson constraint that forbids myHadoop persistent mode.
        assert not ParallelFileSystem().supports_file_locking
