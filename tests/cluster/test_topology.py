"""Rack topology and Hadoop network distance."""

import pytest

from repro.cluster.hardware import Node
from repro.cluster.topology import ClusterTopology
from repro.util.errors import ConfigError


class TestRegularTopology:
    def test_node_and_rack_counts(self):
        topo = ClusterTopology.regular(num_nodes=10, nodes_per_rack=4)
        assert len(topo) == 10
        assert topo.num_racks() == 3  # 4 + 4 + 2
        assert len(topo.nodes_in_rack("rack0")) == 4
        assert len(topo.nodes_in_rack("rack2")) == 2

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            ClusterTopology.regular(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterTopology.regular(num_nodes=4, nodes_per_rack=0)

    def test_duplicate_node_rejected(self):
        topo = ClusterTopology()
        topo.add_node(Node(name="x"), "r0")
        with pytest.raises(ConfigError):
            topo.add_node(Node(name="x"), "r1")

    def test_unknown_node_lookup(self):
        topo = ClusterTopology.regular(num_nodes=2)
        with pytest.raises(ConfigError):
            topo.node("ghost")
        assert "ghost" not in topo
        assert "node0" in topo


class TestDistance:
    @pytest.fixture
    def topo(self):
        return ClusterTopology.regular(num_nodes=6, nodes_per_rack=3)

    def test_same_node(self, topo):
        assert topo.distance("node0", "node0") == 0

    def test_same_rack(self, topo):
        assert topo.distance("node0", "node2") == 2

    def test_cross_rack(self, topo):
        assert topo.distance("node0", "node3") == 4

    def test_symmetry(self, topo):
        for a in ("node0", "node4"):
            for b in ("node1", "node5"):
                assert topo.distance(a, b) == topo.distance(b, a)


class TestLocalityClassification:
    @pytest.fixture
    def topo(self):
        return ClusterTopology.regular(num_nodes=6, nodes_per_rack=3)

    def test_node_local_wins(self, topo):
        assert (
            topo.locality_of("node0", ["node5", "node0"]) == "node_local"
        )

    def test_rack_local(self, topo):
        assert topo.locality_of("node0", ["node2", "node4"]) == "rack_local"

    def test_off_rack(self, topo):
        assert topo.locality_of("node0", ["node3", "node5"]) == "off_rack"

    def test_no_replicas_is_off_rack(self, topo):
        assert topo.locality_of("node0", []) == "off_rack"


class TestLiveNodes:
    def test_live_excludes_down(self):
        topo = ClusterTopology.regular(num_nodes=3)
        topo.node("node1").mark_down()
        assert [n.name for n in topo.live_nodes()] == ["node0", "node2"]
