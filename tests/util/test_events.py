"""Event bus semantics: prefixes, wildcard, history, unsubscribe."""

from repro.util.events import Event, EventBus


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a.b", seen.append)
        bus.publish("a.b", 1.0, value=3)
        assert len(seen) == 1
        assert seen[0].topic == "a.b"
        assert seen[0]["value"] == 3

    def test_prefix_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("hdfs", seen.append)
        bus.publish("hdfs.block.written", 0.0)
        bus.publish("mr.task", 0.0)
        assert [e.topic for e in seen] == ["hdfs.block.written"]

    def test_prefix_is_segment_aligned(self):
        bus = EventBus()
        seen = []
        bus.subscribe("hdfs", seen.append)
        bus.publish("hdfsx.block", 0.0)
        assert seen == []

    def test_wildcard(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("x", 0.0)
        bus.publish("y.z", 0.0)
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        bus.publish("t", 0.0)
        unsub()
        bus.publish("t", 1.0)
        assert len(seen) == 1

    def test_unsubscribe_twice_is_noop(self):
        bus = EventBus()
        unsub = bus.subscribe("t", lambda e: None)
        unsub()
        unsub()  # must not raise

    def test_history_disabled_by_default(self):
        bus = EventBus()
        bus.publish("t", 0.0)
        assert bus.history() == []

    def test_history_with_prefix_filter(self):
        bus = EventBus()
        bus.record_history = True
        bus.publish("a.b", 0.0)
        bus.publish("a", 1.0)
        bus.publish("c", 2.0)
        assert len(bus.history()) == 3
        assert len(bus.history("a")) == 2
        bus.clear_history()
        assert bus.history() == []

    def test_event_time_carried(self):
        bus = EventBus()
        event = bus.publish("t", 42.5)
        assert isinstance(event, Event)
        assert event.time == 42.5

    def test_listener_added_during_publish_not_called_for_same_event(self):
        bus = EventBus()
        calls = []

        def adder(event):
            bus.subscribe("t", lambda e: calls.append("late"))

        bus.subscribe("t", adder)
        bus.publish("t", 0.0)
        # The late listener sees only future events.
        assert calls == []
        bus.publish("t", 1.0)
        assert calls == ["late"]
