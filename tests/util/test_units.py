"""Unit parsing/formatting round trips and edge cases."""

import pytest

from repro.util.errors import ConfigError
from repro.util.units import (
    GB,
    KB,
    MB,
    TB,
    format_duration,
    format_size,
    parse_duration,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(512) == 512

    def test_float_truncates(self):
        assert parse_size(12.7) == 12

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MB", 64 * MB),
            ("1kb", KB),
            ("2G", 2 * GB),
            ("1.5M", int(1.5 * MB)),
            ("171GB", 171 * GB),
            ("3TB", 3 * TB),
            ("100", 100),
            ("7b", 7),
            (" 8 MB ", 8 * MB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    @pytest.mark.parametrize("bad", ["", "abc", "12XB", "MB12"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("15min", 900.0),
            ("2h", 7200.0),
            ("30s", 30.0),
            ("1d", 86400.0),
            ("90", 90.0),
            ("1.5m", 90.0),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_duration(text) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_duration(-2)

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ConfigError):
            parse_duration("5fortnights")


class TestFormatting:
    def test_format_size_bands(self):
        assert format_size(0) == "0B"
        assert format_size(512) == "512B"
        assert format_size(1536) == "1.5KB"
        assert format_size(171 * GB) == "171.0GB"
        assert format_size(2 * TB) == "2.0TB"

    def test_format_duration_bands(self):
        assert format_duration(12.0) == "12.0s"
        assert format_duration(900) == "15m00s"
        assert format_duration(3783) == "1h03m"
        assert format_duration(0) == "0.0s"

    def test_format_duration_negative(self):
        assert format_duration(-90) == "-1m30s"

    def test_round_trip_size(self):
        # format_size output is itself parseable.
        for value in (KB, 3 * MB, 171 * GB):
            assert parse_size(format_size(value)) == value
