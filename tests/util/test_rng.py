"""Determinism and independence of named RNG streams."""

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 3) == derive_seed(7, "a", 3)

    def test_path_sensitive(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab")

    def test_seed_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestRngStream:
    def test_same_path_same_draws(self):
        a = RngStream(5).child("hdfs", "dn", 3)
        b = RngStream(5).child("hdfs", "dn", 3)
        assert [a.integers(0, 100) for _ in range(10)] == [
            b.integers(0, 100) for _ in range(10)
        ]

    def test_sibling_streams_differ(self):
        root = RngStream(5)
        a = root.child("a")
        b = root.child("b")
        draws_a = [a.integers(0, 10**9) for _ in range(5)]
        draws_b = [b.integers(0, 10**9) for _ in range(5)]
        assert draws_a != draws_b

    def test_adding_consumer_does_not_perturb(self):
        # Drawing from one stream must not affect a sibling.
        root1 = RngStream(9)
        first = root1.child("stable")
        baseline = [first.uniform() for _ in range(5)]

        root2 = RngStream(9)
        noisy = root2.child("other")
        _ = [noisy.uniform() for _ in range(100)]
        second = root2.child("stable")
        assert [second.uniform() for _ in range(5)] == baseline

    def test_bernoulli_bounds(self):
        stream = RngStream(3).child("bern")
        assert not any(stream.bernoulli(0.0) for _ in range(50))
        stream2 = RngStream(3).child("bern2")
        assert all(stream2.bernoulli(1.0) for _ in range(50))

    def test_choice_uses_sequence_values(self):
        stream = RngStream(4).child("choice")
        seq = ["x", "y", "z"]
        for _ in range(20):
            assert stream.choice(seq) in seq

    def test_shuffle_is_permutation(self):
        stream = RngStream(4).child("shuffle")
        values = list(range(20))
        shuffled = list(values)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == values

    def test_integer_bounds_exclusive_high(self):
        stream = RngStream(8).child("ints")
        draws = [stream.integers(0, 3) for _ in range(100)]
        assert set(draws) <= {0, 1, 2}
