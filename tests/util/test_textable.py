"""Text table rendering."""

import pytest

from repro.util.textable import TextTable, mean_std


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["A", "B"], title="T")
        table.add_row([1, "xy"])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "B" in lines[1]
        assert "1" in lines[3] and "xy" in lines[3]

    def test_column_widths_expand_to_content(self):
        table = TextTable(["x"])
        table.add_row(["longvalue"])
        assert table.column_widths() == [len("longvalue")]

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_no_title(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert not table.render().startswith("\n")
        assert table.render().splitlines()[0].startswith("a")

    def test_str_same_as_render(self):
        table = TextTable(["a"])
        assert str(table) == table.render()


class TestMeanStd:
    def test_paper_style_trimming(self):
        assert mean_std(6.6, 1.2) == "6.6±1.2"
        assert mean_std(3.0, 0.9) == "3±0.9"
        assert mean_std(0.03, 0.2) == "0.03±0.2"

    def test_decimals_control(self):
        assert mean_std(1.23456, 0.5, decimals=3) == "1.235±0.5"

    def test_zero(self):
        assert mean_std(0.0, 0.0) == "0±0"
