"""Shared fixtures: small, fast clusters with classroom-scale blocks."""

from __future__ import annotations

import pytest

from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.mapreduce.cluster import MapReduceCluster


def make_hdfs(
    num_datanodes: int = 4,
    block_size: int = 1024,
    replication: int = 2,
    seed: int = 1,
    **config_kwargs,
) -> HdfsCluster:
    config = HdfsConfig(
        block_size=block_size, replication=replication, **config_kwargs
    )
    return HdfsCluster(num_datanodes=num_datanodes, config=config, seed=seed)


def make_mr(
    num_workers: int = 4,
    block_size: int = 2048,
    replication: int = 2,
    seed: int = 1,
) -> MapReduceCluster:
    config = HdfsConfig(block_size=block_size, replication=replication)
    return MapReduceCluster(
        num_workers=num_workers, hdfs_config=config, seed=seed
    )


@pytest.fixture
def hdfs() -> HdfsCluster:
    return make_hdfs()


@pytest.fixture
def mr() -> MapReduceCluster:
    return make_mr()
