"""Multi-stage Hive plans: the jobs a single MapReduce pass can't do.

The single-stage engine (``repro.hive.engine``) compiles one SELECT
into one job and finishes ``ORDER BY``/``LIMIT`` on the driver.  Real
Hive plans chain *stages* through HDFS temp files, and two query shapes
force that here:

- ``JOIN`` — the classic **repartition join**: both tables map into one
  shuffle, values tagged by side, and each reduce group crosses the
  buffered left rows with the streamed right rows (the tagged-union
  pattern from Lin & Dyer ch. 3);
- ``ORDER BY`` at scale — a **total-order sort** stage: the driver
  samples the head of each upstream part file with ranged reads
  (``DFSInputStream.pread``), picks quantile boundaries, and a
  :class:`RangePartitioner` routes keys so partition *p* holds only
  keys below partition *p+1* — concatenating ``part-*`` files in order
  *is* the sorted result, and ``LIMIT k`` stops after the first parts
  (TeraSort's partitioning trick, in miniature).

Everything here is **param-driven**: module-level Mapper/Reducer/Job
classes configured through ``JobConf.params``, so jobs stay picklable
and the pooled execution backends can ship them to worker processes.

The sort key is a *composite token* built by :func:`row_sort_token`:
``null-flag + order-preserving scalar encoding + full-row tiebreak``.
The driver-side ``_order_and_limit`` sorts by the same token, which is
what makes single-stage and multi-stage answers bit-identical.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.hive.parser import SqlError
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.outputformat import TextOutputFormat
from repro.mapreduce.partitioner import Partitioner
from repro.mapreduce.types import NullWritable, Text, Writable
from repro.sparklite.codec import (
    encode_element,
    escape_text,
    sortable_float,
    sortable_int,
)

#: Separators inside shuffle keys/values (never appear in user data
#: because TableSchema delimits on printable characters).
GROUP_SEP = "\x02"
AGG_SEP = "\x03"
FIELD_SEP = ":"
#: The single group of a global aggregation (no GROUP BY).
GLOBAL_GROUP = "\x04__all__"
#: Cell separator of intermediate *row lines* between stages (the
#: delimiter of the virtual combined schema a JOIN produces).
ROW_SEP = "\x01"


# --------------------------------------------------------------------------
# shared cell/row codecs (mapper-side and driver-side must agree)


def parse_cell(kind: str, raw: str):
    """Parse one delimited cell by its kind code.

    ``"raw"`` keeps the text (UDF outputs have no declared type);
    ``ValueError`` propagates for int/float so malformed *intermediate*
    lines fail loudly — stage inputs are machine-written, not user CSV.
    """
    if kind == "int":
        return int(raw)
    if kind == "float":
        return float(raw)
    return raw


def apply_op(value, op: str, literal) -> bool:
    """One WHERE comparison (the pushed-down, param-encoded form)."""
    if op == "=":
        return value == literal
    if op == "!=":
        return value != literal
    try:
        if op == "<":
            return value < literal
        if op == "<=":
            return value <= literal
        if op == ">":
            return value > literal
        if op == ">=":
            return value >= literal
    except TypeError:
        return False
    raise SqlError(f"unknown operator {op!r}")


def decode_result_row(line: str, fields, aggregated: bool) -> list:
    """Parse one stage-output line back into the typed result row.

    ``fields`` is the driver-computed spec, one entry per output column
    in SELECT order: ``(source, index, kind)`` with source ``"group"``
    (GROUP BY cell of an aggregation key), ``"agg"`` (finalized
    aggregate, ``""`` meaning SQL NULL) or ``"key"`` (projection cell).
    """
    if aggregated:
        key_text, value_text = TextOutputFormat.parse_line(line)
        groups = key_text.split(GROUP_SEP)
        finals = value_text.split(AGG_SEP)
    else:
        groups = line.split(GROUP_SEP)
        finals = []
    row: list = []
    for source, index, kind in fields:
        raw = finals[index] if source == "agg" else groups[index]
        if source == "agg" and raw == "":
            row.append(None)
        else:
            row.append(parse_cell(kind, raw))
    return row


def row_sort_token(row, index: int) -> str:
    """The composite total-order key for one result row.

    Null flag first (NULLs sort last ascending, first under DESC —
    matching ``sorted(key=(v is None, v), reverse=desc)``), then an
    order-preserving scalar encoding of the ORDER BY value, then the
    whole row as an injective tiebreak: equal tokens imply identical
    rendered rows, so no two *different* rows ever compare equal and
    both execution paths produce one total order.
    """
    value = row[index]
    if value is None:
        head = "1"
    elif isinstance(value, bool):
        head = "0" + sortable_int(int(value))
    elif isinstance(value, int):
        head = "0" + sortable_int(value)
    elif isinstance(value, float):
        head = "0" + sortable_float(value)
    else:
        head = "0" + escape_text(str(value))
    tie = GROUP_SEP.join(
        "n" if cell is None else "v" + escape_text(str(cell)) for cell in row
    )
    return head + GROUP_SEP + tie


# --------------------------------------------------------------------------
# the repartition join stage


def _match_side(input_path: str, spec: dict) -> bool:
    location = spec["location"].rstrip("/")
    return input_path == location or input_path.startswith(location + "/")


def _parse_side_row(line: str, spec: dict) -> list | None:
    """Parse one source line against a side spec; None to drop it."""
    if not line:
        return None
    parts = line.split(spec["delim"])
    if len(parts) != len(spec["kinds"]):
        return None
    if spec["skip_header"] and parts[0] == spec["first"]:
        return None
    try:
        return [parse_cell(kind, part) for kind, part in zip(spec["kinds"], parts)]
    except ValueError:
        return None


class _JoinMapper(Mapper):
    """Tag each row with its side and shuffle on the canonical join key.

    The key is :func:`~repro.sparklite.codec.encode_element` of the
    *parsed* value — injective and normalized, so INT ``"05"`` joins
    INT ``"5"`` but never STRING ``"5"``.  Side-local WHERE conditions
    arrive pushed down (``conds``) and filter before the shuffle.
    """

    def setup(self, context: Context) -> None:
        join = context.get("hv_join")
        for tag, name in (("0", "left"), ("1", "right")):
            spec = join[name]
            if context.input_path and _match_side(context.input_path, spec):
                self._tag, self._spec = tag, spec
                return
        raise SqlError(
            f"input {context.input_path!r} belongs to neither join side"
        )

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        spec = self._spec
        row = _parse_side_row(value.value, spec)
        if row is None:
            return
        for index, op, literal in spec["conds"]:
            if not apply_op(row[index], op, literal):
                return
        token = encode_element(row[spec["key"]])
        cells = ROW_SEP.join(str(cell) for cell in row)
        context.write(Text(token), Text(self._tag + cells))


class _JoinReducer(Reducer):
    """Buffer the left side, stream the right, emit the cross product.

    Output rows are key-only lines under the virtual combined schema
    (left columns then right columns, ``ROW_SEP``-delimited) — exactly
    what the next stage's table scan parses.
    """

    def reduce(self, key, values, context: Context) -> None:
        lefts: list[str] = []
        rights: list[str] = []
        for value in values:
            text = value.value
            (lefts if text[0] == "0" else rights).append(text[1:])
        if not lefts or not rights:
            return
        for left in lefts:
            for right in rights:
                context.write(Text(left + ROW_SEP + right), NullWritable())


class JoinStageJob(Job):
    """Repartition equi-join; params: ``hv_join`` side specs."""

    mapper = _JoinMapper
    reducer = _JoinReducer


# --------------------------------------------------------------------------
# the total-order sort stage


class RangePartitioner(Partitioner):
    """Route keys by sampled quantile boundaries (TeraSort-style).

    ``boundaries`` are composite sort tokens; key *k* goes to the count
    of boundaries ≤ *k*, so the partition index order *is* the key
    order and concatenating reduce outputs yields one sorted run.
    """

    def __init__(self, boundaries):
        self.boundaries = tuple(boundaries)

    def partition(self, key: Writable, num_reduces: int) -> int:
        if num_reduces <= 1:
            return 0
        return min(bisect_right(self.boundaries, key.encode()), num_reduces - 1)


class _SortMapper(Mapper):
    """Re-key each upstream result line by its composite sort token."""

    def setup(self, context: Context) -> None:
        self._fields = context.get("hv_fields")
        self._sort = context.get("hv_sort")
        self._agg = context.get("hv_agg")

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        line = value.value
        if not line:
            return
        row = decode_result_row(line, self._fields, self._agg)
        context.write(
            Text(row_sort_token(row, self._sort)), Text(escape_text(line))
        )


class _SortReducer(Reducer):
    """Identity: the merge sort on the composite key did the work."""

    def reduce(self, key, values, context: Context) -> None:
        for value in values:
            context.write(key, value)


class SortStageJob(Job):
    """Total-order sort; params: ``hv_fields``/``hv_sort``/``hv_agg``;
    the driver installs a :class:`RangePartitioner` instance."""

    mapper = _SortMapper
    reducer = _SortReducer


def sample_boundaries(
    client,
    files,
    fields,
    aggregated: bool,
    sort_index: int,
    num_partitions: int,
    sample_bytes: int = 65536,
) -> list[str]:
    """Pick ``num_partitions - 1`` quantile boundaries by ranged reads.

    ``files`` is ``[(path, length), ...]``; only the first
    ``sample_bytes`` of each part are fetched (``pread`` — no full
    scan), the possibly-torn last line dropped when the file is longer.
    """
    samples: list[str] = []
    for path, length in files:
        head = client.open(path).pread(0, min(length, sample_bytes))
        lines = head.text().split("\n")
        if length > sample_bytes:
            lines = lines[:-1]
        for line in lines:
            if line:
                samples.append(
                    row_sort_token(
                        decode_result_row(line, fields, aggregated), sort_index
                    )
                )
    samples.sort()
    if not samples:
        return []
    return [
        samples[len(samples) * i // num_partitions]
        for i in range(1, num_partitions)
    ]
