"""Hive-lite: SQL compiled to MapReduce jobs.

The other half of Version 4's ecosystem lecture ("one lecture
introducing HBase/Hive").  A metastore maps table names to delimited
files in HDFS; a micro-SQL dialect (SELECT / JOIN / WHERE / GROUP BY /
ORDER BY / LIMIT with COUNT, SUM, AVG, MIN, MAX) compiles into the same
MapReduce jobs students write by hand — which is the lecture's point:
aggregation SQL *is* the WordCount pattern, with the monoid combiner
falling out of the aggregate functions automatically.  With
``HiveLite(cluster, multi_stage=True)``, JOIN and ORDER BY queries
become chained stages (repartition join, total-order sample-partitioned
sort) exactly as Hive plans them — see ``repro.hive.planner``.
"""

from repro.hive.schema import ColumnType, TableSchema
from repro.hive.parser import parse_query
from repro.hive.engine import HiveLite, QueryResult

__all__ = [
    "ColumnType",
    "TableSchema",
    "parse_query",
    "HiveLite",
    "QueryResult",
]
