"""A micro-SQL parser (hand-rolled recursive descent).

Grammar::

    query    := SELECT items FROM ident [JOIN ident ON ident '=' ident]
                [WHERE conj] [GROUP BY idents]
                [ORDER BY ident [ASC|DESC]] [LIMIT int]
    items    := item (',' item)*
    item     := '*' | ident | agg '(' (ident | '*') ')' | ident '(' ident ')'
    agg      := COUNT | SUM | AVG | MIN | MAX

Identifiers may be dot-qualified (``ratings.movie_id``); a ``JOIN``
query *requires* qualification wherever a bare column name would be
ambiguous between the two tables.  The ``ON`` clause supports exactly
one equality — the equi-join the repartition-join pattern shuffles on.

A non-aggregate ``ident '(' ident ')'`` is a **UDF call** — the name
must be registered with :meth:`repro.hive.engine.HiveLite.register_udf`
before the query runs.  UDFs are applied map-side, per row.
    conj     := cond (AND cond)*
    cond     := ident op literal
    op       := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal  := number | 'single-quoted string'
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class SqlError(ConfigError):
    """A malformed or unsupported query."""


AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")
OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


@dataclass(frozen=True)
class SelectItem:
    """One output column: plain, aggregate, UDF call, or '*'."""

    column: str  # '*' allowed for COUNT(*) and SELECT *
    aggregate: str | None = None
    udf: str | None = None

    @property
    def label(self) -> str:
        if self.aggregate:
            return f"{self.aggregate.lower()}({self.column})"
        if self.udf:
            return f"{self.udf}({self.column})"
        return self.column


@dataclass(frozen=True)
class Condition:
    column: str
    op: str
    literal: str | float | int


@dataclass(frozen=True)
class Query:
    table: str
    items: tuple[SelectItem, ...]
    where: tuple[Condition, ...] = ()
    group_by: tuple[str, ...] = ()
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    #: The right-hand table of ``FROM a JOIN b ON a.x = b.y`` (None when
    #: the query scans a single table).
    join_table: str | None = None
    #: The two sides of the ON equality, as written (possibly qualified).
    join_on: tuple[str, str] | None = None

    @property
    def is_join(self) -> bool:
        return self.join_table is not None

    @property
    def aggregates(self) -> tuple[SelectItem, ...]:
        return tuple(i for i in self.items if i.aggregate)

    @property
    def is_aggregation(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by)


_TOKEN_RE = re.compile(
    r"\s*(?:'(?P<str>[^']*)'|(?P<num>-?\d+\.?\d*)|(?P<word>[A-Za-z_][\w.]*)"
    r"|(?P<op><=|>=|!=|=|<|>)|(?P<punct>[(),*]))"
)


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == "":
                break
            raise SqlError(f"cannot tokenize near {sql[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("str", "num", "word", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, sql: str):
        self.tokens = _tokenize(sql)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self.pos += 1
        return token

    def expect_word(self, *words: str) -> str:
        kind, value = self.next()
        if kind != "word" or value.upper() not in words:
            raise SqlError(f"expected {' or '.join(words)}, got {value!r}")
        return value.upper()

    def accept_word(self, word: str) -> bool:
        token = self.peek()
        if token and token[0] == "word" and token[1].upper() == word:
            self.pos += 1
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != punct:
            raise SqlError(f"expected {punct!r}, got {value!r}")

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Query:
        self.expect_word("SELECT")
        items = self._items()
        self.expect_word("FROM")
        kind, table = self.next()
        if kind != "word":
            raise SqlError(f"expected table name, got {table!r}")

        join_table = None
        join_on = None
        if self.accept_word("JOIN"):
            kind, join_table = self.next()
            if kind != "word":
                raise SqlError(f"expected join table name, got {join_table!r}")
            self.expect_word("ON")
            kind, left_key = self.next()
            if kind != "word":
                raise SqlError(f"expected join column, got {left_key!r}")
            kind, op = self.next()
            if kind != "op" or op != "=":
                raise SqlError(f"JOIN supports only '=', got {op!r}")
            kind, right_key = self.next()
            if kind != "word":
                raise SqlError(f"expected join column, got {right_key!r}")
            join_on = (left_key, right_key)

        where: tuple = ()
        group_by: tuple = ()
        order_by = None
        order_desc = False
        limit = None
        while (token := self.peek()) is not None:
            word = token[1].upper() if token[0] == "word" else None
            if word == "WHERE":
                self.pos += 1
                where = self._conditions()
            elif word == "GROUP":
                self.pos += 1
                self.expect_word("BY")
                group_by = self._ident_list()
            elif word == "ORDER":
                self.pos += 1
                self.expect_word("BY")
                # A plain column or an aggregate label like AVG(delay).
                order_by = self._item().label
                if self.accept_word("DESC"):
                    order_desc = True
                else:
                    self.accept_word("ASC")
            elif word == "LIMIT":
                self.pos += 1
                kind, value = self.next()
                if kind != "num":
                    raise SqlError("expected number after LIMIT")
                limit = int(float(value))
            else:
                raise SqlError(f"unexpected token {token[1]!r}")
        return Query(
            table=table,
            items=items,
            where=where,
            group_by=group_by,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
            join_table=join_table,
            join_on=join_on,
        )

    def _items(self) -> tuple[SelectItem, ...]:
        items = [self._item()]
        while (token := self.peek()) and token == ("punct", ","):
            self.pos += 1
            items.append(self._item())
        return tuple(items)

    def _item(self) -> SelectItem:
        kind, value = self.next()
        if kind == "punct" and value == "*":
            return SelectItem(column="*")
        if kind != "word":
            raise SqlError(f"expected column or aggregate, got {value!r}")
        if value.upper() in AGGREGATES:
            aggregate = value.upper()
            self.expect_punct("(")
            kind, inner = self.next()
            if kind == "punct" and inner == "*":
                column = "*"
            elif kind == "word":
                column = inner
            else:
                raise SqlError(f"bad aggregate argument {inner!r}")
            self.expect_punct(")")
            if column == "*" and aggregate != "COUNT":
                raise SqlError(f"{aggregate}(*) is not supported")
            return SelectItem(column=column, aggregate=aggregate)
        if (token := self.peek()) and token == ("punct", "("):
            # ident '(' ident ')': a user-defined function call.
            self.pos += 1
            kind, inner = self.next()
            if kind != "word":
                raise SqlError(f"bad UDF argument {inner!r}")
            self.expect_punct(")")
            return SelectItem(column=inner, udf=value)
        return SelectItem(column=value)

    def _conditions(self) -> tuple[Condition, ...]:
        conditions = [self._condition()]
        while self.accept_word("AND"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        kind, column = self.next()
        if kind != "word":
            raise SqlError(f"expected column in WHERE, got {column!r}")
        kind, op = self.next()
        if kind != "op":
            raise SqlError(f"expected operator, got {op!r}")
        kind, literal = self.next()
        if kind == "num":
            value: str | float | int = (
                int(literal) if "." not in literal else float(literal)
            )
        elif kind == "str":
            value = literal
        else:
            raise SqlError(f"expected literal, got {literal!r}")
        return Condition(column=column, op=op, literal=value)

    def _ident_list(self) -> tuple[str, ...]:
        names = []
        kind, value = self.next()
        if kind != "word":
            raise SqlError("expected column list")
        names.append(value)
        while (token := self.peek()) and token == ("punct", ","):
            self.pos += 1
            kind, value = self.next()
            if kind != "word":
                raise SqlError("expected column after comma")
            names.append(value)
        return tuple(names)


def parse_query(sql: str) -> Query:
    """Parse one SELECT statement.

    >>> q = parse_query("SELECT carrier, AVG(delay) FROM flights "
    ...                 "WHERE delay > 0 GROUP BY carrier")
    >>> q.table, q.group_by
    ('flights', ('carrier',))
    """
    return _Parser(sql).parse()
