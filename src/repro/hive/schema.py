"""Table schemas and the metastore."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class ColumnType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"

    def parse(self, text: str):
        if self is ColumnType.INT:
            return int(text)
        if self is ColumnType.FLOAT:
            return float(text)
        return text


@dataclass(frozen=True)
class TableSchema:
    """One external table: columns + the delimited file(s) behind it."""

    name: str
    columns: tuple[tuple[str, ColumnType], ...]
    location: str  # HDFS path (file or directory)
    delimiter: str = ","
    skip_header: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise ConfigError(f"table {self.name!r} has no columns")
        names = [c[0] for c in self.columns]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate column names in {self.name!r}")

    def column_index(self, name: str) -> int:
        for i, (column, _type) in enumerate(self.columns):
            if column == name:
                return i
        raise ConfigError(
            f"table {self.name!r} has no column {name!r} "
            f"(has: {[c[0] for c in self.columns]})"
        )

    def column_type(self, name: str) -> ColumnType:
        return self.columns[self.column_index(name)][1]

    def parse_row(self, line: str) -> list | None:
        """Parse one data line; None for malformed/empty lines."""
        if not line:
            return None
        parts = line.split(self.delimiter)
        if len(parts) != len(self.columns):
            return None
        try:
            return [
                ctype.parse(part)
                for part, (_name, ctype) in zip(parts, self.columns)
            ]
        except ValueError:
            return None


class Metastore:
    """Name -> schema registry (Hive's metastore, minus Thrift)."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def register(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise ConfigError(f"table {schema.name!r} already registered")
        self._tables[schema.name] = schema

    def get(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigError(f"unknown table {name!r}") from None

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)

    def tables(self) -> list[str]:
        return sorted(self._tables)
