"""Compile micro-SQL into MapReduce jobs and run them.

The compilation is the lecture's punchline, visible in code:

- ``WHERE`` becomes a map-side filter;
- ``GROUP BY`` becomes the shuffle key;
- every aggregate carries a uniform ``(count, sum, min, max)`` partial —
  a monoid — so the combiner is *always* legal and is installed
  automatically (Lin's "Monoidify!" applied mechanically);
- ``ORDER BY``/``LIMIT`` run in the final single-threaded stage, as
  Hive's plans do — *or*, with ``multi_stage=True``, as a total-order
  sort stage with a sampled :class:`~repro.hive.planner.RangePartitioner`;
- ``JOIN`` always plans multi-stage: a repartition-join job feeds the
  aggregation/projection job through HDFS temp files
  (see :mod:`repro.hive.planner`).

Single-stage and multi-stage plans return bit-identical rows: both
order results by the same composite sort token
(:func:`~repro.hive.planner.row_sort_token`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.hive.parser import (
    AGGREGATES,
    Condition,
    Query,
    SelectItem,
    SqlError,
    parse_query,
)

# Re-exported from the planner so stage code and engine never disagree
# on the wire format (historically these lived here).
from repro.hive.planner import (
    AGG_SEP,
    FIELD_SEP,
    GLOBAL_GROUP,
    GROUP_SEP,
    ROW_SEP,
    JoinStageJob,
    RangePartitioner,
    SortStageJob,
    row_sort_token,
    sample_boundaries,
)
from repro.hive.schema import ColumnType, Metastore, TableSchema
from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import JobReport
from repro.mapreduce.outputformat import TextOutputFormat
from repro.mapreduce.types import NullWritable, Text, Writable
from repro.sparklite.codec import unescape_text


# --------------------------------------------------------------------------
# partial aggregates: one uniform monoid for every aggregate function


@dataclass
class Partial:
    """(count, sum, min, max) over the non-null values seen so far."""

    count: int = 0
    total: float = 0.0
    minimum: float | str | None = None
    maximum: float | str | None = None

    def observe(self, value) -> None:
        self.count += 1
        if isinstance(value, (int, float)):
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "Partial") -> None:
        self.count += other.count
        self.total += other.total
        for attr, pick in (("minimum", min), ("maximum", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is None:
                continue
            setattr(self, attr, theirs if mine is None else pick(mine, theirs))

    def encode(self) -> str:
        def enc(v):
            return "" if v is None else repr(v)

        return FIELD_SEP.join(
            [str(self.count), repr(self.total), enc(self.minimum),
             enc(self.maximum)]
        )

    @classmethod
    def decode(cls, text: str) -> "Partial":
        count, total, minimum, maximum = text.split(FIELD_SEP)

        def dec(v):
            if v == "":
                return None
            return eval(v, {"__builtins__": {}}, {})  # noqa: S307 - repr of str/num only

        return cls(
            count=int(count),
            total=float(total),
            minimum=dec(minimum),
            maximum=dec(maximum),
        )

    def finalize(self, aggregate: str):
        if aggregate == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if aggregate == "SUM":
            return self.total
        if aggregate == "AVG":
            return self.total / self.count
        if aggregate == "MIN":
            return self.minimum
        if aggregate == "MAX":
            return self.maximum
        raise SqlError(f"unknown aggregate {aggregate!r}")


def _apply_condition(condition: Condition, value) -> bool:
    op = condition.op
    literal = condition.literal
    if op == "=":
        return value == literal
    if op == "!=":
        return value != literal
    try:
        if op == "<":
            return value < literal
        if op == "<=":
            return value <= literal
        if op == ">":
            return value > literal
        if op == ">=":
            return value >= literal
    except TypeError:
        return False
    raise SqlError(f"unknown operator {op!r}")


# --------------------------------------------------------------------------
# the generated jobs


class _HiveMapperBase(Mapper):
    """Parses rows against the schema and applies the WHERE filter."""

    schema: TableSchema
    query: Query

    def setup(self, context: Context) -> None:
        self._where_indexes = [
            self.schema.column_index(c.column) for c in self.query.where
        ]
        self._line_no = 0

    def _parse(self, value: Writable) -> list | None:
        line = value.value
        self._line_no += 1
        if self.schema.skip_header and line and not self._header_checked(line):
            return None
        row = self.schema.parse_row(line)
        if row is None:
            return None
        for condition, index in zip(self.query.where, self._where_indexes):
            if not _apply_condition(condition, row[index]):
                return None
        return row

    def _header_checked(self, line: str) -> bool:
        # A header line fails numeric parsing anyway; this fast-path just
        # avoids warning noise for the common CSV-with-header case.
        first_field = line.split(self.schema.delimiter)[0]
        return first_field != self.schema.columns[0][0]


def _aggregation_job(schema: TableSchema, query: Query) -> Job:
    group_indexes = [schema.column_index(c) for c in query.group_by]
    agg_items = query.aggregates
    agg_indexes = [
        None if item.column == "*" else schema.column_index(item.column)
        for item in agg_items
    ]

    class AggMapper(_HiveMapperBase):
        pass

    AggMapper.schema = schema
    AggMapper.query = query

    def agg_map(self, key, value, context):
        row = self._parse(value)
        if row is None:
            return
        if group_indexes:
            group = GROUP_SEP.join(str(row[i]) for i in group_indexes)
        else:
            group = GLOBAL_GROUP
        partials = []
        for index in agg_indexes:
            partial = Partial()
            partial.observe(1 if index is None else row[index])
            partials.append(partial.encode())
        context.write(Text(group), Text(AGG_SEP.join(partials)))

    AggMapper.map = agg_map

    class AggCombiner(Reducer):
        """Merge partials — legal because (count,sum,min,max) is a monoid."""

        def reduce(self, key, values, context):
            merged = [Partial() for _ in agg_items]
            for value in values:
                for partial, piece in zip(merged, value.value.split(AGG_SEP)):
                    partial.merge(Partial.decode(piece))
            context.write(
                key, Text(AGG_SEP.join(p.encode() for p in merged))
            )

    class AggReducer(Reducer):
        def reduce(self, key, values, context):
            merged = [Partial() for _ in agg_items]
            for value in values:
                for partial, piece in zip(merged, value.value.split(AGG_SEP)):
                    partial.merge(Partial.decode(piece))
            finals = [
                partial.finalize(item.aggregate)
                for partial, item in zip(merged, agg_items)
            ]
            context.write(
                key, Text(AGG_SEP.join("" if f is None else str(f) for f in finals))
            )

    class HiveAggJob(Job):
        mapper = AggMapper
        reducer = AggReducer
        combiner = AggCombiner

    return HiveAggJob(conf=JobConf(name=f"hive-agg-{schema.name}"))


def _projection_job(
    schema: TableSchema, query: Query, udfs: dict[str, Callable]
) -> Job:
    #: (column index, udf | None) per output field, '*' expanded.
    fields: list[tuple[int, Callable | None]] = []
    for item in query.items:
        if item.column == "*":
            fields.extend(
                (i, None) for i in range(len(schema.columns))
            )
        else:
            fields.append(
                (
                    schema.column_index(item.column),
                    udfs[item.udf] if item.udf else None,
                )
            )

    class ProjectMapper(_HiveMapperBase):
        pass

    ProjectMapper.schema = schema
    ProjectMapper.query = query

    def project_map(self, key, value, context):
        row = self._parse(value)
        if row is None:
            return
        context.write(
            Text(
                GROUP_SEP.join(
                    str(fn(row[i]) if fn else row[i]) for i, fn in fields
                )
            ),
            NullWritable(),
        )

    ProjectMapper.map = project_map

    class HiveProjectJob(Job):
        mapper = ProjectMapper
        reducer = None  # identity

    return HiveProjectJob(conf=JobConf(name=f"hive-select-{schema.name}"))


# --------------------------------------------------------------------------
# the engine


@dataclass
class QueryResult:
    """Rows out of a query, plus the job(s) that produced them."""

    columns: tuple[str, ...]
    rows: list[tuple]
    report: JobReport | None = None
    sql: str = ""
    #: Every stage's report in plan order (multi-stage plans; a
    #: single-stage query has the one report here too).
    stage_reports: tuple = ()

    def render(self) -> str:
        from repro.util.textable import TextTable

        table = TextTable(list(self.columns), title=self.sql)
        for row in self.rows:
            table.add_row(list(row))
        return table.render()


class HiveLite:
    """Parse, plan, run — over a MapReduceCluster.

    ``multi_stage=True`` plans ``ORDER BY`` as a total-order sort stage
    instead of a driver-side sort (``JOIN`` queries are always
    multi-stage).  ``sort_partitions`` sizes that stage; the default
    follows the cluster's worker count, capped at 4.
    """

    def __init__(
        self,
        cluster: MapReduceCluster,
        multi_stage: bool = False,
        sort_partitions: int | None = None,
    ):
        self.cluster = cluster
        self.metastore = Metastore()
        self.udfs: dict[str, Callable] = {}
        self.multi_stage = multi_stage
        self.sort_partitions = sort_partitions or max(
            1, min(4, len(cluster.tasktrackers))
        )
        self._seq = itertools.count(1)

    # -- DDL ----------------------------------------------------------------
    def create_table(self, schema: TableSchema, data: str | None = None) -> None:
        """Register a table; optionally load its data into HDFS."""
        if data is not None:
            self.cluster.client().put_text(
                schema.location, data, overwrite=True
            )
        self.metastore.register(schema)

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register a scalar UDF callable as ``name(column)`` in SELECT.

        The function runs *map-side, per row, per attempt* — exactly the
        execution model the MRH3xx lint rules audit.  Registering does
        not lint; call :meth:`lint_udfs` (the grader does) to vet every
        registered function.
        """
        if not name.isidentifier():
            raise SqlError(f"UDF name {name!r} is not an identifier")
        if name.upper() in AGGREGATES:
            raise SqlError(
                f"UDF name {name!r} shadows the builtin aggregate "
                f"{name.upper()}"
            )
        if not callable(fn):
            raise SqlError(f"UDF {name!r} is not callable")
        self.udfs[name] = fn

    def lint_udfs(self):
        """mrlint every registered UDF (MRH3xx rules).

        The Hive-side mirror of ``lint_reference_solutions()``: source
        is recovered via ``inspect``, analysed with the module taint
        engine, and every finding names the offending UDF.  Returns a
        list of :class:`~repro.analysis.findings.Finding`.
        """
        from repro.analysis.hive_rules import lint_udf_callables

        return lint_udf_callables(self.udfs)

    # -- planning -------------------------------------------------------------
    def _validate(self, query: Query, schema: TableSchema) -> None:
        for condition in query.where:
            schema.column_index(condition.column)
        for column in query.group_by:
            schema.column_index(column)
        for item in query.items:
            if item.udf is None:
                continue
            if item.udf not in self.udfs:
                raise SqlError(
                    f"unknown UDF {item.udf!r}; register it with "
                    "register_udf() first"
                )
            schema.column_index(item.column)
            if query.is_aggregation:
                raise SqlError(
                    "UDFs run map-side and cannot be combined with "
                    "GROUP BY/aggregates"
                )
        if query.is_aggregation:
            for item in query.items:
                if item.aggregate is None:
                    if item.column == "*":
                        raise SqlError(
                            "SELECT * cannot be combined with aggregates"
                        )
                    if item.column not in query.group_by:
                        raise SqlError(
                            f"column {item.column!r} must appear in GROUP BY"
                        )
                elif item.column != "*":
                    ctype = schema.column_type(item.column)
                    if item.aggregate in ("SUM", "AVG") and ctype is (
                        ColumnType.STRING
                    ):
                        raise SqlError(
                            f"{item.aggregate}({item.column}) on a string column"
                        )
        if query.order_by is not None:
            labels = [item.label for item in query.items]
            if query.order_by not in labels and all(
                query.order_by != item.column for item in query.items
            ):
                raise SqlError(
                    f"ORDER BY {query.order_by!r} is not in the select list"
                )

    def explain(self, sql: str) -> str:
        """Render the plan without running it."""
        query = parse_query(sql)
        lines = [f"EXPLAIN {sql}"]
        if query.is_join:
            stage_query, schema, _job, inputs = self._compile_join(query)
            self._validate(stage_query, schema)
            lines.append(f"  stage 1: repartition join {' + '.join(inputs)}")
            lines.append(
                f"    shuffle key: {query.join_on[0]} = {query.join_on[1]} "
                "(values tagged by side)"
            )
            if query.where:
                conds = " AND ".join(
                    f"{c.column} {c.op} {c.literal!r}" for c in query.where
                )
                lines.append(f"    pushed-down map-side filter: {conds}")
            query = stage_query
            lines.append("  stage 2: scan <join output rows>")
        else:
            schema = self.metastore.get(query.table)
            self._validate(query, schema)
            lines.append(f"  scan: {schema.location}")
        if query.where:
            conds = " AND ".join(
                f"{c.column} {c.op} {c.literal!r}" for c in query.where
            )
            lines.append(f"  map-side filter: {conds}")
        udf_items = [i for i in query.items if i.udf]
        if udf_items:
            lines.append(
                f"  map-side UDFs: {', '.join(i.label for i in udf_items)}"
            )
        if query.is_aggregation:
            lines.append(
                f"  shuffle key: {', '.join(query.group_by) or '<global>'}"
            )
            lines.append(
                "  combiner: automatic (count/sum/min/max monoid)"
            )
            lines.append(
                f"  reduce: finalize {', '.join(i.label for i in query.aggregates)}"
            )
        else:
            lines.append("  map-only projection")
        if query.order_by:
            direction = "DESC" if query.order_desc else "ASC"
            if self.multi_stage or query.is_join:
                lines.append(
                    f"  sort stage: total-order sort by {query.order_by} "
                    f"{direction} ({self.sort_partitions} sampled ranges)"
                )
            else:
                lines.append(
                    f"  final stage: sort by {query.order_by} {direction}"
                )
        if query.limit is not None:
            lines.append(f"  final stage: limit {query.limit}")
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        query = parse_query(sql)
        if query.is_join or (self.multi_stage and query.order_by is not None):
            return self._execute_multi_stage(query, sql)
        schema = self.metastore.get(query.table)
        self._validate(query, schema)
        output = f"/tmp/hive/query_{next(self._seq):05d}"
        if query.is_aggregation:
            job = _aggregation_job(schema, query)
        else:
            job = _projection_job(schema, query, self.udfs)
        report = self.cluster.run_job(
            job, schema.location, output, require_success=True
        )
        rows = self._collect(query, schema, output)
        rows = self._order_and_limit(query, schema, rows)
        columns = self._output_columns(query, schema)
        return QueryResult(
            columns=columns,
            rows=rows,
            report=report,
            sql=sql,
            stage_reports=(report,),
        )

    def _execute_multi_stage(self, query: Query, sql: str) -> QueryResult:
        """JOIN / total-order plans: stages chained through HDFS temps."""
        base = f"/tmp/hive/query_{next(self._seq):05d}"
        reports: list[JobReport] = []
        if query.is_join:
            query, schema, join_job, inputs = self._compile_join(query)
            self._validate(query, schema)
            join_out = f"{base}_join"
            reports.append(
                self.cluster.run_job(
                    join_job, inputs, join_out, require_success=True
                )
            )
            stage_inputs = self._nonempty_parts(join_out)
        else:
            schema = self.metastore.get(query.table)
            self._validate(query, schema)
            stage_inputs = [schema.location]
        columns = self._output_columns(query, schema)
        rows: list[tuple] = []
        if stage_inputs:
            result_out = f"{base}_result"
            if query.is_aggregation:
                job = _aggregation_job(schema, query)
            else:
                job = _projection_job(schema, query, self.udfs)
            reports.append(
                self.cluster.run_job(
                    job, stage_inputs, result_out, require_success=True
                )
            )
            if query.order_by is not None:
                sorted_out = f"{base}_sorted"
                sort_report, rows = self._sort_stage(
                    query, schema, result_out, sorted_out
                )
                if sort_report is not None:
                    reports.append(sort_report)
            else:
                rows = self._collect(query, schema, result_out)
                rows = self._order_and_limit(query, schema, rows)
        return QueryResult(
            columns=columns,
            rows=rows,
            report=reports[-1] if reports else None,
            sql=sql,
            stage_reports=tuple(reports),
        )

    # -- join planning -----------------------------------------------------
    def _compile_join(
        self, query: Query
    ) -> tuple[Query, TableSchema, Job, list[str]]:
        """Build the repartition-join stage and the rewritten query.

        Returns ``(stage2 query, combined schema, join job, inputs)``:
        the query with every column qualified and WHERE pushed down
        into the join mappers, plus the virtual two-table schema whose
        rows the join stage emits.
        """
        left = self.metastore.get(query.table)
        right = self.metastore.get(query.join_table)
        if left.name == right.name:
            raise SqlError("self-joins are not supported")
        combined_columns = tuple(
            (f"{schema.name}.{name}", ctype)
            for schema in (left, right)
            for name, ctype in schema.columns
        )
        combined = TableSchema(
            name=f"{left.name}_join_{right.name}",
            columns=combined_columns,
            location="<join-stage>",
            delimiter=ROW_SEP,
        )
        query = self._qualify(query, left, right, combined)
        left_key = self._side_key(query.join_on[0], left, right, "left")
        right_key = self._side_key(query.join_on[1], left, right, "right")
        if (
            left.columns[left_key][1] is not right.columns[right_key][1]
        ):
            raise SqlError(
                f"join keys {query.join_on[0]!r} and {query.join_on[1]!r} "
                "have different column types"
            )
        # Predicate pushdown: every condition names exactly one table,
        # so all of WHERE filters map-side, before the shuffle.
        conds = {"left": [], "right": []}
        for condition in query.where:
            table, column = condition.column.split(".", 1)
            side = "left" if table == left.name else "right"
            schema = left if side == "left" else right
            conds[side].append(
                (schema.column_index(column), condition.op, condition.literal)
            )
        specs = {}
        for side, schema, key in (
            ("left", left, left_key),
            ("right", right, right_key),
        ):
            specs[side] = {
                "location": schema.location,
                "delim": schema.delimiter,
                "skip_header": schema.skip_header,
                "first": schema.columns[0][0],
                "kinds": tuple(ctype.value for _n, ctype in schema.columns),
                "key": key,
                "conds": tuple(conds[side]),
            }
        job = JoinStageJob(
            conf=JobConf(name=f"hive-join-{left.name}-{right.name}"),
            hv_join=specs,
        )
        stage_query = replace(query, table=combined.name, where=())
        return stage_query, combined, job, [left.location, right.location]

    def _side_key(
        self, expr: str, left: TableSchema, right: TableSchema, side: str
    ) -> int:
        """Resolve one side of ``ON`` to a column index of that table."""
        schema = left if side == "left" else right
        if "." in expr:
            table, column = expr.split(".", 1)
            if table != schema.name:
                raise SqlError(
                    f"ON {expr!r}: the {side} side must reference "
                    f"table {schema.name!r}"
                )
            return schema.column_index(column)
        return schema.column_index(expr)

    def _qualify(
        self,
        query: Query,
        left: TableSchema,
        right: TableSchema,
        combined: TableSchema,
    ) -> Query:
        """Rewrite every column reference to its ``table.column`` form."""
        names = {name for name, _t in combined.columns}

        def qual(name: str) -> str:
            if name == "*":
                return name
            if "." in name:
                if name not in names:
                    raise SqlError(f"unknown column {name!r}")
                return name
            candidates = [
                f"{schema.name}.{name}"
                for schema in (left, right)
                if any(column == name for column, _t in schema.columns)
            ]
            if not candidates:
                raise SqlError(f"unknown column {name!r}")
            if len(candidates) > 1:
                raise SqlError(
                    f"column {name!r} is ambiguous between "
                    f"{left.name!r} and {right.name!r}; qualify it"
                )
            return candidates[0]

        items = tuple(
            replace(item, column=qual(item.column)) for item in query.items
        )
        relabel = {
            old.label: new.label for old, new in zip(query.items, items)
        } | {old.column: new.column for old, new in zip(query.items, items)}
        order_by = (
            relabel.get(query.order_by, query.order_by)
            if query.order_by is not None
            else None
        )
        return replace(
            query,
            items=items,
            where=tuple(
                replace(c, column=qual(c.column)) for c in query.where
            ),
            group_by=tuple(qual(c) for c in query.group_by),
            order_by=order_by,
        )

    # -- the total-order sort stage ---------------------------------------
    def _sort_stage(
        self, query: Query, schema: TableSchema, result_out: str, output: str
    ) -> tuple[JobReport | None, list[tuple]]:
        """Run the sampled range-partitioned sort; collect in key order."""
        parts = self._nonempty_parts(result_out, with_length=True)
        if not parts:
            return None, []
        fields = self._field_specs(query, schema)
        sort_index = self._sort_index(query, schema)
        client = self.cluster._output_client(None)
        boundaries = sample_boundaries(
            client,
            parts,
            fields,
            query.is_aggregation,
            sort_index,
            self.sort_partitions,
        )
        job = SortStageJob(
            conf=JobConf(
                name="hive-sort", num_reduces=self.sort_partitions
            ),
            hv_fields=fields,
            hv_sort=sort_index,
            hv_agg=query.is_aggregation,
        )
        job.partitioner = RangePartitioner(boundaries)
        report = self.cluster.run_job(
            job, [path for path, _len in parts], output, require_success=True
        )
        return report, self._sorted_rows(query, schema, output)

    def _sorted_rows(
        self, query: Query, schema: TableSchema, output: str
    ) -> list[tuple]:
        """Concatenate sorted parts in partition (= key) order.

        ``LIMIT k`` stops after the first parts that supply *k* rows —
        the total-order sort's payoff: the driver never touches the
        tail partitions (reversed for DESC).
        """
        client = self.cluster._output_client(None)
        names = sorted(
            status.path
            for status in client.list_status(output)
            if not status.is_dir
            and status.path.rsplit("/", 1)[-1].startswith("part-")
        )
        if query.order_desc:
            names = list(reversed(names))
        rows: list[tuple] = []
        for path in names:
            pairs = TextOutputFormat.parse(client.read_text(path))
            if query.order_desc:
                pairs = list(reversed(pairs))
            lines = [unescape_text(value) for _token, value in pairs]
            rows.extend(
                self._rows_from_pairs(
                    query,
                    schema,
                    [TextOutputFormat.parse_line(line) for line in lines],
                )
            )
            if query.limit is not None and len(rows) >= query.limit:
                break
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _nonempty_parts(self, output: str, with_length: bool = False):
        """Non-empty ``part-*`` files of a finished stage, name-sorted."""
        client = self.cluster._output_client(None)
        parts = sorted(
            (status.path, status.length)
            for status in client.list_status(output)
            if not status.is_dir
            and status.path.rsplit("/", 1)[-1].startswith("part-")
            and status.length > 0
        )
        if with_length:
            return parts
        return [path for path, _length in parts]

    def _output_columns(self, query: Query, schema: TableSchema) -> tuple[str, ...]:
        out: list[str] = []
        for item in query.items:
            if item.column == "*" and item.aggregate is None:
                out.extend(name for name, _t in schema.columns)
            else:
                out.append(item.label)
        return tuple(out)

    def _collect(self, query: Query, schema: TableSchema, output: str) -> list[tuple]:
        return self._rows_from_pairs(
            query, schema, self.cluster.read_output(output)
        )

    def _rows_from_pairs(
        self, query: Query, schema: TableSchema, pairs: list[tuple[str, str]]
    ) -> list[tuple]:
        rows: list[tuple] = []
        if not query.is_aggregation:
            parsers: list[Callable[[str], object]] = []
            for item in query.items:
                if item.column == "*":
                    parsers.extend(
                        t.parse for _name, t in schema.columns
                    )
                elif item.udf is not None:
                    # UDF output type is whatever the function returned,
                    # serialised; keep the raw text.
                    parsers.append(lambda p: p)
                else:
                    parsers.append(schema.column_type(item.column).parse)
            for key_text, _null in pairs:
                parts = key_text.split(GROUP_SEP)
                rows.append(
                    tuple(parse(p) for parse, p in zip(parsers, parts))
                )
            return rows

        group_types = [schema.column_type(c) for c in query.group_by]
        for key_text, value_text in pairs:
            row: list = []
            if query.group_by:
                group_values = key_text.split(GROUP_SEP)
                group_map = dict(zip(query.group_by, (
                    t.parse(v) for t, v in zip(group_types, group_values)
                )))
            else:
                group_map = {}
            finals = value_text.split(AGG_SEP)
            agg_iter = iter(finals)
            for item in query.items:
                if item.aggregate is None:
                    row.append(group_map[item.column])
                else:
                    raw = next(agg_iter)
                    row.append(self._parse_agg(item, schema, raw))
            rows.append(tuple(row))
        return rows

    @staticmethod
    def _parse_agg(item: SelectItem, schema: TableSchema, raw: str):
        if raw == "":
            return None
        if item.aggregate == "COUNT":
            return int(raw)
        if item.aggregate == "AVG":
            return float(raw)
        if item.aggregate == "SUM":
            return float(raw)
        # MIN/MAX keep the column's type.
        return schema.column_type(item.column).parse(raw)

    def _order_and_limit(
        self, query: Query, schema: TableSchema, rows: list[tuple]
    ) -> list[tuple]:
        if query.order_by is not None:
            # The same composite token the multi-stage sort shuffles on:
            # single-stage and total-order plans return identical rows.
            index = self._sort_index(query, schema)
            rows = sorted(
                rows,
                key=lambda r: row_sort_token(r, index),
                reverse=query.order_desc,
            )
        else:
            rows = sorted(rows, key=lambda r: tuple(str(v) for v in r))
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _sort_index(self, query: Query, schema: TableSchema) -> int:
        """Position of ORDER BY in the *expanded* output row (``*``
        widens to the schema's columns, which the label list ignores)."""
        labels: list[str] = []
        columns: list[str] = []
        for item in query.items:
            if item.column == "*" and item.aggregate is None:
                for name, _ctype in schema.columns:
                    labels.append(name)
                    columns.append(name)
            else:
                labels.append(item.label)
                columns.append(item.column)
        if query.order_by in labels:
            return labels.index(query.order_by)
        return columns.index(query.order_by)

    def _field_specs(
        self, query: Query, schema: TableSchema
    ) -> tuple[tuple[str, int, str], ...]:
        """Per-output-column ``(source, index, kind)`` line-decode spec
        (the param the sort stage's mappers rebuild rows from)."""
        specs: list[tuple[str, int, str]] = []
        if query.is_aggregation:
            agg_index = 0
            for item in query.items:
                if item.aggregate is None:
                    specs.append(
                        (
                            "group",
                            query.group_by.index(item.column),
                            schema.column_type(item.column).value,
                        )
                    )
                elif item.aggregate == "COUNT":
                    specs.append(("agg", agg_index, "int"))
                    agg_index += 1
                elif item.aggregate in ("SUM", "AVG"):
                    specs.append(("agg", agg_index, "float"))
                    agg_index += 1
                else:  # MIN/MAX keep the column's type
                    specs.append(
                        (
                            "agg",
                            agg_index,
                            schema.column_type(item.column).value,
                        )
                    )
                    agg_index += 1
            return tuple(specs)
        position = 0
        for item in query.items:
            if item.column == "*":
                for _name, ctype in schema.columns:
                    specs.append(("key", position, ctype.value))
                    position += 1
            elif item.udf is not None:
                specs.append(("key", position, "raw"))
                position += 1
            else:
                specs.append(
                    ("key", position, schema.column_type(item.column).value)
                )
                position += 1
        return tuple(specs)
