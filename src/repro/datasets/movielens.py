"""Synthetic MovieLens-style movie ratings.

Stands in for the GroupLens MovieLens 10M dataset ("250MB in size and
contains 10 million ratings for 10,000 movies by 72,000 users") used by
the first assignment:

1. descriptive statistics of ratings per *genre* — which forces the map
   side to join each rating against the ``movies.dat`` side file (the
   whole point: side-file access strategy dominates runtime);
2. the user with the most ratings, and that user's favourite genre —
   which forces a custom composite output value.

Formats follow MovieLens::

    ratings.dat:  UserID::MovieID::Rating::Timestamp
    movies.dat:   MovieID::Title (Year)::Genre1|Genre2|...
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngStream

GENRES = [
    "Action",
    "Adventure",
    "Animation",
    "Children",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "Film-Noir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Thriller",
    "War",
    "Western",
]

#: Genre rating biases (stars added/subtracted from the base mean) —
#: gives each genre a distinct true mean for the statistics assignment.
_GENRE_BIAS = {
    "Film-Noir": 0.45,
    "Documentary": 0.40,
    "War": 0.30,
    "Drama": 0.20,
    "Crime": 0.15,
    "Mystery": 0.10,
    "Animation": 0.05,
    "Western": 0.00,
    "Musical": 0.00,
    "Romance": -0.05,
    "Thriller": -0.05,
    "Adventure": -0.10,
    "Comedy": -0.15,
    "Action": -0.20,
    "Fantasy": -0.10,
    "Sci-Fi": -0.15,
    "Children": -0.25,
    "Horror": -0.45,
}


@dataclass
class GenreStats:
    """Exact descriptive statistics for one genre's ratings."""

    count: int
    mean: float
    minimum: float
    maximum: float


@dataclass
class MovieLensDataset:
    """Ratings + movies side file + exact ground truths."""

    ratings_text: str
    movies_text: str
    num_ratings: int
    num_movies: int
    num_users: int
    genre_stats: dict[str, GenreStats] = field(default_factory=dict)
    ratings_per_user: Counter = field(default_factory=Counter)
    user_genre_counts: dict[int, Counter] = field(default_factory=dict)

    def top_rater(self) -> int:
        """The user with the most ratings (count desc, id asc)."""
        best_count = max(self.ratings_per_user.values())
        return min(
            u for u, c in self.ratings_per_user.items() if c == best_count
        )

    def favorite_genre_of(self, user: int) -> str:
        counts = self.user_genre_counts[user]
        best = max(counts.values())
        return min(g for g, c in counts.items() if c == best)

    @property
    def size_bytes(self) -> int:
        return len(self.ratings_text.encode()) + len(self.movies_text.encode())


_TITLE_WORDS = (
    "Midnight Return Last Golden Silent Broken Secret Lost City River "
    "Winter Crimson Iron Paper Glass Distant Burning Final Empty Hollow"
).split()


def generate_movielens(
    seed: int = 0,
    num_movies: int = 200,
    num_users: int = 300,
    num_ratings: int = 8_000,
) -> MovieLensDataset:
    """Generate a laptop-scale MovieLens with exact ground truth."""
    rng = RngStream(seed=seed).child("datasets", "movielens")
    gen = rng.rng

    # Movies: 1-3 genres each, title with release year.
    movie_genres: list[list[str]] = []
    movie_lines: list[str] = []
    for movie_id in range(1, num_movies + 1):
        count = int(gen.integers(1, 4))
        picks = sorted(
            GENRES[i] for i in gen.choice(len(GENRES), size=count, replace=False)
        )
        movie_genres.append(picks)
        w1, w2 = gen.choice(len(_TITLE_WORDS), size=2, replace=False)
        title = f"{_TITLE_WORDS[w1]} {_TITLE_WORDS[w2]} ({1950 + int(gen.integers(0, 60))})"
        movie_lines.append(f"{movie_id}::{title}::{'|'.join(picks)}")

    # Users: heavy-tailed activity (a clear top rater emerges naturally).
    activity = gen.pareto(1.3, size=num_users) + 1.0
    activity /= activity.sum()

    user_ids = gen.choice(num_users, size=num_ratings, p=activity) + 1
    movie_ids = gen.integers(1, num_movies + 1, size=num_ratings)
    timestamps = gen.integers(978_000_000, 1_100_000_000, size=num_ratings)

    rating_lines: list[str] = []
    genre_acc: dict[str, list] = {g: [0, 0.0, 9.9, -9.9] for g in GENRES}
    ratings_per_user: Counter = Counter()
    user_genre_counts: dict[int, Counter] = defaultdict(Counter)
    for i in range(num_ratings):
        movie = int(movie_ids[i])
        genres = movie_genres[movie - 1]
        bias = float(np.mean([_GENRE_BIAS[g] for g in genres]))
        raw = gen.normal(3.5 + bias, 1.0)
        rating = float(np.clip(np.round(raw * 2) / 2, 0.5, 5.0))
        user = int(user_ids[i])
        rating_lines.append(f"{user}::{movie}::{rating:g}::{timestamps[i]}")
        ratings_per_user[user] += 1
        for genre in genres:
            acc = genre_acc[genre]
            acc[0] += 1
            acc[1] += rating
            acc[2] = min(acc[2], rating)
            acc[3] = max(acc[3], rating)
            user_genre_counts[user][genre] += 1

    genre_stats = {
        g: GenreStats(
            count=acc[0],
            mean=acc[1] / acc[0],
            minimum=acc[2],
            maximum=acc[3],
        )
        for g, acc in genre_acc.items()
        if acc[0] > 0
    }
    return MovieLensDataset(
        ratings_text="\n".join(rating_lines) + "\n",
        movies_text="\n".join(movie_lines) + "\n",
        num_ratings=num_ratings,
        num_movies=num_movies,
        num_users=num_users,
        genre_stats=genre_stats,
        ratings_per_user=ratings_per_user,
        user_genre_counts=dict(user_genre_counts),
    )
