"""Synthetic Google-cluster-trace-style task event log.

Stands in for the 2011 Google cluster trace (~171 GB), which the
Version-1 second assignment mined: "analyze the 171GB of a Google Data
Center's system log and find the computing job with largest number of
task resubmissions".

Format (a compact cut of the real ``task_events`` table)::

    timestamp,job_id,task_index,machine_id,event_type

with the real trace's event vocabulary: SUBMIT(0), SCHEDULE(1),
EVICT(2), FAIL(3), FINISH(4), KILL(5), LOST(6).  A *resubmission* is a
SUBMIT of a task that already ran — exactly what a student's MapReduce
job must count per job id.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.util.rng import RngStream

EVENT_SUBMIT = 0
EVENT_SCHEDULE = 1
EVENT_EVICT = 2
EVENT_FAIL = 3
EVENT_FINISH = 4
EVENT_KILL = 5
EVENT_LOST = 6

EVENT_NAMES = {
    EVENT_SUBMIT: "SUBMIT",
    EVENT_SCHEDULE: "SCHEDULE",
    EVENT_EVICT: "EVICT",
    EVENT_FAIL: "FAIL",
    EVENT_FINISH: "FINISH",
    EVENT_KILL: "KILL",
    EVENT_LOST: "LOST",
}


@dataclass
class GoogleTraceDataset:
    """Event log text plus exact per-job resubmission ground truth."""

    events_text: str
    num_jobs: int
    num_events: int
    resubmissions_per_job: Counter = field(default_factory=Counter)

    def max_resubmission_job(self) -> tuple[int, int]:
        """(job_id, resubmissions) — the assignment answer
        (count desc, job id asc)."""
        if not self.resubmissions_per_job:
            return (0, 0)
        best = max(self.resubmissions_per_job.values())
        job = min(
            j for j, c in self.resubmissions_per_job.items() if c == best
        )
        return job, best

    @property
    def size_bytes(self) -> int:
        return len(self.events_text.encode("utf-8"))


def generate_google_trace(
    seed: int = 0,
    num_jobs: int = 80,
    flaky_fraction: float = 0.15,
    mean_tasks: float = 12.0,
    num_machines: int = 1000,
) -> GoogleTraceDataset:
    """Generate a task-event log with a heavy tail of flaky jobs.

    Most jobs run their tasks once; a ``flaky_fraction`` of jobs suffers
    eviction/failure storms, producing the resubmission bursts the
    assignment hunts for.
    """
    rng = RngStream(seed=seed).child("datasets", "google_trace")
    lines: list[str] = []
    resubs: Counter = Counter()
    timestamp = 0
    num_events = 0

    for job_id in range(1, num_jobs + 1):
        num_tasks = max(1, int(rng.exponential(mean_tasks)))
        flaky = rng.bernoulli(flaky_fraction)
        # Flaky jobs retry each task a geometric number of times.
        for task_index in range(num_tasks):
            attempts = 1
            if flaky:
                # 1 + Geometric: heavy-ish retry tail.
                while rng.bernoulli(0.55) and attempts < 40:
                    attempts += 1
            for attempt in range(attempts):
                machine = rng.integers(1, num_machines + 1)
                timestamp += rng.integers(1, 50)
                lines.append(
                    f"{timestamp},{job_id},{task_index},{machine},{EVENT_SUBMIT}"
                )
                timestamp += rng.integers(1, 20)
                lines.append(
                    f"{timestamp},{job_id},{task_index},{machine},{EVENT_SCHEDULE}"
                )
                is_last = attempt == attempts - 1
                outcome = (
                    EVENT_FINISH
                    if is_last
                    else (EVENT_FAIL if rng.bernoulli(0.6) else EVENT_EVICT)
                )
                timestamp += rng.integers(10, 500)
                lines.append(
                    f"{timestamp},{job_id},{task_index},{machine},{outcome}"
                )
                num_events += 3
                if attempt > 0:
                    resubs[job_id] += 1
        if job_id not in resubs:
            resubs[job_id] = 0

    return GoogleTraceDataset(
        events_text="\n".join(lines) + "\n",
        num_jobs=num_jobs,
        num_events=num_events,
        resubmissions_per_job=resubs,
    )
