"""Synthetic Airline On-Time Performance data.

Stands in for the ASA Data Expo 2009 dataset (~12 GB, "a reasonable
size with a straightforward single-table data schematic") the course
uses for the combiner examples: "find out the average delay time for
each individual airline on the entire data set".

Schema (the columns the examples touch, in the real file's spirit)::

    Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,FlightNum,
    ArrDelay,DepDelay,Origin,Dest,Distance,Cancelled

Each carrier has a characteristic delay distribution; cancelled flights
carry ``NA`` delays — the parsing wrinkle real data inflicts on
students, preserved here deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngStream

HEADER = (
    "Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,FlightNum,"
    "ArrDelay,DepDelay,Origin,Dest,Distance,Cancelled"
)

#: (carrier code, mean arrival delay minutes, std) — ordered so the
#: ranking students compute is stable and plausible.
CARRIERS: list[tuple[str, float, float]] = [
    ("WN", 4.0, 18.0),
    ("HA", 1.5, 12.0),
    ("AS", 6.0, 20.0),
    ("DL", 7.5, 24.0),
    ("AA", 9.0, 26.0),
    ("UA", 11.0, 28.0),
    ("US", 8.0, 22.0),
    ("CO", 10.0, 25.0),
    ("NW", 6.5, 21.0),
    ("B6", 12.0, 30.0),
    ("F9", 8.5, 23.0),
    ("FL", 9.5, 24.0),
    ("MQ", 13.0, 32.0),
    ("OO", 11.5, 29.0),
    ("EV", 14.0, 34.0),
    ("YV", 12.5, 31.0),
]

AIRPORTS = (
    "ATL ORD DFW LAX CLT PHX IAH DEN DTW MSP SFO EWR LAS MCO BOS SEA GSP CAE"
).split()


@dataclass
class AirlineDataset:
    """CSV text plus exact per-carrier ground truth."""

    csv_text: str
    num_rows: int
    #: carrier -> (sum of arrival delays, count) over non-cancelled rows.
    delay_sums: dict[str, tuple[float, int]] = field(default_factory=dict)

    def true_average_delays(self) -> dict[str, float]:
        return {
            carrier: total / count
            for carrier, (total, count) in self.delay_sums.items()
            if count
        }

    def best_carrier(self) -> str:
        """Lowest average arrival delay (the bragging-rights answer)."""
        averages = self.true_average_delays()
        return min(sorted(averages), key=lambda c: averages[c])

    @property
    def size_bytes(self) -> int:
        return len(self.csv_text.encode("utf-8"))


def generate_airline(
    seed: int = 0,
    num_rows: int = 20_000,
    cancelled_rate: float = 0.02,
    year: int = 2008,
) -> AirlineDataset:
    """Generate ``num_rows`` of flight records (vectorized)."""
    rng = RngStream(seed=seed).child("datasets", "airline")
    gen = rng.rng

    carrier_idx = gen.integers(0, len(CARRIERS), size=num_rows)
    months = gen.integers(1, 13, size=num_rows)
    days = gen.integers(1, 29, size=num_rows)
    dows = gen.integers(1, 8, size=num_rows)
    dep_times = gen.integers(500, 2300, size=num_rows)
    flight_nums = gen.integers(1, 7000, size=num_rows)
    origins = gen.integers(0, len(AIRPORTS), size=num_rows)
    dests = gen.integers(0, len(AIRPORTS), size=num_rows)
    distances = gen.integers(100, 2700, size=num_rows)
    cancelled = gen.random(num_rows) < cancelled_rate

    means = np.array([CARRIERS[i][1] for i in carrier_idx])
    stds = np.array([CARRIERS[i][2] for i in carrier_idx])
    arr_delays = np.round(gen.normal(means, stds)).astype(np.int64)
    dep_delays = np.round(
        arr_delays * 0.8 + gen.normal(0.0, 6.0, size=num_rows)
    ).astype(np.int64)

    lines = [HEADER]
    delay_sums: dict[str, list] = {code: [0.0, 0] for code, _, _ in CARRIERS}
    for i in range(num_rows):
        code = CARRIERS[carrier_idx[i]][0]
        if cancelled[i]:
            arr, dep = "NA", "NA"
        else:
            arr, dep = str(arr_delays[i]), str(dep_delays[i])
            stats = delay_sums[code]
            stats[0] += float(arr_delays[i])
            stats[1] += 1
        lines.append(
            f"{year},{months[i]},{days[i]},{dows[i]},{dep_times[i]},{code},"
            f"{flight_nums[i]},{arr},{dep},{AIRPORTS[origins[i]]},"
            f"{AIRPORTS[dests[i]]},{distances[i]},{int(cancelled[i])}"
        )
    return AirlineDataset(
        csv_text="\n".join(lines) + "\n",
        num_rows=num_rows,
        delay_sums={k: (v[0], v[1]) for k, v in delay_sums.items()},
    )
