"""The dataset catalog: real-world sizes and staging-time reasoning.

Section III.C of the paper is a sizing argument: the Google trace
(171 GB) "can take over an hour for students to stage ... into the
temporary Hadoop cluster", making it "more appropriate for semester
projects"; the Yahoo data (10 GB) loads "in less than five minutes".
This module encodes those real sizes and the staging-time model the
Claim-C5 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.units import GB, MB, format_duration, format_size


@dataclass(frozen=True)
class DatasetInfo:
    """One course dataset: identity, real size, role, generator ref."""

    key: str
    name: str
    real_size_bytes: int
    role: str
    generator: str  # dotted path of the synthetic generator
    assignment: str


DATASET_CATALOG: dict[str, DatasetInfo] = {
    "shakespeare": DatasetInfo(
        key="shakespeare",
        name="Complete Shakespeare collection",
        real_size_bytes=5 * MB,
        role="WordCount examples and the top-word assignment",
        generator="repro.datasets.shakespeare.generate_shakespeare",
        assignment="Version 1, assignment 1",
    ),
    "google_trace": DatasetInfo(
        key="google_trace",
        name="Google cluster trace",
        real_size_bytes=171 * GB,
        role="max-task-resubmissions analysis; semester-project scale",
        generator="repro.datasets.google_trace.generate_google_trace",
        assignment="Version 1, assignment 2",
    ),
    "airline": DatasetInfo(
        key="airline",
        name="Airline on-time performance",
        real_size_bytes=12 * GB,
        role="average-delay-per-airline combiner examples",
        generator="repro.datasets.airline.generate_airline",
        assignment="Versions 2-4, in-class examples",
    ),
    "movielens": DatasetInfo(
        key="movielens",
        name="MovieLens movie ratings",
        real_size_bytes=250 * MB,
        role="per-genre statistics + top rater (serial assignment 1)",
        generator="repro.datasets.movielens.generate_movielens",
        assignment="Versions 2-4, assignment 1",
    ),
    "yahoo_music": DatasetInfo(
        key="yahoo_music",
        name="Yahoo! Music user ratings",
        real_size_bytes=10 * GB,
        role="best-album analysis on HDFS (assignment 2)",
        generator="repro.datasets.yahoo_music.generate_yahoo_music",
        assignment="Versions 2-4, assignment 2",
    ),
}


def staging_time(
    dataset: DatasetInfo,
    ingest_bw_bytes_per_s: float,
) -> float:
    """Seconds to stage a dataset's *real* size into a fresh HDFS.

    ``ingest_bw_bytes_per_s`` is the end-to-end single-client ``-put``
    rate: bounded by the client's NIC and the write pipeline.
    """
    if ingest_bw_bytes_per_s <= 0:
        raise ValueError("ingest bandwidth must be positive")
    return dataset.real_size_bytes / ingest_bw_bytes_per_s


def staging_table(ingest_bw_bytes_per_s: float) -> list[tuple[str, str, str]]:
    """(dataset, size, staging time) rows, the Section III.C argument."""
    rows = []
    for info in DATASET_CATALOG.values():
        rows.append(
            (
                info.name,
                format_size(info.real_size_bytes),
                format_duration(staging_time(info, ingest_bw_bytes_per_s)),
            )
        )
    return rows
