"""A "complete Shakespeare collection" stand-in.

The first Version-1 assignment was "a slight modification of the
WordCount [... to] find the word with highest count in the complete
Shakespeare collection".  This generator produces a multi-play corpus
with Zipfian dialogue, play headers and scene markers, plus the exact
word-count ground truth so the grader can check the student answer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.datasets.zipf_text import ZipfTextGenerator
from repro.util.rng import RngStream

PLAY_TITLES = [
    "HAMLET",
    "MACBETH",
    "KING LEAR",
    "OTHELLO",
    "ROMEO AND JULIET",
    "JULIUS CAESAR",
    "THE TEMPEST",
    "TWELFTH NIGHT",
    "A MIDSUMMER NIGHT'S DREAM",
    "THE MERCHANT OF VENICE",
]


#: Byte-translation table for ASCII text: every byte that cannot extend
#: a word (``ch.isalnum() or ch == "'"``) becomes a space.  Bytes above
#: 0x7F never occur in ASCII input, so their entries are unused.
_ASCII_SEPARATORS = bytes(
    i for i in range(256) if not (chr(i).isalnum() or chr(i) == "'")
)
_ASCII_TO_SPACE = bytes.maketrans(
    _ASCII_SEPARATORS, b" " * len(_ASCII_SEPARATORS)
)


def tokenize(text: str) -> list[str]:
    """The course's WordCount tokenizer: lowercase, alphanumeric runs
    (apostrophes count as word characters).

    Vectorized form of the per-character scan: every character that
    cannot extend a word is mapped to a space, then ``str.split`` cuts
    the runs — all C loops, so map tasks spend their time in the data
    path rather than in tokenisation.  ASCII text (the common case)
    goes through a 256-entry byte table; anything else builds a mapping
    from the text's *distinct* characters, so the Python-level
    predicate runs once per alphabet symbol, not once per character.
    """
    text = text.lower()
    if text.isascii():
        translated = text.encode("ascii").translate(_ASCII_TO_SPACE)
        return translated.decode("ascii").split()
    table = {
        ord(ch): " " for ch in set(text) if not (ch.isalnum() or ch == "'")
    }
    return text.translate(table).split()


@dataclass
class ShakespeareCorpus:
    """Generated corpus plus exact ground truth."""

    text: str
    word_counts: Counter
    num_plays: int

    @property
    def top_word(self) -> tuple[str, int]:
        """The answer to assignment 1 (ties broken alphabetically)."""
        best = max(self.word_counts.items(), key=lambda kv: (kv[1], kv[0]))
        # Deterministic: highest count, then lexicographically smallest.
        top_count = best[1]
        candidates = sorted(
            w for w, c in self.word_counts.items() if c == top_count
        )
        return candidates[0], top_count

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


def generate_shakespeare(
    seed: int = 0,
    num_plays: int = 4,
    words_per_play: int = 3000,
    vocab_size: int = 1500,
) -> ShakespeareCorpus:
    """Generate a corpus of ``num_plays`` plays."""
    rng = RngStream(seed=seed).child("datasets", "shakespeare")
    gen = ZipfTextGenerator(rng.child("words"), vocab_size=vocab_size)
    pieces: list[str] = []
    for play_index in range(num_plays):
        title = PLAY_TITLES[play_index % len(PLAY_TITLES)]
        pieces.append(f"{title}\n")
        acts = 1 + rng.integers(2, 5)
        for act in range(1, acts + 1):
            pieces.append(f"ACT {act}. SCENE {rng.integers(1, 6)}.\n")
            pieces.append(gen.text(max(1, words_per_play // acts)))
    text = "".join(pieces)
    counts = Counter(tokenize(text))
    return ShakespeareCorpus(text=text, word_counts=counts, num_plays=num_plays)
