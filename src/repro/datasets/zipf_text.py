"""Zipf-distributed word streams — the backbone of text corpora.

Natural-language word frequencies follow Zipf's law; a WordCount over
Zipfian text therefore exhibits the same skew students see on real
text: a few huge reduce groups ("the", "and") and a long tail —
the reason the top-word assignment cannot just look at one reducer's
local maximum.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import RngStream

#: A compact high-frequency English vocabulary; ranks beyond it are
#: synthesized ("w<rank>") so vocab size is unbounded.
_COMMON_WORDS = (
    "the and to of i you my a that in is not it me s his be he with as this "
    "have thy him will so but her what for no shall all d they our if we "
    "lord thou king by do love good now sir from come o more at on your she "
    "or here would there then let how am was man than did when who their "
    "them like know may upon us such make yet must go speak see why where "
    "never doth tis give death day night heart most nor take hath which can "
    "mine eyes time hear say well enter are had"
).split()


class ZipfTextGenerator:
    """Generate line-oriented text with Zipfian word frequencies."""

    def __init__(
        self,
        rng: RngStream,
        vocab_size: int = 2000,
        exponent: float = 1.07,
        words_per_line: int = 9,
    ):
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        self.rng = rng
        self.vocab_size = vocab_size
        self.words_per_line = words_per_line
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks**-exponent
        self._probs = weights / weights.sum()
        self._vocab = [
            _COMMON_WORDS[i] if i < len(_COMMON_WORDS) else f"w{i}"
            for i in range(vocab_size)
        ]

    def words(self, count: int) -> list[str]:
        """Draw ``count`` words (vectorized)."""
        indices = self.rng.rng.choice(
            self.vocab_size, size=count, p=self._probs
        )
        vocab = self._vocab
        return [vocab[i] for i in indices]

    def text(self, num_words: int) -> str:
        """``num_words`` of text broken into lines."""
        words = self.words(num_words)
        per_line = self.words_per_line
        lines = [
            " ".join(words[i : i + per_line])
            for i in range(0, len(words), per_line)
        ]
        return "\n".join(lines) + "\n"

    def text_of_bytes(self, target_bytes: int) -> str:
        """Approximately ``target_bytes`` of text (within one line)."""
        # Average word ~4.5 chars + separator.
        estimate = max(1, int(target_bytes / 5.5))
        out = self.text(estimate)
        while len(out.encode()) < target_bytes:
            out += self.text(max(1, estimate // 10))
        return out
