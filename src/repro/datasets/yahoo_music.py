"""Synthetic Yahoo!-Music-style song ratings.

Stands in for the Yahoo! Webscope music dataset (~10 GB, "a complex set
of tables that is similar to the Movie Rating dataset") used by the
second assignment: "identify the album that has the highest average
rating using MapReduce and HDFS", which again requires joining against
"the list of songs in each album" — a side file.

Formats::

    ratings.txt:  UserID<TAB>SongID<TAB>Rating        (0-100 scale)
    songs.txt:    SongID<TAB>AlbumID<TAB>ArtistID
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngStream


@dataclass
class YahooMusicDataset:
    """Ratings + song/album side table + exact ground truth."""

    ratings_text: str
    songs_text: str
    num_ratings: int
    num_songs: int
    num_albums: int
    #: album id -> (rating sum, count)
    album_sums: dict[int, tuple[float, int]] = field(default_factory=dict)

    def true_album_averages(self, min_ratings: int = 1) -> dict[int, float]:
        return {
            album: total / count
            for album, (total, count) in self.album_sums.items()
            if count >= min_ratings
        }

    def best_album(self, min_ratings: int = 1) -> int:
        """Highest average rating (avg desc, id asc) — the assignment
        answer."""
        averages = self.true_album_averages(min_ratings)
        best = max(averages.values())
        return min(a for a, avg in averages.items() if avg == best)

    @property
    def size_bytes(self) -> int:
        return len(self.ratings_text.encode()) + len(self.songs_text.encode())


def generate_yahoo_music(
    seed: int = 0,
    num_albums: int = 60,
    songs_per_album: int = 8,
    num_users: int = 250,
    num_ratings: int = 6_000,
) -> YahooMusicDataset:
    """Generate a laptop-scale Yahoo! Music with exact ground truth."""
    rng = RngStream(seed=seed).child("datasets", "yahoo_music")
    gen = rng.rng

    num_songs = num_albums * songs_per_album
    song_album = np.repeat(np.arange(1, num_albums + 1), songs_per_album)
    song_artist = gen.integers(1, max(2, num_albums // 2), size=num_songs)
    songs_text = (
        "\n".join(
            f"{song_id}\t{song_album[song_id - 1]}\t{song_artist[song_id - 1]}"
            for song_id in range(1, num_songs + 1)
        )
        + "\n"
    )

    # Album quality varies; ratings on Yahoo's 0-100 scale.
    album_quality = gen.normal(60.0, 12.0, size=num_albums)
    users = gen.integers(1, num_users + 1, size=num_ratings)
    songs = gen.integers(1, num_songs + 1, size=num_ratings)
    albums = song_album[songs - 1]
    ratings = np.clip(
        np.round(gen.normal(album_quality[albums - 1], 15.0)), 0, 100
    ).astype(np.int64)

    lines = [
        f"{users[i]}\t{songs[i]}\t{ratings[i]}" for i in range(num_ratings)
    ]
    album_sums: dict[int, list] = {}
    for i in range(num_ratings):
        acc = album_sums.setdefault(int(albums[i]), [0.0, 0])
        acc[0] += float(ratings[i])
        acc[1] += 1
    return YahooMusicDataset(
        ratings_text="\n".join(lines) + "\n",
        songs_text=songs_text,
        num_ratings=num_ratings,
        num_songs=num_songs,
        num_albums=num_albums,
        album_sums={k: (v[0], v[1]) for k, v in album_sums.items()},
    )
