"""Synthetic dataset generators for the course's assignments.

Each generator is seeded and returns both the text of the dataset and an
exactly-computed ground truth, so assignment graders and tests can check
student-style MapReduce answers without re-deriving them.

Real-world datasets these stand in for (and their paper-quoted sizes):

- Shakespeare-style text corpus (the WordCount assignments);
- Airline On-Time Performance, ~12 GB (:mod:`~repro.datasets.airline`);
- MovieLens 10M ratings, ~250 MB (:mod:`~repro.datasets.movielens`);
- Yahoo! Music ratings, ~10 GB (:mod:`~repro.datasets.yahoo_music`);
- Google cluster trace, ~171 GB (:mod:`~repro.datasets.google_trace`).
"""

from repro.datasets.zipf_text import ZipfTextGenerator
from repro.datasets.shakespeare import generate_shakespeare
from repro.datasets.airline import AirlineDataset, generate_airline
from repro.datasets.movielens import MovieLensDataset, generate_movielens
from repro.datasets.yahoo_music import YahooMusicDataset, generate_yahoo_music
from repro.datasets.google_trace import GoogleTraceDataset, generate_google_trace
from repro.datasets.catalog import DATASET_CATALOG, DatasetInfo

__all__ = [
    "ZipfTextGenerator",
    "generate_shakespeare",
    "AirlineDataset",
    "generate_airline",
    "MovieLensDataset",
    "generate_movielens",
    "YahooMusicDataset",
    "generate_yahoo_music",
    "GoogleTraceDataset",
    "generate_google_trace",
    "DATASET_CATALOG",
    "DatasetInfo",
]
