"""Compile RDD lineage DAGs into MapReduce stages.

The Spark-to-MapReduce lowering, at teaching scale but with the real
structure:

- the DAG is **cut at wide dependencies** (``reduceByKey`` /
  ``groupByKey`` / ``join``); everything narrow between two cuts —
  ``map``, ``filter``, ``flatMap``, ``mapValues``, ``union`` — **fuses
  into the stage's Mapper** as a function chain applied per record;
- each wide node becomes one shuffle job whose reduce count is the
  RDD's partition count and whose partitioner is the engine's default
  ``HashPartitioner`` — which hashes exactly the bytes
  :func:`repro.sparklite.codec.encode_element` produces, so compiled
  and in-memory shuffles place every key identically;
- ``join`` compiles to a **tagged-union repartition join**: one job
  reads both parents' inputs, the mapper tags each value with its side
  (picked via ``Context.input_path``), the reducer buffers left values
  and streams the right side;
- ``cache()`` maps to an **HDFS-materialized intermediate**: the
  stage's output directory is kept and re-read by later actions
  (served by the PR 5 per-DataNode block cache), pruning the lineage
  below it from every subsequent plan;
- trailing narrow chains (an action on a non-wide RDD) run as an
  **order-preserving job**: the mapper keys each element with a
  ``(file, byte-offset, emission)`` hex token so the shuffle sort
  reconstructs exactly the partition-major element order the in-memory
  evaluator produces.

Bit-identity with the in-memory evaluator is the contract (the
differential property tests assert it):  element order out of every
action, fold order into every ``reduce_by_key``, value order in every
``group_by_key`` list, and pair order out of every ``join`` all match —
because the MR shuffle sorts stably on the same injective key encoding
the in-memory evaluator sorts by, and map outputs merge in task order
(= input-file order = parent-partition order).

No combiner is ever installed: ``reduce_by_key`` folds left in arrival
order exactly like the in-memory path, so even non-associative merge
functions produce identical results on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.mapreduce.api import Context, Job, Mapper, Reducer
from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import C, perf_stats
from repro.mapreduce.types import NullWritable, Text
from repro.sparklite.codec import decode_element, encode_element
from repro.sparklite.rdd import (
    RDD,
    HdfsTextRDD,
    ParallelizedRDD,
    _Filtered,
    _Joined,
    _Mapped,
    _Shuffled,
    _Union,
)
from repro.util.errors import MapReduceError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.context import SparkLiteContext


# --------------------------------------------------------------------------
# stage inputs


@dataclass(frozen=True)
class _Source:
    """A materialized RDD: ordered HDFS files holding its elements.

    ``kind="raw"`` — plain text lines (a ``textFile`` source);
    ``kind="enc"`` — one canonically-encoded element per line (stage
    outputs, parallelized data, cached intermediates).
    """

    kind: str
    files: tuple[str, ...]


@dataclass(frozen=True)
class _InputSpec:
    """One fused input of a stage: files + the narrow chain to apply.

    ``side`` tags join inputs ("0" left, "1" right; "" otherwise);
    ``chain`` is the fused narrow pipeline, parent-first, as
    ``(op, fn)`` tuples with op in map/filter/flat_map/map_values.
    """

    files: tuple[str, ...]
    kind: str
    chain: tuple[tuple[str, Callable], ...]
    side: str = ""


def _apply_chain(chain, element) -> list:
    """Run one element through a fused narrow chain."""
    items = [element]
    for op, fn in chain:
        if op == "map":
            items = [fn(x) for x in items]
        elif op == "filter":
            items = [x for x in items if fn(x)]
        elif op == "flat_map":
            items = [y for x in items for y in fn(x)]
        else:  # map_values
            items = [(k, fn(v)) for k, v in items]
    return items


# --------------------------------------------------------------------------
# the generated tasks.  All classes are module-level and configured
# through ``JobConf.params`` so jobs pickle by reference — pooled
# backends can ship them to workers whenever the chain functions
# themselves are picklable (module-level functions; lambdas fall back
# to inline execution, still bit-identical).


class _StageMapperBase(Mapper):
    """Decode + fuse: picks this split's input spec by ``input_path``."""

    def setup(self, context: Context) -> None:
        path = context.input_path
        self._spec = None
        for spec in context.get("sl_inputs", ()):
            if path in spec.files:
                self._spec = spec
                break
        if self._spec is None:
            raise MapReduceError(f"no sparklite input spec covers {path!r}")

    def _elements(self, value) -> list:
        line = value.value
        element = line if self._spec.kind == "raw" else decode_element(line)
        return _apply_chain(self._spec.chain, element)


class _ShuffleMapper(_StageMapperBase):
    """Emit (encoded key, encoded value) for the wide dependency."""

    def map(self, key, value, context: Context) -> None:
        for k, v in self._elements(value):
            context.write(Text(encode_element(k)), Text(encode_element(v)))


class _JoinMapper(_StageMapperBase):
    """Tagged-union join map side: prefix each value with its side."""

    def map(self, key, value, context: Context) -> None:
        side = self._spec.side
        for k, v in self._elements(value):
            context.write(Text(encode_element(k)), Text(side + encode_element(v)))


class _OrderedMapper(_StageMapperBase):
    """Order-preserving narrow stage: key = (file, offset, emission).

    The fixed-width hex token sorts lexicographically in exactly input
    order, so the (single) reduce re-emits elements in the original
    partition-major sequence — a total-order-preserving shuffle.
    """

    def setup(self, context: Context) -> None:
        super().setup(context)
        order = context.get("sl_file_order", ())
        self._file_index = order.index(context.input_path)

    def map(self, key, value, context: Context) -> None:
        for sub, element in enumerate(self._elements(value)):
            token = f"{self._file_index:08x}{key.value:016x}{sub:08x}"
            context.write(Text(token), Text(encode_element(element)))


class _FoldReducer(Reducer):
    """``reduce_by_key``: left-fold values in arrival order.

    Arrival order is (map task, emission) = (parent partition,
    position) — the same order the in-memory evaluator folds in, so
    non-associative merge functions still agree bit-for-bit.
    """

    def setup(self, context: Context) -> None:
        self._fn = context.get("sl_merge_fn")

    def reduce(self, key, values, context: Context) -> None:
        fn = self._fn
        acc = None
        seen = False
        for value in values:
            item = decode_element(value.value)
            if not seen:
                acc, seen = item, True
            else:
                acc = fn(acc, item)
        context.write(
            NullWritable(),
            Text(encode_element((decode_element(key.value), acc))),
        )


class _GroupReducer(Reducer):
    """``group_by_key``: values in arrival order, as one list."""

    def reduce(self, key, values, context: Context) -> None:
        items = [decode_element(v.value) for v in values]
        context.write(
            NullWritable(),
            Text(encode_element((decode_element(key.value), items))),
        )


class _JoinReducer(Reducer):
    """Buffer left values, stream the right side (repartition join)."""

    def reduce(self, key, values, context: Context) -> None:
        lefts: list = []
        rights: list = []
        for value in values:
            text = value.value
            (lefts if text[0] == "0" else rights).append(
                decode_element(text[1:])
            )
        if not lefts or not rights:
            return
        decoded_key = decode_element(key.value)
        for right in rights:
            for left in lefts:
                context.write(
                    NullWritable(),
                    Text(encode_element((decoded_key, (left, right)))),
                )


class _OrderedReducer(Reducer):
    """Drop the order token; emit elements in token (= input) order."""

    def reduce(self, key, values, context: Context) -> None:
        for value in values:
            context.write(NullWritable(), Text(value.value))


class ReduceByKeyStageJob(Job):
    mapper = _ShuffleMapper
    reducer = _FoldReducer


class GroupByKeyStageJob(Job):
    mapper = _ShuffleMapper
    reducer = _GroupReducer


class JoinStageJob(Job):
    mapper = _JoinMapper
    reducer = _JoinReducer


class MaterializeStageJob(Job):
    mapper = _OrderedMapper
    reducer = _OrderedReducer


#: Counters worth surfacing per stage in plan rollups.
_STAGE_COUNTERS = (
    C.MAP_INPUT_RECORDS,
    C.MAP_OUTPUT_RECORDS,
    C.REDUCE_OUTPUT_RECORDS,
    C.SPILLED_RECORDS,
    C.HDFS_BYTES_READ,
    C.HDFS_BYTES_WRITTEN,
)


class CompiledRunner:
    """Plans and runs one context's actions as MapReduce stages."""

    def __init__(self, context: "SparkLiteContext"):
        if context.cluster is None:
            raise ReproError("compiled sparklite needs a MapReduceCluster")
        self.context = context
        self.cluster = context.cluster
        self._client = self.cluster._output_client(None)
        self._seq = 0
        #: rdd_id -> materialized source, persistent across actions
        #: (``cache()``-ed RDDs and parallelized driver data).
        self._cached: dict[int, _Source] = {}
        self._cached_dirs: dict[int, list[str]] = {}
        #: rdd_id -> source for the *current* action (diamond reuse).
        self._memo: dict[int, _Source] = {}
        self._temp: list[str] = []
        #: Per-stage rollups of the most recent action.
        self.last_plan: list[dict] = []
        #: Full JobReport of the most recent stage (chaos drills and
        #: benchmarks assert on its counters).
        self.last_report = None
        #: Lifetime tallies: stages compiled, jobs run, cache hits.
        self.stages_run = 0
        self.jobs_run = 0
        self.cache_hits = 0

    # -- the action entry point -----------------------------------------
    def collect(self, rdd: RDD) -> list:
        """Compile + run the lineage below ``rdd``; return its elements
        in exactly the order ``RDD.collect`` produces in-memory."""
        self._memo = {}
        self._temp = []
        self.last_plan = []
        try:
            source = self._compile(rdd)
            return self._read(source)
        finally:
            self._cleanup()

    def evict(self, rdd_id: int) -> None:
        """Forget (and delete) a cached materialization (unpersist)."""
        self._cached.pop(rdd_id, None)
        for path in self._cached_dirs.pop(rdd_id, ()):
            self._client.delete(path, recursive=True)

    # -- compilation -----------------------------------------------------
    def _compile(self, rdd: RDD) -> _Source:
        """Materialize ``rdd``: run every stage below it, return where
        its elements now live."""
        if rdd.rdd_id in self._memo:
            return self._memo[rdd.rdd_id]
        if rdd.rdd_id in self._cached:
            self.cache_hits += 1
            return self._cached[rdd.rdd_id]
        produced_dirs: list[str] = []
        if isinstance(rdd, ParallelizedRDD):
            source = self._write_parallelized(rdd)
        elif isinstance(rdd, HdfsTextRDD):
            source = self._text_source(rdd)
        elif isinstance(rdd, _Shuffled):
            source, produced_dirs = self._run_shuffle(rdd)
        elif isinstance(rdd, _Joined):
            source, produced_dirs = self._run_join(rdd)
        else:  # narrow or union root / cached narrow node
            source, produced_dirs = self._run_materialize(rdd)
        self._memo[rdd.rdd_id] = source
        if rdd.cached or isinstance(rdd, ParallelizedRDD):
            # Promote to a persistent HDFS materialization: later
            # actions read it (through the block cache) instead of
            # recomputing the lineage below — Spark's cache(), with
            # HDFS as the storage level.  Parallelized driver data is
            # pinned too: it exists nowhere else.
            self._cached[rdd.rdd_id] = source
            self._cached_dirs[rdd.rdd_id] = produced_dirs
            for path in produced_dirs:
                if path in self._temp:
                    self._temp.remove(path)
        return source

    def _gather(
        self, rdd: RDD, chain: tuple
    ) -> list[tuple[_Source, tuple]]:
        """Walk down from a stage boundary, fusing narrow ops, until
        every branch bottoms out at a materialized source."""
        if (
            rdd.rdd_id in self._memo
            or rdd.rdd_id in self._cached
            or rdd.cached
            or isinstance(
                rdd, (ParallelizedRDD, HdfsTextRDD, _Shuffled, _Joined)
            )
        ):
            return [(self._compile(rdd), chain)]
        if isinstance(rdd, _Union):
            return self._gather(rdd.parents[0], chain) + self._gather(
                rdd.parents[1], chain
            )
        return self._gather(rdd.parents[0], (_op_of(rdd),) + chain)

    def _decompose(self, rdd: RDD) -> list[tuple[_Source, tuple]]:
        """Like ``_gather`` but for the stage's own root node (so a
        ``cached`` flag on it doesn't recurse into ``_compile``)."""
        if isinstance(rdd, _Union):
            return self._gather(rdd.parents[0], ()) + self._gather(
                rdd.parents[1], ()
            )
        return self._gather(rdd.parents[0], (_op_of(rdd),))

    # -- stage execution -------------------------------------------------
    def _run_shuffle(self, rdd: _Shuffled) -> tuple[_Source, list[str]]:
        parts = self._gather(rdd.parents[0], ())
        specs, files = self._specs(parts)
        if not files:
            return _Source("enc", ()), []
        job_cls = (
            ReduceByKeyStageJob if rdd.merge_fn is not None else GroupByKeyStageJob
        )
        job = job_cls(
            conf=JobConf(
                name=f"sparklite-{rdd.description}-{rdd.rdd_id}",
                user="sparklite",
                num_reduces=rdd.num_partitions,
            ),
            sl_inputs=specs,
            sl_merge_fn=rdd.merge_fn,
        )
        out = self._next_dir(rdd.description, rdd.rdd_id)
        self._run_job(job, files, out, stage=rdd.description)
        return self._dir_source(out), [out]

    def _run_join(self, rdd: _Joined) -> tuple[_Source, list[str]]:
        left = self._gather(rdd.parents[0], ())
        right = self._gather(rdd.parents[1], ())
        if not any(s.files for s, _c in left) or not any(
            s.files for s, _c in right
        ):
            return _Source("enc", ()), []
        specs, files = self._specs(left, side="0", more=right, more_side="1")
        job = JoinStageJob(
            conf=JobConf(
                name=f"sparklite-join-{rdd.rdd_id}",
                user="sparklite",
                num_reduces=rdd.num_partitions,
            ),
            sl_inputs=specs,
        )
        out = self._next_dir("join", rdd.rdd_id)
        self._run_job(job, files, out, stage="join")
        return self._dir_source(out), [out]

    def _run_materialize(self, rdd: RDD) -> tuple[_Source, list[str]]:
        parts = self._decompose(rdd)
        return self._materialize_parts(
            parts, label=rdd.description, rdd_id=rdd.rdd_id
        )

    def _materialize_parts(
        self, parts, label: str, rdd_id: int
    ) -> tuple[_Source, list[str]]:
        specs, files = self._specs(parts, ordered=True)
        if not files:
            return _Source("enc", ()), []
        job = MaterializeStageJob(
            conf=JobConf(
                name=f"sparklite-{label}-{rdd_id}",
                user="sparklite",
                num_reduces=1,
            ),
            sl_inputs=specs,
            sl_file_order=files,
        )
        out = self._next_dir(label, rdd_id)
        self._run_job(job, list(files), out, stage=label)
        return self._dir_source(out), [out]

    def _specs(
        self, parts, side: str = "", more=None, more_side: str = "",
        ordered: bool = False,
    ) -> tuple[tuple[_InputSpec, ...], tuple[str, ...]]:
        """Turn gathered (source, chain) branches into input specs.

        A file claimed twice with *different* (side, chain) — or at all,
        for order-token stages — cannot be disambiguated inside the
        mapper, so the later branch is pre-materialized into its own
        directory first.  (The common duplicate, a self-union with one
        identical chain, just lists the file twice: two splits, two
        passes, exactly the in-memory union semantics.)
        """
        tagged = [(s, c, side) for s, c in parts]
        if more is not None:
            tagged += [(s, c, more_side) for s, c in more]
        specs: list[_InputSpec] = []
        files: list[str] = []
        claimed: dict[str, tuple] = {}
        for index, (source, chain, tag) in enumerate(tagged):
            if not source.files:
                continue
            key = (tag, chain)
            conflict = any(
                f in claimed and (claimed[f] != key or ordered)
                for f in source.files
            )
            if conflict:
                source, dirs = self._materialize_parts(
                    [(source, chain)], label="branch", rdd_id=index
                )
                chain = ()
                key = (tag, chain)
                if not source.files:
                    continue
            for f in source.files:
                claimed.setdefault(f, key)
            specs.append(
                _InputSpec(
                    files=source.files, kind=source.kind, chain=chain, side=tag
                )
            )
            files.extend(source.files)
        return tuple(specs), tuple(files)

    def _run_job(self, job: Job, files, out: str, stage: str) -> None:
        perf = perf_stats()
        before = perf.snapshot()
        report = self.cluster.run_job(job, list(files), out, require_success=True)
        self._temp.append(out)
        self.last_report = report
        self.jobs_run += 1
        self.stages_run += 1
        counters = {
            name: report.counters.get((group, name))
            for group, name in _STAGE_COUNTERS
        }
        self.last_plan.append(
            {
                "stage": stage,
                "job": job.name,
                "counters": counters,
                "perf": perf.delta_since(before),
            }
        )

    # -- sources ---------------------------------------------------------
    def _write_parallelized(self, rdd: ParallelizedRDD) -> _Source:
        base = f"/tmp/sparklite/data_{rdd.rdd_id}"
        files = []
        for index, slice_ in enumerate(rdd._slices):
            if not slice_:
                continue
            path = f"{base}/part-{index:05d}"
            text = "\n".join(encode_element(item) for item in slice_) + "\n"
            self._client.put_text(path, text, overwrite=True)
            files.append(path)
        # Always registered persistent via _compile (driver data lives
        # nowhere else); record the directory for evict().
        self._cached_dirs.setdefault(rdd.rdd_id, []).append(base)
        return _Source("enc", tuple(files))

    def _text_source(self, rdd: HdfsTextRDD) -> _Source:
        lengths, _locations = self.context.fetcher.block_layout(rdd.path)
        if not lengths or not sum(lengths):
            return _Source("raw", ())
        return _Source("raw", (rdd.path,))

    def _dir_source(self, out: str) -> _Source:
        files = tuple(
            status.path
            for status in self._client.list_status(out)
            if not status.is_dir
            and status.path.rsplit("/", 1)[-1].startswith("part-")
            and status.length > 0
        )
        return _Source("enc", files)

    def _next_dir(self, label: str, rdd_id: int) -> str:
        self._seq += 1
        safe = "".join(ch if ch.isalnum() else "_" for ch in label)
        return f"/tmp/sparklite/stage_{self._seq:05d}_{safe}_{rdd_id}"

    # -- reading results -------------------------------------------------
    def _read(self, source: _Source) -> list:
        out: list = []
        for path in source.files:
            text = self._client.read_text(path)
            lines = text.split("\n")
            if lines and lines[-1] == "":
                lines.pop()
            if source.kind == "raw":
                out.extend(lines)
            else:
                out.extend(decode_element(line) for line in lines)
        return out

    def _cleanup(self) -> None:
        if self.context.keep_stage_outputs:
            self._temp = []
            return
        for path in self._temp:
            self._client.delete(path, recursive=True)
        self._temp = []


def _op_of(rdd: RDD) -> tuple[str, Callable]:
    if isinstance(rdd, _Mapped):
        return (rdd.kind, rdd.fn)
    if isinstance(rdd, _Filtered):
        return ("filter", rdd.predicate)
    raise ReproError(f"not a fusable narrow op: {rdd.description}")
