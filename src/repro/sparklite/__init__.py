"""Spark-lite: in-memory distributed computing over the same cluster.

The paper's conclusion lists "in-memory distributed computing [Apache
Spark]" among the ecosystem components future course versions should
teach.  This package is a teaching-scale Spark: resilient distributed
datasets with lazy transformations, hash-partitioned shuffles, explicit
caching on executors — and the property that gives RDDs their name:
when an executor dies and takes its cached partitions with it, the
*lineage* recomputes exactly the lost partitions.

>>> from repro.sparklite import SparkLiteContext
>>> sc = SparkLiteContext.local(num_executors=2)
>>> rdd = sc.parallelize(range(10), num_partitions=4)
>>> rdd.map(lambda x: x * x).filter(lambda x: x % 2 == 0).sum()
120
"""

from repro.sparklite.context import SparkLiteContext
from repro.sparklite.rdd import RDD

__all__ = ["SparkLiteContext", "RDD"]
