"""Spark-lite: in-memory distributed computing over the same cluster.

The paper's conclusion lists "in-memory distributed computing [Apache
Spark]" among the ecosystem components future course versions should
teach.  This package is a teaching-scale Spark: resilient distributed
datasets with lazy transformations, hash-partitioned shuffles, explicit
caching on executors — and the property that gives RDDs their name:
when an executor dies and takes its cached partitions with it, the
*lineage* recomputes exactly the lost partitions.

>>> from repro.sparklite import SparkLiteContext
>>> sc = SparkLiteContext.local(num_executors=2)
>>> rdd = sc.parallelize(range(10), num_partitions=4)
>>> rdd.map(lambda x: x * x).filter(lambda x: x % 2 == 0).sum()
120
"""

from repro.sparklite.codec import decode_element, encode_element, stable_hash
from repro.sparklite.context import SparkLiteContext
from repro.sparklite.rdd import RDD


def lint_rdd_pipeline(*paths):
    """mrlint RDD pipeline code with the MRS2xx closure rules.

    The sparklite-side mirror of ``lint_reference_solutions()``: pass
    the files/directories holding pipeline scripts (defaults to the
    repository's ``examples/``) and get back a list of
    :class:`~repro.analysis.findings.Finding` — nondeterministic
    closures, captured-accumulator mutations, nested actions, and
    non-associative reduce operands.
    """
    from repro.analysis.linter import lint_paths, lint_pipelines

    if not paths:
        return [f for f in lint_pipelines() if f.rule.startswith("MRS")]
    return lint_paths(list(paths), families=("sparklite",))


__all__ = [
    "SparkLiteContext",
    "RDD",
    "lint_rdd_pipeline",
    "encode_element",
    "decode_element",
    "stable_hash",
]
