"""A canonical, injective text codec for sparklite elements.

Compiled execution (``repro.sparklite.planner``) ships RDD elements
through MapReduce stages as ``Text`` lines, so every element needs a
textual form that

- is **injective**: distinct elements never collide (``repr`` fails
  this — ``"1"`` vs ``1`` vs ``1.0`` — which is why partitioning and
  ordering used to be fragile);
- is **line-safe**: never contains ``\\t``, ``\\n`` or ``\\r``, so one
  encoded element is exactly one ``TextOutputFormat`` field;
- sorts **identically everywhere**: the in-memory evaluator and the MR
  shuffle order keys by the same encoded string, which is what makes
  compiled output bit-identical to in-memory output;
- is **seed-stable**: hashing the encoded bytes (CRC32) gives the same
  partition under every ``PYTHONHASHSEED`` and Python build.

The supported element universe is what RDD pipelines actually move:
``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and
``tuple``/``list`` nests of those.
"""

from __future__ import annotations

import math
import struct
import zlib

from repro.util.errors import ReproError


class CodecError(ReproError):
    """An element outside the encodable universe, or a corrupt encoding."""


_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def escape_text(text: str) -> str:
    """Make a string line-safe (no tab/newline/CR, reversible)."""
    if "\\" not in text and "\t" not in text and "\n" not in text and "\r" not in text:
        return text
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def unescape_text(text: str) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    it = iter(range(len(text)))
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise CodecError(f"dangling escape in {text!r}")
            nxt = text[i + 1]
            if nxt not in _UNESCAPES:
                raise CodecError(f"bad escape \\{nxt} in {text!r}")
            out.append(_UNESCAPES[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    del it
    return "".join(out)


def encode_element(value) -> str:
    """Encode one element as a line-safe, injective, sortable-enough string.

    The leading tag byte keeps types apart (``1`` and ``"1"`` and
    ``True`` all encode differently); containers carry explicit length
    prefixes so nesting round-trips unambiguously.
    """
    # bool before int: bool is an int subclass but must stay distinct.
    if value is None:
        return "n"
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        if math.isnan(value):
            return "fnan"
        # repr round-trips every finite float (and +/-inf) exactly.
        return f"f{value!r}"
    if isinstance(value, str):
        return "s" + escape_text(value)
    if isinstance(value, bytes):
        return "y" + value.hex()
    if isinstance(value, (tuple, list)):
        tag = "t" if isinstance(value, tuple) else "l"
        parts = [encode_element(item) for item in value]
        return tag + str(len(parts)) + "".join(f",{len(p)}:{p}" for p in parts)
    raise CodecError(
        f"cannot encode {type(value).__name__!r} element {value!r}; "
        "compiled sparklite supports None/bool/int/float/str/bytes and "
        "tuple/list nests of those"
    )


def decode_element(text: str):
    """Invert :func:`encode_element`."""
    value, rest = _decode(text)
    if rest:
        raise CodecError(f"trailing bytes {rest!r} after decoding {text!r}")
    return value


def _decode(text: str):
    if not text:
        raise CodecError("empty encoding")
    tag, body = text[0], text[1:]
    if tag == "n":
        return None, body
    if tag == "b":
        if body[:1] not in ("0", "1"):
            raise CodecError(f"bad bool encoding {text!r}")
        return body[0] == "1", body[1:]
    if tag == "i":
        digits = _take_number(body)
        return int(digits), body[len(digits):]
    if tag == "f":
        if body.startswith("nan"):
            return math.nan, body[3:]
        digits = _take_float(body)
        return float(digits), body[len(digits):]
    if tag == "s":
        return unescape_text(body), ""
    if tag == "y":
        return bytes.fromhex(body), ""
    if tag in ("t", "l"):
        count_digits = _take_number(body)
        count = int(count_digits)
        rest = body[len(count_digits):]
        items = []
        for _ in range(count):
            if not rest.startswith(","):
                raise CodecError(f"bad container encoding {text!r}")
            rest = rest[1:]
            length_digits = _take_number(rest)
            length = int(length_digits)
            rest = rest[len(length_digits) + 1:]  # skip digits + ':'
            items.append(decode_element(rest[:length]))
            rest = rest[length:]
        return (tuple(items) if tag == "t" else items), rest
    raise CodecError(f"unknown tag {tag!r} in {text!r}")


def _take_number(text: str) -> str:
    i = 0
    if text[:1] == "-":
        i = 1
    while i < len(text) and text[i].isdigit():
        i += 1
    if i == 0 or (i == 1 and text[:1] == "-"):
        raise CodecError(f"expected number at {text!r}")
    return text[:i]


def _take_float(text: str) -> str:
    i = 0
    allowed = set("0123456789+-.einf")
    while i < len(text) and text[i] in allowed:
        i += 1
    if i == 0:
        raise CodecError(f"expected float at {text!r}")
    return text[:i]


def stable_hash(value) -> int:
    """A type-aware, ``PYTHONHASHSEED``-independent 31-bit hash.

    CRC32 over the canonical encoding: the Writable-serialization route
    the partitioners use, so in-memory hash partitioning and the MR
    :class:`~repro.mapreduce.partitioner.HashPartitioner` (CRC32 over
    the ``Text`` key, which *is* the encoding) agree by construction.
    """
    return zlib.crc32(sort_token(value).encode("utf-8")) & 0x7FFFFFFF


def sort_token(value) -> str:
    """The canonical grouping/ordering token both evaluators use.

    Keys with equal tokens shuffle to the same group; groups order by
    token.  Encodable values use the injective codec (so the MR ``Text``
    key *is* the token); anything outside the codec universe — legal on
    the local backend only — falls back to a ``repr`` token, preserving
    the historical permissiveness of in-memory evaluation.
    """
    try:
        return encode_element(value)
    except CodecError:
        return "z" + repr(value)


# --------------------------------------------------------------------------
# order-preserving scalar encodings (the Hive total-order sort stage)


def sortable_int(value: int) -> str:
    """Fixed-width text whose lexicographic order == numeric order.

    Valid for |value| < 10**19 (every schema INT this repo generates);
    the offset trick keeps negatives ordered without a sign branch.
    """
    if abs(value) >= 10**19:
        raise CodecError(f"sortable_int range exceeded: {value}")
    return str(value + 10**19).zfill(20)


def sortable_float(value: float) -> str:
    """IEEE-754 bit trick: flip sign bit (positives) or all bits
    (negatives) so the hex string sorts in numeric order.  NaN sorts
    last (all-ones prefix after flip puts it above +inf)."""
    if math.isnan(value):
        return "f" * 16 + "n"
    bits = struct.unpack(">Q", struct.pack(">d", value))[0]
    if bits & (1 << 63):
        bits = ~bits & ((1 << 64) - 1)
    else:
        bits |= 1 << 63
    return f"{bits:016x}"
