"""The driver context: executors, caches, and lineage recovery.

Cached partitions live in per-executor memory, assigned round-robin by
partition index.  ``crash_executor`` wipes one executor's cache — and
the next action transparently recomputes exactly the lost partitions
through the lineage, which the ``recomputations`` counter makes
observable (the number Spark's resilience story is about).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.hdfs.cluster import HdfsCluster
from repro.mapreduce.blockio import BlockFetcher
from repro.sparklite.rdd import HdfsTextRDD, ParallelizedRDD, RDD
from repro.util.errors import ReproError


@dataclass
class Executor:
    """One worker process: a name and a partition cache."""

    name: str
    alive: bool = True
    cache: dict[tuple[int, int], list] = field(default_factory=dict)

    @property
    def cached_partitions(self) -> int:
        return len(self.cache)


class SparkLiteContext:
    """The driver: builds RDDs, owns executors, runs actions."""

    def __init__(
        self,
        executor_names: list[str],
        hdfs: HdfsCluster | None = None,
    ):
        if not executor_names:
            raise ReproError("need at least one executor")
        self.executors = {name: Executor(name) for name in executor_names}
        self.hdfs = hdfs
        self.fetcher = (
            BlockFetcher(
                namenode=hdfs.namenode,
                dn_lookup=hdfs.datanode,
                network=hdfs.network,
            )
            if hdfs is not None
            else None
        )
        #: Partitions recomputed because their cache was lost/absent of a
        #: cached RDD (the resilience observable).
        self.recomputations = 0
        #: Partitions served straight from executor memory.
        self.cache_hits = 0

    # ------------------------------------------------------------------
    @classmethod
    def local(cls, num_executors: int = 2) -> "SparkLiteContext":
        """A context with in-process executors and no HDFS."""
        return cls([f"executor{i}" for i in range(num_executors)])

    @classmethod
    def on_cluster(cls, hdfs: HdfsCluster) -> "SparkLiteContext":
        """Executors co-located with the HDFS DataNodes."""
        names = [node.name for node in hdfs.topology.nodes()]
        return cls(names, hdfs=hdfs)

    # ------------------------------------------------------------------
    # RDD construction
    def parallelize(self, data: Iterable, num_partitions: int = 2) -> RDD:
        return ParallelizedRDD(self, data, num_partitions)

    def text_file(self, path: str) -> RDD:
        return HdfsTextRDD(self, path)

    # ------------------------------------------------------------------
    # executor management
    def _executor_for(self, rdd: RDD, index: int) -> Executor:
        live = [e for e in self.executors.values() if e.alive]
        if not live:
            raise ReproError("no live executors")
        return live[index % len(live)]

    def crash_executor(self, name: str) -> int:
        """Kill one executor; returns how many cached partitions died."""
        executor = self.executors[name]
        lost = executor.cached_partitions
        executor.cache.clear()
        executor.alive = False
        return lost

    def restart_executor(self, name: str) -> None:
        self.executors[name].alive = True

    def total_cached(self) -> int:
        return sum(e.cached_partitions for e in self.executors.values())

    # ------------------------------------------------------------------
    # materialization with cache + lineage recovery
    def _materialize(self, rdd: RDD, index: int) -> list:
        if not rdd.cached:
            return rdd._compute_partition(index)
        executor = self._executor_for(rdd, index)
        key = (rdd.rdd_id, index)
        if key in executor.cache:
            self.cache_hits += 1
            return executor.cache[key]
        # Cache miss: either first touch or the executor that held it
        # died.  Either way the lineage rebuilds it.
        self.recomputations += 1
        data = rdd._compute_partition(index)
        executor.cache[key] = data
        return data

    def _evict(self, rdd: RDD) -> None:
        for executor in self.executors.values():
            for key in [k for k in executor.cache if k[0] == rdd.rdd_id]:
                del executor.cache[key]
