"""The driver context: executors, caches, and lineage recovery.

Cached partitions live in per-executor memory, assigned round-robin by
partition index.  ``crash_executor`` wipes one executor's cache — and
the next action transparently recomputes exactly the lost partitions
through the lineage, which the ``recomputations`` counter makes
observable (the number Spark's resilience story is about).

Two execution backends share one API (``sparklite_backend``):

- ``"local"`` — the historical in-process recursive evaluator;
- ``"mapreduce"`` — actions compile the lineage DAG into MapReduce
  stages (``repro.sparklite.planner``) that run on an attached
  :class:`~repro.mapreduce.cluster.MapReduceCluster`, riding the framed
  /shm shuffle, spill merge, auto backend and HDFS block cache.  The
  two backends produce bit-identical results (property-tested), so a
  context can flip between them mid-session.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.hdfs.cluster import HdfsCluster
from repro.mapreduce.blockio import BlockFetcher
from repro.sparklite.rdd import HdfsTextRDD, ParallelizedRDD, RDD
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cluster import MapReduceCluster
    from repro.sparklite.planner import CompiledRunner


@dataclass
class Executor:
    """One worker process: a name and a partition cache."""

    name: str
    alive: bool = True
    cache: dict[tuple[int, int], list] = field(default_factory=dict)

    @property
    def cached_partitions(self) -> int:
        return len(self.cache)


class SparkLiteContext:
    """The driver: builds RDDs, owns executors, runs actions."""

    def __init__(
        self,
        executor_names: list[str],
        hdfs: HdfsCluster | None = None,
        sparklite_backend: str = "local",
        cluster: "MapReduceCluster | None" = None,
        keep_stage_outputs: bool = False,
    ):
        if not executor_names:
            raise ReproError("need at least one executor")
        if cluster is not None:
            if hdfs is not None and hdfs is not cluster.hdfs:
                raise ReproError(
                    "hdfs and cluster.hdfs must be the same cluster"
                )
            hdfs = cluster.hdfs
        self.executors = {name: Executor(name) for name in executor_names}
        self.hdfs = hdfs
        self.cluster = cluster
        self.fetcher = (
            BlockFetcher(
                namenode=hdfs.namenode,
                dn_lookup=hdfs.datanode,
                network=hdfs.network,
            )
            if hdfs is not None
            else None
        )
        #: Keep compiled stage outputs in HDFS after each action (for
        #: inspection/benchmarks) instead of deleting the non-cached ones.
        self.keep_stage_outputs = keep_stage_outputs
        #: Context-owned lineage id counter (reproducible run-to-run).
        self._rdd_ids = itertools.count(1)
        self._runner: "CompiledRunner | None" = None
        self.sparklite_backend = sparklite_backend
        #: Partitions recomputed because their cache was lost/absent of a
        #: cached RDD (the resilience observable).
        self.recomputations = 0
        #: Partitions served straight from executor memory.
        self.cache_hits = 0

    # ------------------------------------------------------------------
    @property
    def sparklite_backend(self) -> str:
        """``"local"`` (in-process evaluator) or ``"mapreduce"``."""
        return self._backend

    @sparklite_backend.setter
    def sparklite_backend(self, value: str) -> None:
        if value not in ("local", "mapreduce"):
            raise ReproError(
                f'sparklite_backend must be "local" or "mapreduce", '
                f"got {value!r}"
            )
        if value == "mapreduce" and self.cluster is None:
            raise ReproError(
                'sparklite_backend="mapreduce" needs a MapReduceCluster; '
                "build the context with on_mapreduce() or pass cluster="
            )
        self._backend = value

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def _compiled_runner(self) -> "CompiledRunner | None":
        """The compiled-stage runner, or None on the local backend."""
        if self._backend != "mapreduce":
            return None
        if self._runner is None:
            from repro.sparklite.planner import CompiledRunner

            self._runner = CompiledRunner(self)
        return self._runner

    @property
    def last_plan(self) -> list[dict]:
        """Per-stage rollups of the most recent compiled action:
        one dict per stage with the job name, counters of interest and
        the host-side PerfStats delta (framed/shm bytes, spill runs)."""
        if self._runner is None:
            return []
        return self._runner.last_plan

    # ------------------------------------------------------------------
    @classmethod
    def local(cls, num_executors: int = 2) -> "SparkLiteContext":
        """A context with in-process executors and no HDFS."""
        return cls([f"executor{i}" for i in range(num_executors)])

    @classmethod
    def on_cluster(cls, hdfs: HdfsCluster) -> "SparkLiteContext":
        """Executors co-located with the HDFS DataNodes."""
        names = [node.name for node in hdfs.topology.nodes()]
        return cls(names, hdfs=hdfs)

    @classmethod
    def on_mapreduce(
        cls,
        cluster: "MapReduceCluster | None" = None,
        num_workers: int = 4,
        seed: int = 1,
        mr_config=None,
        **kwargs,
    ) -> "SparkLiteContext":
        """A compiled context: actions run as MapReduce stages.

        With no ``cluster``, builds one whose defaults are the fast
        path: ``execution_backend="auto"`` picks serial vs pooled per
        stage, the framed wire transport carries the shuffle, and the
        PR 5 block cache serves re-read intermediates.
        """
        if cluster is None:
            from repro.mapreduce.cluster import MapReduceCluster
            from repro.mapreduce.config import MapReduceConfig

            cluster = MapReduceCluster(
                num_workers=num_workers,
                seed=seed,
                mr_config=mr_config
                or MapReduceConfig(execution_backend="auto"),
            )
        names = [node.name for node in cluster.hdfs.topology.nodes()]
        return cls(
            names, cluster=cluster, sparklite_backend="mapreduce", **kwargs
        )

    # ------------------------------------------------------------------
    # RDD construction
    def parallelize(self, data: Iterable, num_partitions: int = 2) -> RDD:
        return ParallelizedRDD(self, data, num_partitions)

    def text_file(self, path: str) -> RDD:
        return HdfsTextRDD(self, path)

    # ------------------------------------------------------------------
    # executor management
    def _executor_for(self, rdd: RDD, index: int) -> Executor:
        live = [e for e in self.executors.values() if e.alive]
        if not live:
            raise ReproError("no live executors")
        return live[index % len(live)]

    def crash_executor(self, name: str) -> int:
        """Kill one executor; returns how many cached partitions died."""
        executor = self.executors[name]
        lost = executor.cached_partitions
        executor.cache.clear()
        executor.alive = False
        return lost

    def restart_executor(self, name: str) -> None:
        self.executors[name].alive = True

    def total_cached(self) -> int:
        return sum(e.cached_partitions for e in self.executors.values())

    # ------------------------------------------------------------------
    # materialization with cache + lineage recovery
    def _materialize(self, rdd: RDD, index: int) -> list:
        if not rdd.cached:
            return rdd._compute_partition(index)
        executor = self._executor_for(rdd, index)
        key = (rdd.rdd_id, index)
        if key in executor.cache:
            self.cache_hits += 1
            return executor.cache[key]
        # Cache miss: either first touch or the executor that held it
        # died.  Either way the lineage rebuilds it.
        self.recomputations += 1
        data = rdd._compute_partition(index)
        executor.cache[key] = data
        return data

    def _evict(self, rdd: RDD) -> None:
        for executor in self.executors.values():
            for key in [k for k in executor.cache if k[0] == rdd.rdd_id]:
                del executor.cache[key]
        if self._runner is not None:
            self._runner.evict(rdd.rdd_id)
