"""RDDs: lazy, partitioned, lineage-tracked collections.

Transformations build a DAG; nothing runs until an action.  Narrow
transformations (map, filter, flatMap, mapValues) keep partitioning;
wide ones (reduceByKey, groupByKey, distinct, join) hash-shuffle.  Each
partition's bytes live in its executor's cache when ``cache()`` was
called; losing the executor loses the cache but never the data — the
lineage recomputes it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.sparklite.codec import sort_token, stable_hash
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparklite.context import SparkLiteContext


def _hash_partition(key, num_partitions: int) -> int:
    """Partition by the key's canonical Writable serialization.

    CRC32 over :func:`~repro.sparklite.codec.encode_element` — the same
    bytes the MR ``HashPartitioner`` hashes when the compiled planner
    ships the key as a ``Text``, so in-memory and compiled shuffles
    place every key identically, under every ``PYTHONHASHSEED``.
    """
    return stable_hash(key) % num_partitions


class RDD:
    """One node of the lineage DAG."""

    def __init__(
        self,
        context: "SparkLiteContext",
        num_partitions: int,
        parents: tuple["RDD", ...],
        description: str,
    ):
        if num_partitions < 1:
            raise ReproError("an RDD needs at least one partition")
        self.context = context
        # Context-owned counter (not a module global): lineage ids — and
        # everything derived from them (descriptions, digests, compiled
        # stage paths) — are reproducible run-to-run and snapshot-safe.
        self.rdd_id = context._next_rdd_id()
        self.num_partitions = num_partitions
        self.parents = parents
        self.description = description
        self.cached = False

    # ------------------------------------------------------------------
    # lineage execution
    def _compute_partition(self, index: int) -> list:
        """Produce partition ``index`` (no caching at this level)."""
        raise NotImplementedError

    def partition(self, index: int) -> list:
        """Fetch or (re)compute one partition, via the executor cache."""
        if not (0 <= index < self.num_partitions):
            raise ReproError(
                f"partition {index} out of range for {self.description}"
            )
        return self.context._materialize(self, index)

    def lineage(self) -> list[str]:
        """Human-readable DAG, leaves last (what ``toDebugString`` shows)."""
        lines = [f"({self.num_partitions}) {self.description}"]
        for parent in self.parents:
            lines.extend("  " + line for line in parent.lineage())
        return lines

    # ------------------------------------------------------------------
    # narrow transformations
    def map(self, fn: Callable) -> "RDD":
        return _Mapped(self, fn, kind="map")

    def filter(self, predicate: Callable) -> "RDD":
        return _Filtered(self, predicate)

    def flat_map(self, fn: Callable) -> "RDD":
        return _Mapped(self, fn, kind="flat_map")

    def map_values(self, fn: Callable) -> "RDD":
        return _Mapped(self, fn, kind="map_values")

    def union(self, other: "RDD") -> "RDD":
        return _Union(self, other)

    # ------------------------------------------------------------------
    # wide transformations (shuffles)
    def reduce_by_key(
        self, fn: Callable, num_partitions: int | None = None
    ) -> "RDD":
        return _Shuffled(
            self,
            num_partitions or self.num_partitions,
            merge_fn=fn,
            description="reduceByKey",
        )

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        return _Shuffled(
            self,
            num_partitions or self.num_partitions,
            merge_fn=None,
            description="groupByKey",
        )

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        keyed = self.map(lambda x: (x, None))
        deduped = keyed.reduce_by_key(lambda a, b: a, num_partitions)
        return deduped.map(lambda kv: kv[0])

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return _Joined(self, other, num_partitions or self.num_partitions)

    # ------------------------------------------------------------------
    # persistence
    def cache(self) -> "RDD":
        """Keep computed partitions in executor memory."""
        self.cached = True
        return self

    def unpersist(self) -> "RDD":
        self.cached = False
        self.context._evict(self)
        return self

    # ------------------------------------------------------------------
    # actions
    #
    # Every action funnels through ``collect``-style full evaluation.
    # Under ``sparklite_backend="mapreduce"`` the context returns a
    # compiled runner and the lineage executes as MapReduce stages on
    # the cluster; the element order the two paths produce is identical
    # by construction (see repro.sparklite.planner), so the derived
    # actions below need no per-backend cases.
    def collect(self) -> list:
        runner = self.context._compiled_runner()
        if runner is not None:
            return runner.collect(self)
        out: list = []
        for index in range(self.num_partitions):
            out.extend(self.partition(index))
        return out

    def count(self) -> int:
        runner = self.context._compiled_runner()
        if runner is not None:
            return len(runner.collect(self))
        return sum(len(self.partition(i)) for i in range(self.num_partitions))

    def take(self, n: int) -> list:
        runner = self.context._compiled_runner()
        if runner is not None:
            return runner.collect(self)[:n]
        out: list = []
        for index in range(self.num_partitions):
            out.extend(self.partition(index))
            if len(out) >= n:
                return out[:n]
        return out

    def reduce(self, fn: Callable):
        current = None
        seen = False
        for value in self.collect():
            if not seen:
                current, seen = value, True
            else:
                current = fn(current, value)
        if not seen:
            raise ReproError("reduce of an empty RDD")
        return current

    def sum(self):
        return sum(self.collect())

    def count_by_key(self) -> dict:
        counts: dict = {}
        for key, _value in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts


# --------------------------------------------------------------------------
# concrete nodes


class ParallelizedRDD(RDD):
    """A source RDD from driver-local data."""

    def __init__(self, context, data: Iterable, num_partitions: int):
        items = list(data)
        super().__init__(
            context, num_partitions, (), f"parallelize[{len(items)} items]"
        )
        self._slices: list[list] = [[] for _ in range(num_partitions)]
        for i, item in enumerate(items):
            self._slices[i % num_partitions].append(item)

    def _compute_partition(self, index: int) -> list:
        return list(self._slices[index])


class HdfsTextRDD(RDD):
    """A source RDD over an HDFS file, one partition per block."""

    def __init__(self, context, path: str):
        fetcher = context.fetcher
        if fetcher is None:
            raise ReproError("this context has no HDFS attached")
        lengths, _locations = fetcher.block_layout(path)
        super().__init__(
            context, max(1, len(lengths)), (), f"textFile[{path}]"
        )
        self.path = path

    def _compute_partition(self, index: int) -> list:
        from repro.mapreduce.inputformat import TextInputFormat

        fetcher = self.context.fetcher
        lengths, locations = fetcher.block_layout(self.path)
        if not lengths:
            return []
        splits = TextInputFormat.splits_for_file(
            self.path, lengths, locations
        )
        fetch = fetcher.make_fetch(None)
        return [
            value.value
            for _key, value in TextInputFormat.read_records(
                splits[index], fetch
            )
        ]


class _Mapped(RDD):
    def __init__(self, parent: RDD, fn: Callable, kind: str):
        super().__init__(
            parent.context, parent.num_partitions, (parent,), kind
        )
        self.fn = fn
        self.kind = kind

    def _compute_partition(self, index: int) -> list:
        data = self.parents[0].partition(index)
        if self.kind == "map":
            return [self.fn(x) for x in data]
        if self.kind == "flat_map":
            return [y for x in data for y in self.fn(x)]
        # map_values
        return [(k, self.fn(v)) for k, v in data]


class _Filtered(RDD):
    def __init__(self, parent: RDD, predicate: Callable):
        super().__init__(
            parent.context, parent.num_partitions, (parent,), "filter"
        )
        self.predicate = predicate

    def _compute_partition(self, index: int) -> list:
        return [x for x in self.parents[0].partition(index) if self.predicate(x)]


class _Union(RDD):
    def __init__(self, left: RDD, right: RDD):
        super().__init__(
            left.context,
            left.num_partitions + right.num_partitions,
            (left, right),
            "union",
        )

    def _compute_partition(self, index: int) -> list:
        left = self.parents[0]
        if index < left.num_partitions:
            return left.partition(index)
        return self.parents[1].partition(index - left.num_partitions)


class _Shuffled(RDD):
    """reduceByKey / groupByKey: every child partition reads every
    parent partition (the wide dependency)."""

    def __init__(self, parent: RDD, num_partitions: int, merge_fn, description):
        super().__init__(parent.context, num_partitions, (parent,), description)
        self.merge_fn = merge_fn

    def _compute_partition(self, index: int) -> list:
        # Group by the canonical key token (not Python ``==``): the MR
        # shuffle groups by the encoded Text key, so e.g. ``1`` and
        # ``1.0`` stay distinct groups on both backends.
        merged: dict[str, list] = {}
        parent = self.parents[0]
        for parent_index in range(parent.num_partitions):
            for key, value in parent.partition(parent_index):
                token = sort_token(key)
                if _hash_partition(key, self.num_partitions) != index:
                    continue
                entry = merged.get(token)
                if entry is None:
                    merged[token] = [key, value if self.merge_fn else [value]]
                elif self.merge_fn:
                    entry[1] = self.merge_fn(entry[1], value)
                else:
                    entry[1].append(value)
        # Tokens are injective, so sorting them reproduces exactly the
        # MR shuffle's key order — no tie-break needed.
        return [
            (entry[0], entry[1])
            for _token, entry in sorted(merged.items())
        ]


class _Joined(RDD):
    def __init__(self, left: RDD, right: RDD, num_partitions: int):
        super().__init__(left.context, num_partitions, (left, right), "join")

    def _compute_partition(self, index: int) -> list:
        # Match keys by canonical token (see _Shuffled): both backends
        # join exactly the keys whose encodings agree.
        left_values: dict[str, list] = {}
        for parent_index in range(self.parents[0].num_partitions):
            for key, value in self.parents[0].partition(parent_index):
                if _hash_partition(key, self.num_partitions) == index:
                    left_values.setdefault(sort_token(key), []).append(value)
        out = []
        for parent_index in range(self.parents[1].num_partitions):
            for key, value in self.parents[1].partition(parent_index):
                if _hash_partition(key, self.num_partitions) != index:
                    continue
                for left_value in left_values.get(sort_token(key), ()):
                    out.append((key, (left_value, value)))
        # Stable sort on the injective key encoding: pairs with equal
        # keys keep their (right-arrival x left-arrival) emission order,
        # matching the compiled join reducer's per-key loop exactly.
        return sorted(out, key=lambda kv: sort_token(kv[0]))
