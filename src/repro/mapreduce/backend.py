"""Execution backends: where a task attempt's *real* work runs.

The simulator prices map/reduce work in simulated seconds, but the user
code itself (tokenising, sorting, combining, reducing) executes for
real.  Historically that execution was inline and serial: every task
attempt ran to completion inside the discrete-event loop, so a
multi-node simulated cluster used exactly one core of the host.

An :class:`ExecutionBackend` decouples the two:

- :class:`SerialExecutionBackend` reproduces the historical behaviour
  exactly — ``submit`` runs the work and its completion callback
  immediately, in the simulation thread.
- :class:`PooledExecutionBackend` dispatches share-nothing work onto a
  ``concurrent.futures`` pool and resolves results at a deterministic
  *join point*: the simulation engine (via the
  :class:`~repro.sim.engine.WorkJoiner` protocol) joins all in-flight
  work, in submission order, before the clock advances past the
  simulated instant at which the work was submitted.

The determinism contract
========================

Real work runs in parallel; simulated time stays serial.  Because

1. every pooled work item is a pure function of its arguments (no
   simulation state crosses the boundary — input bytes are prefetched,
   node-shared state forces inline execution),
2. completion callbacks fire in submission order, which equals the
   serial execution order, and
3. completion *events* land at ``submit_time + duration`` with
   durations computed from the cost model, not the host,

a pooled run produces bit-identical counters, outputs and simulated
clocks to a serial run — only the host wall-clock differs.  The
property tests in ``tests/properties/test_backend_determinism.py``
assert exactly this.
"""

from __future__ import annotations

import os
import sys
import warnings
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable

from repro.util.errors import ConfigError

OnDone = Callable[["WorkHandle"], None]

#: Backend names accepted by :func:`create_backend` and the CLI.
BACKEND_NAMES = ("serial", "pooled", "pooled-threads", "auto")

#: Below this much estimated input, :class:`AutoExecutionBackend` keeps
#: work serial: pool startup + IPC overwhelm any parallel win on small
#: jobs (the parallelism benchmark's small corpus is the evidence).
AUTO_MIN_PARALLEL_BYTES = 1 << 20


def usable_cores() -> int:
    """CPU cores this process may actually run on.

    ``os.cpu_count()`` reports the host's cores; under cgroup/affinity
    limits (CI runners, containers) the schedulable set is smaller and
    is what parallel speedup is bounded by.  The original benchmark
    harness recorded ``host_cores: 1`` from exactly this confusion.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return os.cpu_count() or 1

#: Resubmits attempted on a fresh pool after a worker death before the
#: backend gives up on pooling and runs the work inline.
WORKER_CRASH_RESUBMITS = 2


class WorkHandle:
    """Handle to one submitted unit of real work."""

    __slots__ = ("submit_time", "_result", "_error", "_future")

    def __init__(self, submit_time: float):
        self.submit_time = submit_time
        self._result: Any = None
        self._error: BaseException | None = None
        self._future: Future | None = None

    def result(self) -> Any:
        """Return the work's result, or raise the exception it raised."""
        if self._error is not None:
            raise self._error
        return self._result


class ExecutionBackend:
    """Where task attempts' real work runs.  See the module docstring."""

    name = "base"
    #: True when share-nothing work may execute off the sim thread.
    parallel = False

    def submit(
        self,
        fn: Callable[[], Any],
        on_done: OnDone,
        *,
        submit_time: float = 0.0,
        inline: bool = False,
    ) -> WorkHandle:
        """Run ``fn`` and eventually call ``on_done(handle)``.

        ``inline=True`` demands execution in the caller's thread before
        ``submit`` returns (work that touches shared simulation or
        node state).  Exceptions raised by ``fn`` are captured in the
        handle — ``on_done`` observes them via :meth:`WorkHandle.result`
        — but exceptions from ``on_done`` itself propagate.
        """
        raise NotImplementedError

    # -- WorkJoiner protocol (see repro.sim.engine) ---------------------
    def pending_since(self) -> float | None:
        return None

    def join_all(self) -> None:
        pass

    def shutdown(self) -> None:
        pass

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _run_captured(fn: Callable[[], Any], handle: WorkHandle) -> None:
    try:
        handle._result = fn()
    except BaseException as exc:  # noqa: BLE001 - relayed via handle.result()
        handle._error = exc


class SerialExecutionBackend(ExecutionBackend):
    """The historical inline executor: everything runs at submit time."""

    name = "serial"
    parallel = False

    def submit(self, fn, on_done, *, submit_time=0.0, inline=False):
        handle = WorkHandle(submit_time)
        _run_captured(fn, handle)
        on_done(handle)
        return handle


class PooledExecutionBackend(ExecutionBackend):
    """Dispatch share-nothing real work onto a thread/process pool.

    ``mode="process"`` (the default) sidesteps the GIL for CPU-bound
    user code; payloads and results must be picklable.  Work that fails
    to pickle is transparently re-run inline at the join point (the
    result is identical — pooling is an optimisation, never a semantic).
    ``mode="thread"`` has no pickling constraints and suits
    free-threaded interpreters or I/O-heavy custom code.

    ``inline=True`` submissions (node-state-sharing jobs, formats
    without prefetch support) run eagerly in the caller's thread,
    exactly as the serial backend would.
    """

    name = "pooled"
    parallel = True

    def __init__(self, workers: int | None = None, mode: str = "process"):
        if mode not in ("process", "thread"):
            raise ConfigError(f"unknown pool mode {mode!r}")
        if workers is not None and workers < 0:
            raise ConfigError("workers must be >= 0 (0 = one per host CPU)")
        self.workers = workers or os.cpu_count() or 1
        self.mode = mode
        self._executor: Executor | None = None
        #: (handle, on_done, fn, index) in submission order; fn kept for
        #: resubmission after worker death and the inline fallbacks.
        self._in_flight: list[
            tuple[WorkHandle, OnDone, Callable[[], Any], int]
        ] = []
        #: Monotonic pooled-submission counter; the chaos hook keys
        #: deterministic worker-crash draws off it.
        self._submit_count = 0
        #: Fault-injection hook: called with the submission index after a
        #: pooled result lands; True simulates the worker having died
        #: with the result lost (see ``repro.faults``).
        self._chaos: Callable[[int], bool] | None = None
        #: Work items whose results were recovered after a worker death
        #: (by resubmission or the final inline fallback).
        self.worker_crash_recoveries = 0

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pooled",
                )
        return self._executor

    def submit(self, fn, on_done, *, submit_time=0.0, inline=False):
        handle = WorkHandle(submit_time)
        if inline:
            _run_captured(fn, handle)
            on_done(handle)
            return handle
        try:
            handle._future = self._ensure_executor().submit(fn)
        except RuntimeError:
            # Executor already shut down (e.g. interpreter teardown):
            # degrade to inline execution rather than losing the task.
            _run_captured(fn, handle)
            on_done(handle)
            return handle
        index = self._submit_count
        self._submit_count += 1
        self._in_flight.append((handle, on_done, fn, index))
        return handle

    # -- WorkJoiner protocol --------------------------------------------
    def pending_since(self) -> float | None:
        if not self._in_flight:
            return None
        return self._in_flight[0][0].submit_time

    def join_all(self) -> None:
        """Resolve all in-flight work, firing callbacks in submission order."""
        while self._in_flight:
            batch, self._in_flight = self._in_flight, []
            for handle, on_done, fn, index in batch:
                try:
                    handle._result = handle._future.result()
                    if self._chaos is not None and self._chaos(index):
                        raise _InjectedWorkerCrash(
                            f"injected worker crash (work #{index})"
                        )
                except BaseException as exc:  # noqa: BLE001
                    if _is_worker_crash(exc):
                        self._recover_worker_crash(handle, fn, exc)
                    elif _is_pickling_error(exc):
                        # The payload/result couldn't cross the process
                        # boundary — the work itself may be fine.  Re-run
                        # inline for an identical answer.
                        warnings.warn(
                            f"pooled work fell back to inline execution: "
                            f"{type(exc).__name__}: {exc}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        _run_captured(fn, handle)
                    else:
                        handle._error = exc
                finally:
                    handle._future = None
                on_done(handle)
                # on_done may submit more work (rare); the outer while
                # loop drains it in order.

    def _recover_worker_crash(
        self, handle: WorkHandle, fn: Callable[[], Any], exc: BaseException
    ) -> None:
        """A worker died holding this work's result.

        Pooled work is a pure function of its arguments, so the recovery
        is re-execution: resubmit on a fresh pool up to
        :data:`WORKER_CRASH_RESUBMITS` times, then fall back inline.
        Either way the answer is identical to an undisturbed run — the
        serial-vs-pooled determinism guarantee survives worker death.
        """
        if not isinstance(exc, _InjectedWorkerCrash):
            # A real BrokenExecutor poisons the whole pool; discard it so
            # the resubmit (and subsequent submissions) get a fresh one.
            self._discard_executor()
        for _retry in range(WORKER_CRASH_RESUBMITS):
            try:
                handle._result = self._ensure_executor().submit(fn).result()
            except BaseException as retry_exc:  # noqa: BLE001
                if _is_worker_crash(retry_exc):
                    self._discard_executor()
                    exc = retry_exc
                    continue
                if _is_pickling_error(retry_exc):
                    break  # pooling is hopeless for this payload
                handle._error = retry_exc  # the work itself failed
                return
            handle._error = None
            self.worker_crash_recoveries += 1
            return
        warnings.warn(
            f"pooled work fell back to inline execution after worker "
            f"crash: {type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        _run_captured(fn, handle)
        self.worker_crash_recoveries += 1

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        self.join_all()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # In-flight work is drained and the pool is gone, so no worker
        # can still read a shuffle segment: unlink anything the shm
        # plane has live.  (Per-job scopes release earlier, at job end;
        # this is the backstop for interrupted runs.)  Crashed-worker
        # orphans — segments published but never returned — are caught
        # by the scopes' glob purge; never sweep them at
        # _discard_executor time, because completed futures from a
        # broken pool may hold descriptors the parent has yet to adopt.
        _release_shm_scopes()


def _release_shm_scopes() -> None:
    """Release live shm scopes, if the shm plane was ever imported."""
    shm = sys.modules.get("repro.mapreduce.shm")
    if shm is not None:
        shm.release_all_scopes()


class AutoExecutionBackend(ExecutionBackend):
    """Pick serial or pooled per job, based on the host and the input.

    Pooling pays a fixed tax (pool startup, payload pickling/framing)
    that a small job never earns back, and buys nothing on a one-core
    host.  ``auto`` starts serial and lets the runner/JobTracker call
    :meth:`decide` with the job's estimated input bytes before tasks
    are scheduled: parallel only when the schedulable core count is
    >= 2 **and** the input clears :data:`AUTO_MIN_PARALLEL_BYTES`.

    The decision is observable via :attr:`chosen` (benchmarks and tests
    read it); work submitted between jobs follows the latest decision.
    Determinism is unaffected either way — both inner backends honour
    the bit-identical contract, so ``auto`` may flip between jobs
    without changing any job's counters or outputs.
    """

    name = "auto"

    def __init__(self, workers: int | None = None, mode: str = "process"):
        self._workers = workers
        self._mode = mode
        self._serial = SerialExecutionBackend()
        self._pooled: PooledExecutionBackend | None = None
        self._active: ExecutionBackend = self._serial
        self._chaos_hook: Callable[[int], bool] | None = None

    @property
    def _chaos(self) -> Callable[[int], bool] | None:
        """Worker-crash fault hook, forwarded to the pooled inner
        backend (the fault injector arms ``backend._chaos`` directly)."""
        return self._chaos_hook

    @_chaos.setter
    def _chaos(self, hook: Callable[[int], bool] | None) -> None:
        self._chaos_hook = hook
        if self._pooled is not None:
            self._pooled._chaos = hook

    @property
    def worker_crash_recoveries(self) -> int:
        return 0 if self._pooled is None else self._pooled.worker_crash_recoveries

    @property
    def parallel(self) -> bool:  # type: ignore[override]
        return self._active.parallel

    @property
    def chosen(self) -> str:
        """The currently active inner backend's name."""
        return self._active.name

    def decide(self, estimated_bytes: int | None) -> str:
        """Choose the inner backend for the next job; returns its name.

        ``estimated_bytes`` is the job's input size (sum of split
        lengths); ``None`` means unknown, which is treated as large —
        the caller had no cheap estimate, so only the core count gates.
        """
        cores = usable_cores()
        small = (
            estimated_bytes is not None
            and estimated_bytes < AUTO_MIN_PARALLEL_BYTES
        )
        if cores < 2 or small:
            self._active = self._serial
        else:
            if self._pooled is None:
                self._pooled = PooledExecutionBackend(
                    workers=self._workers, mode=self._mode
                )
                self._pooled._chaos = self._chaos_hook
            self._active = self._pooled
        return self._active.name

    def submit(self, fn, on_done, *, submit_time=0.0, inline=False):
        return self._active.submit(
            fn, on_done, submit_time=submit_time, inline=inline
        )

    # -- WorkJoiner protocol --------------------------------------------
    def pending_since(self) -> float | None:
        # Only the pooled inner backend ever holds in-flight work.
        if self._pooled is not None:
            return self._pooled.pending_since()
        return None

    def join_all(self) -> None:
        if self._pooled is not None:
            self._pooled.join_all()

    def shutdown(self) -> None:
        if self._pooled is not None:
            self._pooled.shutdown()
            self._pooled = None
        self._active = self._serial


class _InjectedWorkerCrash(Exception):
    """A fault-injected worker death: the result is treated as lost, but
    the pool itself is healthy, so recovery skips the pool rebuild."""


def _is_pickling_error(exc: BaseException) -> bool:
    """Did the payload/result fail to cross the process boundary?

    Unpicklable payloads/results surface as PicklingError, TypeError or
    AttributeError from the pickling machinery (never from task work:
    the runtime wraps user-code errors in ReproError subclasses).  The
    fallback re-runs the work inline, which yields an identical answer —
    at worst a deterministic failure is computed twice.
    """
    import pickle

    from repro.util.errors import ReproError

    if isinstance(exc, ReproError):
        return False
    return isinstance(
        exc, (pickle.PicklingError, TypeError, AttributeError)
    )


def _is_worker_crash(exc: BaseException) -> bool:
    """Did a pool worker die (OOM-killed, segfaulted, injected)?

    ``BrokenExecutor`` covers ``BrokenProcessPool`` and
    ``BrokenThreadPool``; :class:`_InjectedWorkerCrash` is the fault
    injector's simulated flavour of the same event.
    """
    from concurrent.futures import BrokenExecutor

    return isinstance(exc, (BrokenExecutor, _InjectedWorkerCrash))


# ---------------------------------------------------------------------------
# Default-backend registry: one process-wide spec, consulted whenever a
# cluster or runner is built without an explicit backend.  The CLI's
# ``--backend/--workers`` flags set it, which is how every example and
# benchmark picks the flags up without plumbing changes.

_default_spec: tuple[str, int] = ("serial", 0)


def set_default_backend(name: str, workers: int = 0) -> None:
    """Set the process-wide default backend spec (e.g. from the CLI)."""
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if workers < 0:
        raise ConfigError("workers must be >= 0 (0 = one per host CPU)")
    global _default_spec
    _default_spec = (name, workers)


def default_backend_spec() -> tuple[str, int]:
    return _default_spec


def create_backend(name: str, workers: int = 0) -> ExecutionBackend:
    """Instantiate a backend by name (one of :data:`BACKEND_NAMES`)."""
    if name == "serial":
        return SerialExecutionBackend()
    if name == "pooled":
        return PooledExecutionBackend(workers=workers or None, mode="process")
    if name == "pooled-threads":
        return PooledExecutionBackend(workers=workers or None, mode="thread")
    if name == "auto":
        return AutoExecutionBackend(workers=workers or None, mode="process")
    raise ConfigError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def resolve_backend(
    backend: "ExecutionBackend | None",
    config_name: str | None = None,
    config_workers: int = 0,
) -> ExecutionBackend:
    """Pick the backend for a cluster/runner.

    Explicit instance > per-config knob
    (:attr:`~repro.mapreduce.config.MapReduceConfig.execution_backend`)
    > process-wide default (:func:`set_default_backend`).
    """
    if backend is not None:
        return backend
    default_name, default_workers = _default_spec
    name = config_name or default_name
    workers = config_workers or default_workers
    return create_backend(name, workers)
