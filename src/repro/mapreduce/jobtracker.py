"""The JobTracker: submission, locality-aware scheduling, recovery.

Figure 2's caption, in executable form: "JobTracker assigns work and
facilitates map/reduce on TaskTrackers based on block location
information from NameNode."  Scheduling follows Hadoop 1.x:

- TaskTrackers pull work via heartbeats; the JobTracker never pushes.
- Map tasks prefer node-local splits, then rack-local, then any —
  producing the DATA_LOCAL/RACK_LOCAL/OFF_RACK counters students read.
- Failed attempts are resubmitted up to ``max_attempts``; four strikes
  fails the job (and trackers with three failures for a job are
  blacklisted for it).
- Lost TaskTrackers get their running attempts *and completed map
  outputs* rescheduled, because map output lives on the dead node.
- Optional speculative execution launches a second attempt of a straggler
  and keeps whichever finishes first.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.cluster.topology import ClusterTopology
from repro.hdfs.namenode import NameNode
from repro.mapreduce.api import Job
from repro.mapreduce.backend import ExecutionBackend
from repro.mapreduce.blockio import BlockFetcher
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.counters import C
from repro.mapreduce.job import JobState, RunningJob
from repro.mapreduce.runtime import job_input_format
from repro.mapreduce.scheduler import make_scheduler
from repro.mapreduce.tasks import (
    AttemptState,
    MapTask,
    ReduceTask,
    TaskAttempt,
    TaskState,
    TaskType,
)
from repro.mapreduce.tasktracker import TaskTracker
from repro.sim.engine import Simulation
from repro.util.errors import JobSubmissionError, OutputExistsError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class Assignment:
    """One unit of work handed to a TaskTracker in a heartbeat response."""

    job_id: str
    task_type: TaskType
    task_index: int  # map index or reduce partition
    attempt_id: str
    speculative: bool = False


@dataclass
class TrackerInfo:
    tracker: TaskTracker
    last_heartbeat: float
    alive: bool = True


#: Failures by one tracker on one job before it is blacklisted for it.
BLACKLIST_THRESHOLD = 3
#: A running attempt this many times slower than the average completed
#: map is a straggler eligible for speculation.
STRAGGLER_FACTOR = 2.0


class JobTracker:
    """The MapReduce master."""

    def __init__(
        self,
        sim: Simulation,
        topology: ClusterTopology,
        namenode: NameNode,
        fetcher: BlockFetcher,
        mr_config: MapReduceConfig,
        output_client_factory: Callable[[str | None], object],
        rng: RngStream | None = None,
        backend: "ExecutionBackend | None" = None,
    ):
        self.sim = sim
        self.topology = topology
        self.namenode = namenode
        self.fetcher = fetcher
        self.mr_config = mr_config
        self.output_client_factory = output_client_factory
        #: The cluster's execution backend, when it wants per-job
        #: sizing decisions (``auto``) made at submission time.
        self.backend = backend
        self.rng = rng or RngStream(seed=0).child("jobtracker")
        self.trackers: dict[str, TrackerInfo] = {}
        self.jobs: dict[str, RunningJob] = {}
        self._job_order: list[str] = []
        self._seq = 0
        #: Indexes keyed by submit_seq so iteration in sorted-key order
        #: IS submission (FIFO) order.  ``_active`` holds every RUNNING
        #: job; the schedulable maps hold only jobs that might yield an
        #: assignment of that kind — what the per-heartbeat scan visits.
        self._active: dict[int, RunningJob] = {}
        self._map_schedulable: dict[int, RunningJob] = {}
        self._reduce_schedulable: dict[int, RunningJob] = {}
        self.scheduler = make_scheduler(
            mr_config.scheduler, mr_config.user_quotas
        )
        #: Tracker-liveness expiry heap — same lazy-revalidation scheme
        #: as the NameNode's: one entry per tracker, O(expired) sweeps.
        self._tracker_expiry: list[tuple[float, str]] = []
        self._tracker_scheduled: set[str] = set()
        self.sim.wheel(self.mr_config.tasktracker_heartbeat).subscribe(
            self._check_trackers
        )

    # ------------------------------------------------------------------
    # registration & liveness
    def register_tracker(self, tracker: TaskTracker) -> None:
        self.trackers[tracker.name] = TrackerInfo(
            tracker=tracker, last_heartbeat=self.sim.now
        )
        self._track_tracker_expiry(tracker.name)
        self._reconcile_tracker(tracker)

    def _track_tracker_expiry(self, name: str) -> None:
        if name not in self._tracker_scheduled:
            self._tracker_scheduled.add(name)
            heapq.heappush(
                self._tracker_expiry,
                (self.sim.now + self.mr_config.tracker_timeout, name),
            )

    def _reconcile_tracker(self, tracker: TaskTracker) -> None:
        """Reconcile bookkeeping with a freshly (re)registered tracker.

        A tracker that crashed and restarted *before* the liveness
        timeout declared it lost comes back with a clean slate: any
        attempt the JobTracker still records as running there died with
        the old process and would otherwise hang RUNNING forever.  Kill
        (without penalty) and requeue them.
        """
        for job in self._active_jobs():
            for task in [*job.map_tasks, *job.reduce_tasks]:
                for attempt in task.running_attempts:
                    if (
                        attempt.tracker == tracker.name
                        and attempt.attempt_id not in tracker.running
                    ):
                        attempt.state = AttemptState.KILLED
                        attempt.finish_time = self.sim.now
                        attempt.failure = "TaskTracker restarted"
                        job.active_attempts -= 1
                        self._requeue(job, task)
                        job.log(
                            self.sim.now,
                            f"{attempt.attempt_id} lost in restart of "
                            f"{tracker.name}; re-queued",
                        )

    def _check_trackers(self) -> None:
        """Expiry-heap liveness: only trackers whose recorded deadline
        has passed are examined (lazy revalidation against the actual
        last heartbeat); equal-expiry trackers die in name order."""
        timeout = self.mr_config.tracker_timeout
        now = self.sim.now
        while self._tracker_expiry and self._tracker_expiry[0][0] < now:
            _expiry, name = heapq.heappop(self._tracker_expiry)
            self._tracker_scheduled.discard(name)
            info = self.trackers.get(name)
            if info is None or not info.alive:
                continue
            if now - info.last_heartbeat > timeout:
                info.alive = False
                self._tracker_lost(name)
            else:
                self._tracker_scheduled.add(name)
                heapq.heappush(
                    self._tracker_expiry,
                    (info.last_heartbeat + timeout, name),
                )

    def _tracker_lost(self, name: str) -> None:
        self.sim.bus.publish("mr.jobtracker.tracker_lost", self.sim.now, tracker=name)
        for job in self._active_jobs():
            # Kill (without penalty) attempts running on the lost node.
            for task in [*job.map_tasks, *job.reduce_tasks]:
                for attempt in task.running_attempts:
                    if attempt.tracker == name:
                        attempt.state = AttemptState.KILLED
                        attempt.finish_time = self.sim.now
                        attempt.failure = "Lost TaskTracker"
                        job.active_attempts -= 1
                        self._requeue(job, task)
            # Completed map output on that node is gone; re-run those maps
            # unless every reduce has already pulled its data.
            if not job.reduces_done:
                for task in job.map_tasks:
                    if (
                        task.state == TaskState.SUCCEEDED
                        and task.completed_on == name
                    ):
                        task.state = TaskState.PENDING
                        task.output = None
                        task.completed_on = None
                        job.succeeded_maps -= 1
                        job.pending_maps.add(task.index)
                        self._index_map_schedulable(job)
                        job.log(
                            self.sim.now,
                            f"{task.task_id} output lost with tracker {name}; "
                            f"re-queued",
                        )
                        self.sim.bus.publish(
                            "mr.jobtracker.map_output_lost",
                            self.sim.now,
                            job_id=job.job_id,
                            task_id=task.task_id,
                            node=name,
                            reason="tracker_lost",
                        )

    def _requeue(self, job: RunningJob, task) -> None:
        if task.state == TaskState.FAILED:
            return
        task.state = TaskState.PENDING
        if isinstance(task, MapTask):
            job.pending_maps.add(task.index)
            self._index_map_schedulable(job)
        else:
            if task.partition not in job.pending_reduces:
                job.pending_reduces.append(task.partition)
            self._index_reduce_schedulable(job)

    def _index_map_schedulable(self, job: RunningJob) -> None:
        if job.state == JobState.RUNNING:
            self._map_schedulable[job.submit_seq] = job

    def _index_reduce_schedulable(self, job: RunningJob) -> None:
        if job.state == JobState.RUNNING:
            self._reduce_schedulable[job.submit_seq] = job

    def _deindex_job(self, job: RunningJob) -> None:
        self._active.pop(job.submit_seq, None)
        self._map_schedulable.pop(job.submit_seq, None)
        self._reduce_schedulable.pop(job.submit_seq, None)

    # ------------------------------------------------------------------
    # submission
    def submit_job(
        self, job: Job, input_paths: list[str] | str, output_path: str
    ) -> RunningJob:
        if isinstance(input_paths, str):
            input_paths = [input_paths]
        if self.namenode.exists(output_path):
            raise OutputExistsError(
                f"Output directory {output_path} already exists"
            )
        files = self._expand_inputs(input_paths)
        if not files:
            raise JobSubmissionError(
                f"no input files under {input_paths}"
            )
        splits = []
        input_format = job_input_format(job)
        for path in files:
            lengths, locations = self.fetcher.block_layout(path)
            splits.extend(input_format.splits_for_file(path, lengths, locations))
        if self.backend is not None and hasattr(self.backend, "decide"):
            # "auto" backend: pick serial vs pooled for this job's size.
            self.backend.decide(sum(split.length for split in splits))
        self._seq += 1
        job_id = f"job_{self._seq:04d}"
        running = RunningJob(
            job=job,
            job_id=job_id,
            input_paths=input_paths,
            output_path=output_path,
            splits=splits,
            submit_time=self.sim.now,
            submit_seq=self._seq,
        )
        running.build_map_index(self.topology)
        if (
            self.backend is not None
            and self.backend.parallel
            and self.mr_config.shuffle_transport == "shm"
        ):
            # Per-job shuffle scope: map workers publish under its
            # token; released on the job finish/fail paths (and by
            # backend shutdown / atexit as backstops).
            from repro.mapreduce import shm

            running.shm_scope = shm.ShmScope(self.mr_config.shm_arena)
        self.jobs[job_id] = running
        self._job_order.append(job_id)
        self._active[running.submit_seq] = running
        if running.pending_maps:
            self._map_schedulable[running.submit_seq] = running
        if running.pending_reduces:
            self._reduce_schedulable[running.submit_seq] = running
        client = self.output_client_factory(None)
        client.mkdirs(output_path)
        running.log(self.sim.now, f"submitted with {len(splits)} splits")
        self.sim.bus.publish(
            "mr.jobtracker.submitted",
            self.sim.now,
            job_id=job_id,
            name=job.name,
            maps=len(splits),
            reduces=job.conf.num_reduces,
        )
        return running

    def _expand_inputs(self, paths: list[str]) -> list[str]:
        files: list[str] = []
        for path in paths:
            status = self.namenode.status(path)  # raises if missing
            if not status.is_dir:
                files.append(status.path)
                continue
            for child in self.namenode.list_status(path):
                name = child.path.rsplit("/", 1)[-1]
                if child.is_dir or name.startswith(("_", ".")):
                    continue
                files.append(child.path)
        return files

    def running_job(self, job_id: str) -> RunningJob:
        return self.jobs[job_id]

    def _active_jobs(self) -> list[RunningJob]:
        """RUNNING jobs in submission order — from the active index, so
        the cost is O(active), not O(every job ever submitted)."""
        return [self._active[seq] for seq in sorted(self._active)]

    # ------------------------------------------------------------------
    # scheduling (heartbeat-driven)
    def heartbeat(self, tracker: TaskTracker) -> list[Assignment]:
        """Pull-model scheduling: fill the tracker's free slots.

        All trackers heartbeat at the same simulated instants (multiples
        of ``tasktracker_heartbeat``), so a whole wave of assignments is
        launched at one simulated time — the window a pooled
        :class:`~repro.mapreduce.backend.ExecutionBackend` exploits to
        run the wave's real work concurrently before the engine's join
        barrier lets the clock move on.
        """
        info = self.trackers.get(tracker.name)
        if info is None:
            self.register_tracker(tracker)
            info = self.trackers[tracker.name]
        info.last_heartbeat = self.sim.now
        info.alive = True
        self._track_tracker_expiry(tracker.name)
        # Fair scheduling accounts per-user load once per wave, then
        # updates it incrementally as this heartbeat launches work.
        loads = self.scheduler.wave_loads(self._active)
        assignments: list[Assignment] = []
        for _ in range(tracker.free_map_slots):
            assignment = self._assign_map(tracker, loads)
            if assignment is None:
                break
            assignments.append(assignment)
        for _ in range(tracker.free_reduce_slots):
            assignment = self._assign_reduce(tracker, loads)
            if assignment is None:
                break
            assignments.append(assignment)
        return assignments

    def _assign_map(
        self, tracker: TaskTracker, loads: dict[str, int] | None = None
    ) -> Assignment | None:
        candidates = [
            (seq, self._map_schedulable[seq])
            for seq in sorted(self._map_schedulable)
        ]
        for job in self.scheduler.job_order(candidates, loads):
            if not job.pending_maps and (
                not job.conf.speculative_execution or job.maps_done
            ):
                # Nothing left to hand out for any tracker: deindex.
                # (The historical ``best_index is None`` fallback this
                # replaces was dead — a non-empty pending queue always
                # yields a rank <= 2 pick.)
                self._map_schedulable.pop(job.submit_seq, None)
                continue
            if tracker.name in job.blacklist:
                continue
            picked = job.pending_maps.pick_for(tracker.name)
            if picked is not None:
                index, locality = picked
                return self._launch_map(
                    job, index, tracker, locality, loads=loads
                )
            speculated = self._pick_straggler(job, tracker)
            if speculated is not None:
                return self._launch_map(
                    job, speculated, tracker,
                    self._map_locality(job.map_tasks[speculated], tracker.name),
                    speculative=True,
                    loads=loads,
                )
        return None

    def _map_locality(self, task: MapTask, node: str) -> str:
        return self.topology.locality_of(node, list(task.split.locations))

    def _pick_straggler(self, job: RunningJob, tracker: TaskTracker) -> int | None:
        if not job.conf.speculative_execution or job.pending_maps:
            return None
        completed = [
            t.duration for t in job.map_tasks if t.duration is not None
        ]
        if not completed:
            return None
        mean = sum(completed) / len(completed)
        for task in job.map_tasks:
            if task.state != TaskState.RUNNING:
                continue
            running = task.running_attempts
            if len(running) != 1:
                continue
            attempt = running[0]
            if attempt.tracker == tracker.name:
                continue
            if self.sim.now - attempt.start_time > STRAGGLER_FACTOR * mean:
                return task.index
        return None

    def _launch_map(
        self,
        job: RunningJob,
        index: int,
        tracker: TaskTracker,
        locality: str,
        speculative: bool = False,
        loads: dict[str, int] | None = None,
    ) -> Assignment:
        job.active_attempts += 1
        if loads is not None:
            loads[job.conf.user] = loads.get(job.conf.user, 0) + 1
        task = job.map_tasks[index]
        attempt = TaskAttempt(
            attempt_id=task.next_attempt_id(),
            task_id=task.task_id,
            task_type=TaskType.MAP,
            tracker=tracker.name,
            start_time=self.sim.now,
            locality=locality,
            speculative=speculative,
        )
        task.attempts.append(attempt)
        task.state = TaskState.RUNNING
        job.counters.increment(C.TOTAL_LAUNCHED_MAPS)
        counter = {
            "node_local": C.DATA_LOCAL_MAPS,
            "rack_local": C.RACK_LOCAL_MAPS,
            "off_rack": C.OFF_RACK_MAPS,
        }[locality]
        job.counters.increment(counter)
        if speculative:
            job.log(self.sim.now, f"speculative attempt of {task.task_id}")
        return Assignment(
            job_id=job.job_id,
            task_type=TaskType.MAP,
            task_index=index,
            attempt_id=attempt.attempt_id,
            speculative=speculative,
        )

    def _assign_reduce(
        self, tracker: TaskTracker, loads: dict[str, int] | None = None
    ) -> Assignment | None:
        candidates = [
            (seq, self._reduce_schedulable[seq])
            for seq in sorted(self._reduce_schedulable)
        ]
        for job in self.scheduler.job_order(candidates, loads):
            if not job.pending_reduces:
                self._reduce_schedulable.pop(job.submit_seq, None)
                continue
            if tracker.name in job.blacklist:
                continue
            if not job.maps_done:
                continue
            partition = job.pending_reduces.popleft()
            if not job.pending_reduces:
                self._reduce_schedulable.pop(job.submit_seq, None)
            job.active_attempts += 1
            if loads is not None:
                loads[job.conf.user] = loads.get(job.conf.user, 0) + 1
            task = job.reduce_tasks[partition]
            attempt = TaskAttempt(
                attempt_id=task.next_attempt_id(),
                task_id=task.task_id,
                task_type=TaskType.REDUCE,
                tracker=tracker.name,
                start_time=self.sim.now,
            )
            task.attempts.append(attempt)
            task.state = TaskState.RUNNING
            job.counters.increment(C.TOTAL_LAUNCHED_REDUCES)
            return Assignment(
                job_id=job.job_id,
                task_type=TaskType.REDUCE,
                task_index=partition,
                attempt_id=attempt.attempt_id,
            )
        return None

    # ------------------------------------------------------------------
    # completion & failure
    def task_completed(
        self, tracker: TaskTracker, assignment: Assignment, execution, duration: float
    ) -> None:
        job = self.jobs[assignment.job_id]
        if job.finished:
            return
        task = self._task_of(job, assignment)
        attempt = self._attempt_of(task, assignment.attempt_id)
        if attempt is not None:
            job.active_attempts -= 1
        if task.state == TaskState.SUCCEEDED:
            # A speculative twin already won.
            if attempt is not None:
                attempt.state = AttemptState.KILLED
                attempt.finish_time = self.sim.now
            job.counters.increment(C.KILLED_SPECULATIVE)
            return
        if attempt is not None:
            attempt.state = AttemptState.SUCCEEDED
            attempt.finish_time = self.sim.now
        task.state = TaskState.SUCCEEDED
        if assignment.task_type == TaskType.MAP:
            job.succeeded_maps += 1
        else:
            job.succeeded_reduces += 1
        task.duration = duration
        job.record_task_counters(task.task_id, execution.counters)
        self.sim.bus.publish(
            "mr.task.completed",
            self.sim.now,
            job_id=job.job_id,
            task_id=task.task_id,
            attempt_id=assignment.attempt_id,
            tracker=tracker.name,
        )
        if assignment.task_type == TaskType.MAP:
            task.output = execution.output
            task.completed_on = tracker.name
            self._kill_twins(job, task, assignment.attempt_id)
            if job.maps_done:
                job.log(self.sim.now, "all maps complete; reduces eligible")
        else:
            task.output_records = len(execution.pairs)
        if job.maps_done and job.reduces_done:
            self._finish_job(job)

    def _kill_twins(self, job: RunningJob, task, winner_attempt_id: str) -> None:
        for attempt in task.running_attempts:
            if attempt.attempt_id == winner_attempt_id:
                continue
            attempt.state = AttemptState.KILLED
            attempt.finish_time = self.sim.now
            job.active_attempts -= 1
            info = self.trackers.get(attempt.tracker)
            if info is not None:
                info.tracker.kill_attempt(attempt.attempt_id)
            job.counters.increment(C.KILLED_SPECULATIVE)

    def tracker_is_serving(self, name: str) -> bool:
        info = self.trackers.get(name)
        return info is not None and info.alive and info.tracker.is_serving

    def map_output_lost(
        self, job_id: str, task_index: int, node: str
    ) -> None:
        """A reduce failed to fetch this map's output: re-run the map."""
        job = self.jobs[job_id]
        if job.finished:
            return
        task = job.map_tasks[task_index]
        if task.state != TaskState.SUCCEEDED or task.completed_on != node:
            return
        task.state = TaskState.PENDING
        task.output = None
        task.completed_on = None
        job.succeeded_maps -= 1
        job.pending_maps.add(task.index)
        self._index_map_schedulable(job)
        job.log(
            self.sim.now,
            f"{task.task_id} output unfetchable from {node}; re-queued",
        )
        self.sim.bus.publish(
            "mr.jobtracker.map_output_lost",
            self.sim.now,
            job_id=job.job_id,
            task_id=task.task_id,
            node=node,
            reason="fetch_failed",
        )

    def task_failed(
        self,
        tracker: TaskTracker,
        assignment: Assignment,
        reason: str,
        counts_against: bool = True,
    ) -> None:
        job = self.jobs[assignment.job_id]
        if job.finished:
            return
        task = self._task_of(job, assignment)
        attempt = self._attempt_of(task, assignment.attempt_id)
        if attempt is not None:
            job.active_attempts -= 1
            attempt.state = (
                AttemptState.FAILED if counts_against else AttemptState.KILLED
            )
            attempt.finish_time = self.sim.now
            attempt.failure = reason
        self.sim.bus.publish(
            "mr.task.failed",
            self.sim.now,
            job_id=job.job_id,
            task_id=task.task_id,
            attempt_id=assignment.attempt_id,
            tracker=tracker.name,
            reason=reason,
            counts_against=counts_against,
        )
        if not counts_against:
            job.log(
                self.sim.now,
                f"{task.task_id} attempt killed on {tracker.name}: {reason}",
            )
            if task.state != TaskState.SUCCEEDED:
                self._requeue(job, task)
            return
        task.failures += 1
        counter = (
            C.FAILED_MAPS
            if assignment.task_type == TaskType.MAP
            else C.FAILED_REDUCES
        )
        job.counters.increment(counter)
        job.log(
            self.sim.now,
            f"{task.task_id} attempt failed on {tracker.name}: {reason}",
        )
        # Blacklist chronic failers for this job — but never more than a
        # quarter of the live cluster (Hadoop's cap), or a run of bad
        # luck could leave a job with no tracker willing to run it.
        job.tracker_failures[tracker.name] = (
            job.tracker_failures.get(tracker.name, 0) + 1
        )
        if job.tracker_failures[tracker.name] >= BLACKLIST_THRESHOLD:
            # mrlint MRE101 audit: dict-view iteration, but the result is
            # an order-insensitive count — not sensitive to the
            # registration order trackers reach after restarts.
            live = sum(
                1
                for info in self.trackers.values()
                if info.alive and info.tracker.is_serving
            )
            if len(job.blacklist) < max(1, live // 4):
                job.blacklist.add(tracker.name)
        if task.failures >= job.conf.max_attempts:
            self._fail_job(
                job,
                f"{task.task_id} failed {task.failures} times; last: {reason}",
            )
            return
        if task.state != TaskState.SUCCEEDED:
            self._requeue(job, task)

    def _task_of(self, job: RunningJob, assignment: Assignment):
        if assignment.task_type == TaskType.MAP:
            return job.map_tasks[assignment.task_index]
        return job.reduce_tasks[assignment.task_index]

    @staticmethod
    def _attempt_of(task, attempt_id: str) -> TaskAttempt | None:
        for attempt in task.attempts:
            if attempt.attempt_id == attempt_id:
                return attempt
        return None

    # ------------------------------------------------------------------
    def _finish_job(self, job: RunningJob) -> None:
        job.state = JobState.SUCCEEDED
        job.finish_time = self.sim.now
        self._deindex_job(job)
        # All reduces have consumed their input: unlink the job's
        # shuffle segments now rather than at cluster teardown.
        job.release_shm()
        client = self.output_client_factory(None)
        client.put_bytes(f"{job.output_path}/_SUCCESS", b"", overwrite=True)
        job.log(self.sim.now, "job succeeded")
        self.sim.bus.publish(
            "mr.jobtracker.succeeded", self.sim.now, job_id=job.job_id
        )

    def _fail_job(self, job: RunningJob, reason: str) -> None:
        job.state = JobState.FAILED
        job.finish_time = self.sim.now
        job.failure_reason = reason
        self._deindex_job(job)
        # mrlint MRE101 audit: dict-view iteration with no early exit —
        # every matching attempt on every tracker is killed, so the
        # visit order (registration order, which changes after tracker
        # restarts) cannot affect the outcome.
        for info in self.trackers.values():
            for attempt_id, running in list(info.tracker.running.items()):
                if running.assignment.job_id == job.job_id:
                    info.tracker.kill_attempt(attempt_id)
        for task in [*job.map_tasks, *job.reduce_tasks]:
            for attempt in task.running_attempts:
                attempt.state = AttemptState.KILLED
                attempt.finish_time = self.sim.now
                job.active_attempts -= 1
        job.log(self.sim.now, f"job failed: {reason}")
        # After every attempt is killed nothing will read the job's
        # shuffle segments again; unlink them.
        job.release_shm()
        self.sim.bus.publish(
            "mr.jobtracker.failed",
            self.sim.now,
            job_id=job.job_id,
            reason=reason,
        )
