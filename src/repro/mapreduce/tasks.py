"""Task and attempt state — what the JobTracker web UI tabulates."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mapreduce.inputformat import InputSplit
from repro.mapreduce.shuffle import MapOutput


class TaskType(enum.Enum):
    MAP = "m"
    REDUCE = "r"


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class AttemptState(enum.Enum):
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"  # lost tracker or losing speculative twin


@dataclass
class TaskAttempt:
    """One execution attempt of one task on one tracker."""

    attempt_id: str
    task_id: str
    task_type: TaskType
    tracker: str
    start_time: float
    state: AttemptState = AttemptState.RUNNING
    finish_time: float | None = None
    locality: str | None = None  # maps only
    failure: str | None = None
    speculative: bool = False

    @property
    def elapsed(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time


@dataclass
class MapTask:
    """One map task: a split plus its attempt history and output."""

    job_id: str
    index: int
    split: InputSplit
    state: TaskState = TaskState.PENDING
    attempts: list[TaskAttempt] = field(default_factory=list)
    failures: int = 0
    #: The attempt's map output in whichever of MapOutput's three forms
    #: the transport produced: live pair lists (object), frozen RWF1
    #: blobs (framed), or shm descriptors (shm — the segments these
    #: name belong to the job's ShmScope, which unlinks them when the
    #: job finishes or fails; the task never owns segment lifetime).
    output: MapOutput | None = None
    completed_on: str | None = None
    duration: float | None = None

    @property
    def task_id(self) -> str:
        return f"task_{self.job_id}_m_{self.index:06d}"

    def next_attempt_id(self) -> str:
        return f"attempt_{self.job_id}_m_{self.index:06d}_{len(self.attempts)}"

    @property
    def running_attempts(self) -> list[TaskAttempt]:
        return [a for a in self.attempts if a.state == AttemptState.RUNNING]

    @property
    def resubmissions(self) -> int:
        """Attempts beyond the first — the quantity the Google-trace
        assignment asks students to maximize over jobs."""
        return max(0, len(self.attempts) - 1)


@dataclass
class ReduceTask:
    """One reduce task: a partition plus its attempt history."""

    job_id: str
    partition: int
    state: TaskState = TaskState.PENDING
    attempts: list[TaskAttempt] = field(default_factory=list)
    failures: int = 0
    output_records: int = 0
    duration: float | None = None

    @property
    def task_id(self) -> str:
        return f"task_{self.job_id}_r_{self.partition:06d}"

    def next_attempt_id(self) -> str:
        return f"attempt_{self.job_id}_r_{self.partition:06d}_{len(self.attempts)}"

    @property
    def running_attempts(self) -> list[TaskAttempt]:
        return [a for a in self.attempts if a.state == AttemptState.RUNNING]
