"""Text renderings of the JobTracker "web interface".

The course's combiner lecture has students watch "increased map task run
time (observed through Hadoop's JobTracker's web interface)"; these
renderers are that interface, as plain text.  ``render_integration_view``
regenerates the *content* of the paper's Figure 2 — the layered picture
from HDFS abstraction down to ``blk_xxx`` files on each node's Linux FS,
with the NameNode/JobTracker memory-resident metadata in between.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mapreduce.job import RunningJob
from repro.mapreduce.tasks import TaskState
from repro.util.textable import TextTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.cluster import MapReduceCluster


def render_cluster_status(cluster: "MapReduceCluster") -> str:
    """The JobTracker front page: trackers and jobs."""
    lines = ["=== JobTracker status ==="]
    table = TextTable(["Tracker", "State", "Map slots", "Reduce slots", "Running"])
    for name in sorted(cluster.tasktrackers):
        tracker = cluster.tasktrackers[name]
        table.add_row(
            [
                name,
                tracker.state.value,
                f"{tracker.free_map_slots}/{cluster.mr_config.map_slots_per_tracker}",
                f"{tracker.free_reduce_slots}/{cluster.mr_config.reduce_slots_per_tracker}",
                len(tracker.running),
            ]
        )
    lines.append(table.render())
    jobs = TextTable(["Job", "Name", "State", "Maps", "Reduces"])
    for job_id in cluster.jobtracker._job_order:
        job = cluster.jobtracker.jobs[job_id]
        done_maps = sum(
            1 for t in job.map_tasks if t.state == TaskState.SUCCEEDED
        )
        done_reduces = sum(
            1 for t in job.reduce_tasks if t.state == TaskState.SUCCEEDED
        )
        jobs.add_row(
            [
                job_id,
                job.name,
                job.state.value,
                f"{done_maps}/{len(job.map_tasks)}",
                f"{done_reduces}/{len(job.reduce_tasks)}",
            ]
        )
    lines.append(jobs.render())
    return "\n".join(lines)


def render_job_page(running: RunningJob) -> str:
    """The per-job page: every task with its attempts."""
    lines = [f"=== {running.job_id} ({running.name}) : {running.state.value} ==="]
    table = TextTable(
        ["Task", "State", "Attempts", "Locality", "Tracker", "Duration"]
    )
    for task in [*running.map_tasks, *running.reduce_tasks]:
        last = task.attempts[-1] if task.attempts else None
        table.add_row(
            [
                task.task_id,
                task.state.value,
                len(task.attempts),
                (last.locality or "-") if last else "-",
                last.tracker if last else "-",
                f"{task.duration:.2f}s" if task.duration is not None else "-",
            ]
        )
    lines.append(table.render())
    if running.events:
        lines.append("Event log:")
        lines += [f"  [{t:9.1f}s] {msg}" for t, msg in running.events]
    return "\n".join(lines)


def render_integration_view(
    cluster: "MapReduceCluster", path: str = "/", running: RunningJob | None = None
) -> str:
    """Figure 2 as structured text: abstraction -> metadata -> physical.

    Four layers, top to bottom, exactly as the paper draws them:

    1. HDFS abstraction (directories/files);
    2. NameNode block metadata, resident in memory;
    3. JobTracker task placement driven by block locations;
    4. the physical view — ``blk_xxx`` files on each node's Linux FS.
    """
    namenode = cluster.hdfs.namenode
    lines = ["=== HDFS Abstractions: Directories/Files ==="]
    for file_path, inode in namenode.namespace.walk_files(path):
        lines.append(
            f"  {file_path}  ({inode.length} bytes, "
            f"{len(inode.blocks)} blocks, replication {inode.replication})"
        )

    lines.append("")
    lines.append(
        "=== NameNode: block metadata lives in memory "
        f"(~{namenode.heap_used_bytes()} bytes of heap) ==="
    )
    for file_path, inode in namenode.namespace.walk_files(path):
        for block in inode.blocks:
            meta = namenode.block_map[block.block_id]
            locations = ",".join(sorted(meta.locations)) or "<none>"
            lines.append(
                f"  {block.name} len={block.length} file={file_path} "
                f"on=[{locations}]"
            )

    if running is not None:
        lines.append("")
        lines.append(
            "=== JobTracker: work assigned by block location "
            "(detailed job progress lives in memory) ==="
        )
        for task in running.map_tasks:
            last = task.attempts[-1] if task.attempts else None
            where = last.tracker if last else "-"
            locality = (last.locality or "-") if last else "-"
            lines.append(
                f"  {task.task_id}: split {task.split.split_id} "
                f"replicas={list(task.split.locations)} -> ran on {where} "
                f"[{locality}]"
            )

    lines.append("")
    lines.append("=== Physical view at the Linux FS (per DataNode) ===")
    for name in sorted(cluster.hdfs.datanodes):
        datanode = cluster.hdfs.datanodes[name]
        listing = datanode.physical_listing()
        shown = ", ".join(listing[:8]) + (" ..." if len(listing) > 8 else "")
        lines.append(
            f"  {name} ({datanode.state.value}): "
            f"{len(listing)} blocks [{shown}]"
        )
    return "\n".join(lines)
