"""MapReduce: the programming model and execution engine.

The split the course teaches (Section II.B of the paper) is preserved in
code: the *programming API* (:mod:`~repro.mapreduce.api`,
:mod:`~repro.mapreduce.types`) is usable entirely without a cluster via
the :mod:`~repro.mapreduce.local_runner` — exactly the serial, no-HDFS
mode of the first assignment — while the *infrastructure*
(:mod:`~repro.mapreduce.jobtracker`, :mod:`~repro.mapreduce.tasktracker`,
:mod:`~repro.mapreduce.cluster`) runs the same jobs over HDFS with
locality-aware scheduling, shuffle accounting and failure recovery.
"""

from repro.mapreduce.types import (
    Text,
    IntWritable,
    LongWritable,
    FloatWritable,
    NullWritable,
    Writable,
    record_writable,
)
from repro.mapreduce.api import Mapper, Reducer, Job
from repro.mapreduce.config import JobConf, MapReduceConfig
from repro.mapreduce.counters import Counters, C
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.local_runner import LocalJobRunner
from repro.mapreduce.streaming import streaming_job

__all__ = [
    "Text",
    "IntWritable",
    "LongWritable",
    "FloatWritable",
    "NullWritable",
    "Writable",
    "record_writable",
    "Mapper",
    "Reducer",
    "Job",
    "JobConf",
    "MapReduceConfig",
    "Counters",
    "C",
    "MapReduceCluster",
    "LocalJobRunner",
    "streaming_job",
]
