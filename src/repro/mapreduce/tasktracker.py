"""The TaskTracker daemon: slots, execution, and the heap-leak crash.

TaskTrackers heartbeat to the JobTracker, receive assignments in the
response, execute them (pricing the work on the simulated hardware) and
report completion.  The failure mode the paper describes — student jobs
with "run time errors that created memory leaks on the Java heap memory
and consequently crashed the task tracker and data node daemons" — is a
first-class behaviour here: a heap-leak attempt fails *and* takes the
daemon (and, configurably, the co-located DataNode) down with it.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.hardware import Node
from repro.mapreduce.backend import (
    ExecutionBackend,
    SerialExecutionBackend,
    WorkHandle,
)
from repro.mapreduce.blockio import BlockFetcher
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.counters import C, PERF
from repro.mapreduce.inputformat import FetchStats
from repro.mapreduce.outputformat import TextOutputFormat, part_file_name
from repro.mapreduce.runtime import (
    _wrap_user_error,
    execute_map,
    execute_reduce,
    map_attempt_work,
    prefetch_split,
    reduce_attempt_work,
)
from repro.mapreduce.shuffle import merge_for_reduce, serialized_bytes
from repro.mapreduce.tasks import TaskType
from repro.sim.engine import ScheduledEvent, Simulation
from repro.util.errors import (
    FetchFailedError,
    HeapExhaustedError,
    ReproError,
    TaskFailedError,
)
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.client import DFSClient
    from repro.hdfs.datanode import DataNode
    from repro.mapreduce.jobtracker import Assignment, JobTracker


class TrackerState(enum.Enum):
    STOPPED = "stopped"
    UP = "up"
    CRASHED = "crashed"


@dataclass
class _RunningAttempt:
    assignment: "Assignment"
    #: None while the attempt's real work is still in flight on a
    #: parallel backend; set once the work resolves and a completion
    #: (or failure/heap-leak) event is scheduled.
    completion: ScheduledEvent | None = None


#: The fraction of a heap-leaking task's normal runtime it burns before
#: the JVM dies (students watched tasks run a while, then OOM).
HEAP_LEAK_BURN_FRACTION = 0.6


class _ShuffleStall(Exception):
    """Internal: a reduce's shuffle fetch failed transiently; retry with
    backoff instead of escalating to ``map_output_lost``."""

    def __init__(self, nodes: list[str]):
        super().__init__(f"shuffle stalled on {nodes}")
        self.nodes = nodes


class TaskTracker:
    """One TaskTracker daemon on one node."""

    def __init__(
        self,
        node: Node,
        sim: Simulation,
        mr_config: MapReduceConfig,
        fetcher: BlockFetcher,
        output_client_factory: Callable[[str | None], "DFSClient"],
        rng: RngStream,
        co_datanode: "DataNode | None" = None,
        backend: ExecutionBackend | None = None,
    ):
        self.node = node
        self.sim = sim
        self.mr_config = mr_config
        self.fetcher = fetcher
        self.output_client_factory = output_client_factory
        self.rng = rng
        self.co_datanode = co_datanode
        self.backend = backend if backend is not None else SerialExecutionBackend()
        self.jobtracker: "JobTracker | None" = None
        self.state = TrackerState.STOPPED
        self.running: dict[str, _RunningAttempt] = {}
        #: Per-node shared memory surviving across tasks — the "global
        #: memory on each node" of the third airline-delay variant, and
        #: the cache behind ``Context.cached_side_file``.
        self.node_cache: dict[str, Any] = {}
        self._cancel_heartbeat: Callable[[], None] | None = None
        self.tasks_run = 0
        self.crashes = 0
        self.heartbeats_sent = 0
        self.shuffle_retries = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_serving(self) -> bool:
        return self.state == TrackerState.UP and self.node.is_up

    def running_of_type(self, task_type: TaskType) -> int:
        return sum(
            1
            for r in self.running.values()
            if r.assignment.task_type == task_type
        )

    @property
    def free_map_slots(self) -> int:
        return self.mr_config.map_slots_per_tracker - self.running_of_type(
            TaskType.MAP
        )

    @property
    def free_reduce_slots(self) -> int:
        return self.mr_config.reduce_slots_per_tracker - self.running_of_type(
            TaskType.REDUCE
        )

    # -- lifecycle -------------------------------------------------------
    def start(self, jobtracker: "JobTracker") -> None:
        self.jobtracker = jobtracker
        self.state = TrackerState.UP
        jobtracker.register_tracker(self)
        # Trackers ride the shared per-interval timer wheel (one engine
        # event per heartbeat instant for the whole fleet).
        self._cancel_heartbeat = self.sim.wheel(
            self.mr_config.tasktracker_heartbeat
        ).subscribe(self._heartbeat)
        self.sim.bus.publish("mr.tasktracker.up", self.sim.now, tracker=self.name)

    def stop(self) -> None:
        self._halt(TrackerState.STOPPED, "mr.tasktracker.stopped")

    def crash(self) -> None:
        """Abrupt daemon death: running work is silently lost."""
        self.crashes += 1
        self.node_cache.clear()  # the JVM and its memory are gone
        self._halt(TrackerState.CRASHED, "mr.tasktracker.crashed")

    def _halt(self, state: TrackerState, topic: str) -> None:
        if self._cancel_heartbeat is not None:
            self._cancel_heartbeat()
            self._cancel_heartbeat = None
        # Resolve any in-flight pooled work first: on a serial backend
        # the work (and its side effects, e.g. a reduce's output write)
        # already happened at launch, so a pooled run must let it land
        # too before the completions are cancelled — identical outcome.
        self.backend.join_all()
        for running in self.running.values():
            if running.completion is not None:
                running.completion.cancel()
        self.running.clear()
        self.state = state
        self.sim.bus.publish(topic, self.sim.now, tracker=self.name)

    # -- heartbeat ---------------------------------------------------------
    def _heartbeat(self) -> None:
        if not self.is_serving or self.jobtracker is None:
            return
        if self.sim.faults.tracker_heartbeat_crash(self):
            self.crash()
            return
        self.heartbeats_sent += 1
        assignments = self.jobtracker.heartbeat(self)
        for assignment in assignments:
            self._launch(assignment)

    # -- execution -----------------------------------------------------------
    def _launch(self, assignment: "Assignment", retry: int = 0) -> None:
        """Start one task attempt (``retry`` counts shuffle re-fetches).

        The attempt's *real* work runs wherever the execution backend
        puts it (inline for the serial backend; on a pool otherwise),
        but every simulation-visible consequence — completion events,
        failure scheduling, the heap-leak RNG draw, the reduce-output
        HDFS write — happens in ``on_done``, which parallel backends
        invoke in submission order at the engine's deterministic join
        point, with the simulated clock still at the submit instant.
        Pooled and serial runs are therefore bit-identical.
        """
        job = self.jobtracker.running_job(assignment.job_id)
        if retry == 0:
            self.tasks_run += 1
            fault = self.sim.faults.task_attempt_fault(
                assignment.job_id, assignment.attempt_id
            )
            if fault is not None:
                self._schedule_failure(assignment, TaskFailedError(fault))
                return
        try:
            if assignment.task_type == TaskType.MAP:
                work, finalize, inline = self._prepare_map(job, assignment)
            else:
                work, finalize, inline = self._prepare_reduce(
                    job, assignment, retry
                )
        except _ShuffleStall as stall:
            self._schedule_shuffle_retry(assignment, stall, retry)
            return
        except FetchFailedError as exc:
            # Fetch failures are the *map's* fault: the attempt is
            # killed without burning this reduce's failure budget.
            self._schedule_failure(assignment, exc, counts_against=False)
            return
        except ReproError as exc:
            self._schedule_failure(assignment, exc)
            return

        running = _RunningAttempt(assignment=assignment)
        self.running[assignment.attempt_id] = running

        def on_done(handle: WorkHandle) -> None:
            try:
                result, duration = finalize(handle.result())
            except FetchFailedError as exc:
                self._schedule_failure(
                    assignment, exc, counts_against=False, running=running
                )
                return
            except ReproError as exc:
                # User-code bugs (TaskFailedError) and infrastructure
                # trouble (e.g. an unreadable block) both surface as
                # attempt failures, as they do in Hadoop.
                self._schedule_failure(assignment, exc, running=running)
                return
            heap_leak = self.rng.bernoulli(job.conf.heap_leak_probability)
            if heap_leak:
                self._schedule_heap_leak(assignment, duration, job, running)
                return
            slowdown = self.sim.faults.attempt_slowdown(
                assignment.job_id, assignment.attempt_id
            )
            if slowdown != 1.0:
                duration *= slowdown
                result.duration = duration
                self.sim.bus.publish(
                    "mr.task.straggling",
                    self.sim.now,
                    tracker=self.name,
                    attempt=assignment.attempt_id,
                    factor=slowdown,
                )
            timeout = job.conf.task_timeout
            if timeout is not None and duration > timeout:
                # The attempt would run past mapred.task.timeout: the
                # tracker kills it at the deadline and reports a failure.
                running.completion = self.sim.schedule(
                    timeout, self._timeout_fires, assignment, timeout
                )
                return
            running.completion = self.sim.schedule(
                duration, self._complete, assignment, result, duration
            )

        self.backend.submit(
            work, on_done, submit_time=self.sim.now, inline=inline
        )

    def _run_inline(self, job: "Job | None") -> bool:
        """Must this job's work stay in the simulation thread?"""
        return not self.backend.parallel or bool(
            job is not None and job.shares_node_state
        )

    def _prepare_map(self, job, assignment):
        """Split a map attempt into (work, finalize, inline)."""
        task = job.map_tasks[assignment.task_index]
        tally: dict[str, int] = {}
        fetch = self.fetcher.make_fetch(self.name, tally)
        prefetched = None
        if not self._run_inline(job.job):
            # Block I/O touches DataNode/network state: do it now, in
            # the simulation thread, so the pool worker is share-nothing.
            try:
                prefetched = prefetch_split(job.job, task.split, fetch)
            except Exception as exc:  # noqa: BLE001 - same wrap as serial
                raise _wrap_user_error("map", exc) from exc
        if prefetched is None:
            def work_inline():
                execution = execute_map(
                    job=job.job,
                    split=task.split,
                    fetch=fetch,
                    cost=self.mr_config.cost,
                    mr_config=self.mr_config,
                    side_reader=self._side_reader,
                    node_cache=self.node_cache,
                    task_node=self.name,
                    disk_write_bw=self.node.spec.disk_write_bw,
                )
                return execution

            work, inline = work_inline, True
        else:
            shm_scope = getattr(job, "shm_scope", None)
            work, inline = functools.partial(
                map_attempt_work,
                job.job,
                task.split,
                prefetched,
                self.mr_config.cost,
                self.mr_config,
                self.name,
                self.node.spec.disk_write_bw,
                shm_token=None if shm_scope is None else shm_scope.token,
            ), False

        def finalize(execution):
            execution.output.node = self.name
            execution.output.task_index = assignment.task_index
            scope = getattr(job, "shm_scope", None)
            if scope is not None:
                # Adopt in the simulation thread, as soon as the result
                # lands: the job's scope then unlinks this segment by
                # name at job end even if the task is later re-run.
                scope.adopt_output(execution.output)
            if execution.perf:
                PERF.merge(execution.perf)
            self._publish_violations(assignment, execution)
            return execution, execution.duration

        return work, finalize, inline

    def _prepare_reduce(self, job, assignment, retry: int = 0):
        """Split a reduce attempt into (work, finalize, inline).

        Shuffle fetch: map output lives on the node that ran the map.
        A fetch that fails — dead source node, or an injected transient
        failure — is retried with exponential backoff + jitter up to
        ``shuffle_fetch_retries`` times (:class:`_ShuffleStall`); only
        then does the reduce escalate to ``map_output_lost`` so the map
        re-runs (Hadoop's fetch-failure -> map re-execution path).
        """
        partition = assignment.task_index
        outputs = job.completed_map_outputs()
        failed_sources = [
            output
            for output in outputs
            if output.node
            and (
                (
                    self.jobtracker is not None
                    and not self.jobtracker.tracker_is_serving(output.node)
                )
                or self.sim.faults.shuffle_fetch_fails(
                    assignment.attempt_id, output.node, retry
                )
            )
        ]
        if failed_sources or not job.maps_done:
            nodes = sorted({o.node for o in failed_sources})
            if retry < self.mr_config.shuffle_fetch_retries:
                raise _ShuffleStall(nodes)
            for output in failed_sources:
                self.jobtracker.map_output_lost(
                    job.job_id, output.task_index, output.node
                )
            self.sim.bus.publish(
                "mr.shuffle.fetch_failed",
                self.sim.now,
                tracker=self.name,
                attempt=assignment.attempt_id,
                sources=nodes,
                retries=retry,
            )
            raise FetchFailedError(
                f"could not fetch map output from node(s) {nodes} "
                f"after {retry} retries"
            )
        shuffle_time, shuffle_bytes = self._price_shuffle(outputs, partition)

        if self._run_inline(job.job):
            def work_inline():
                merged = merge_for_reduce(outputs, partition)
                execution = execute_reduce(
                    job=job.job,
                    merged_pairs=merged,
                    cost=self.mr_config.cost,
                    side_reader=self._side_reader,
                    node_cache=self.node_cache,
                    task_node=self.name,
                    mr_config=self.mr_config,
                )
                return execution, TextOutputFormat.render(execution.pairs)

            work, inline = work_inline, True
        else:
            # Frozen (framed) map outputs slim to this partition's blob
            # before pickling into the pool; object-form outputs pass
            # through unchanged (slice_for returns self).
            shipped = [output.slice_for(partition) for output in outputs]
            work, inline = functools.partial(
                reduce_attempt_work,
                job.job,
                shipped,
                partition,
                self.mr_config.cost,
                self.name,
                self.mr_config,
            ), False

        def finalize(payload):
            execution, text = payload
            if execution.perf:
                PERF.merge(execution.perf)
            execution.counters.increment(C.REDUCE_SHUFFLE_BYTES, shuffle_bytes)
            # Write this partition's output file to HDFS from this node.
            client = self.output_client_factory(self.name)
            out_path = f"{job.output_path}/{part_file_name(partition)}"
            write = client.put_bytes(
                out_path, text.encode("utf-8"), overwrite=True
            )
            execution.counters.increment(C.HDFS_BYTES_WRITTEN, write.length)
            duration = execution.duration + shuffle_time + write.elapsed
            execution.duration = duration
            self._publish_violations(assignment, execution)
            return execution, duration

        return work, finalize, inline

    def _publish_violations(self, assignment, execution) -> None:
        """Surface runtime-sanitizer findings on the event bus.

        Published under ``mr.task.sanitizer`` so chaos-drill timelines
        (which subscribe to the ``mr.task`` prefix) show them inline
        with the task lifecycle.  Runs in the simulation thread.
        """
        for message in execution.violations:
            self.sim.bus.publish(
                "mr.task.sanitizer",
                self.sim.now,
                tracker=self.name,
                attempt=assignment.attempt_id,
                violation=message,
            )

    #: Parallel copier threads per reduce (mapred.reduce.parallel.copies).
    PARALLEL_COPIES = 5

    def _price_shuffle(self, outputs, partition: int) -> tuple[float, int]:
        """Network time + bytes to pull one partition from all maps."""
        per_source: list[float] = []
        total_bytes = 0
        for output in outputs:
            nbytes = output.partition_bytes(partition)
            if nbytes == 0:
                continue
            total_bytes += nbytes
            per_source.append(
                self.fetcher.network.transfer_time(output.node, self.name, nbytes)
            )
        if not per_source:
            return 0.0, 0
        elapsed = max(max(per_source), sum(per_source) / self.PARALLEL_COPIES)
        return elapsed, total_bytes

    def _side_reader(self, path: str) -> tuple[str, float]:
        """Read an auxiliary HDFS file from this node, returning cost.

        The cost model's per-byte streaming charge represents the open/
        deserialize overhead students pay per redundant read.
        """
        text, io_elapsed = self.fetcher.read_whole_file(path, self.name)
        cost = self.mr_config.cost
        elapsed = (
            io_elapsed
            + cost.side_open_overhead
            + len(text) * cost.side_read_per_byte
        )
        return text, elapsed

    # -- shuffle retry ------------------------------------------------------
    def _shuffle_backoff(self, attempt_id: str, retry: int) -> float:
        """Exponential backoff with deterministic jitter for one re-fetch.

        The jitter draw comes from a stream named by (attempt, retry),
        so it is identical across serial and pooled runs and across
        replays of the same seed.
        """
        cfg = self.mr_config
        delay = min(cfg.shuffle_retry_base * (2.0 ** retry), cfg.shuffle_retry_max)
        if cfg.shuffle_retry_jitter > 0.0:
            jitter = self.rng.child("shuffle-retry", attempt_id, retry).uniform(
                -cfg.shuffle_retry_jitter, cfg.shuffle_retry_jitter
            )
            delay *= 1.0 + jitter
        return delay

    def _schedule_shuffle_retry(
        self, assignment: "Assignment", stall: _ShuffleStall, retry: int
    ) -> None:
        self.shuffle_retries += 1
        delay = self._shuffle_backoff(assignment.attempt_id, retry)
        self.sim.bus.publish(
            "mr.shuffle.retry",
            self.sim.now,
            tracker=self.name,
            attempt=assignment.attempt_id,
            sources=stall.nodes,
            retry=retry + 1,
            delay=delay,
        )
        running = self.running.get(assignment.attempt_id)
        if running is None:
            running = _RunningAttempt(assignment=assignment)
            self.running[assignment.attempt_id] = running
        running.completion = self.sim.schedule(
            delay, self._retry_launch, assignment, retry + 1
        )

    def _retry_launch(self, assignment: "Assignment", retry: int) -> None:
        if not self.is_serving or self.jobtracker is None:
            return
        if assignment.attempt_id not in self.running:
            return  # killed while backing off
        job = self.jobtracker.running_job(assignment.job_id)
        if job.finished:
            self.running.pop(assignment.attempt_id, None)
            return
        self._launch(assignment, retry=retry)

    def _timeout_fires(self, assignment: "Assignment", timeout: float) -> None:
        self.sim.bus.publish(
            "mr.task.timeout",
            self.sim.now,
            tracker=self.name,
            attempt=assignment.attempt_id,
            timeout=timeout,
        )
        self._fail(
            assignment,
            f"Task {assignment.attempt_id} failed to report status for "
            f"{timeout:.0f} seconds. Killing!",
        )

    # -- completion & failure ---------------------------------------------
    def _complete(self, assignment: "Assignment", result, duration: float) -> None:
        self.running.pop(assignment.attempt_id, None)
        if not self.is_serving or self.jobtracker is None:
            return
        self.jobtracker.task_completed(self, assignment, result, duration)

    def _schedule_failure(
        self,
        assignment: "Assignment",
        exc: Exception,
        counts_against: bool = True,
        running: _RunningAttempt | None = None,
    ) -> None:
        """User-code error: the attempt burns startup time, then fails."""
        duration = self.mr_config.cost.task_startup + 2.0
        completion = self.sim.schedule(
            duration, self._fail, assignment, str(exc), counts_against
        )
        if running is None:
            running = _RunningAttempt(assignment=assignment)
            self.running[assignment.attempt_id] = running
        running.completion = completion

    def _schedule_heap_leak(
        self,
        assignment,
        duration: float,
        job,
        running: _RunningAttempt | None = None,
    ) -> None:
        burn = duration * HEAP_LEAK_BURN_FRACTION
        completion = self.sim.schedule(
            burn,
            self._heap_leak_fires,
            assignment,
            job.conf.crash_daemons_on_heap_leak,
        )
        if running is None:
            running = _RunningAttempt(assignment=assignment)
            self.running[assignment.attempt_id] = running
        running.completion = completion

    def _heap_leak_fires(self, assignment, crash_daemons: bool) -> None:
        self.running.pop(assignment.attempt_id, None)
        error = HeapExhaustedError(
            "java.lang.OutOfMemoryError: Java heap space"
        )
        if self.jobtracker is not None:
            self.jobtracker.task_failed(self, assignment, str(error))
        self.sim.bus.publish(
            "mr.task.heap_leak",
            self.sim.now,
            tracker=self.name,
            attempt=assignment.attempt_id,
        )
        if crash_daemons:
            # The leak kills the shared JVM heap: TaskTracker and the
            # co-located DataNode daemon both die (the paper's cascade).
            self.crash()
            if self.co_datanode is not None and self.co_datanode.is_serving:
                self.co_datanode.crash()

    def _fail(
        self, assignment: "Assignment", reason: str, counts_against: bool = True
    ) -> None:
        self.running.pop(assignment.attempt_id, None)
        if not self.is_serving or self.jobtracker is None:
            return
        self.jobtracker.task_failed(
            self, assignment, reason, counts_against=counts_against
        )

    def kill_attempt(self, attempt_id: str) -> bool:
        """Cancel a running attempt (losing speculative twin)."""
        # Let in-flight work resolve first (see _halt) so the kill
        # cancels a scheduled completion, exactly as on a serial run.
        self.backend.join_all()
        running = self.running.pop(attempt_id, None)
        if running is None:
            return False
        if running.completion is not None:
            running.completion.cancel()
        return True

    def __repr__(self) -> str:
        return (
            f"TaskTracker({self.name}, {self.state.value}, "
            f"running={len(self.running)})"
        )
