"""The TaskTracker daemon: slots, execution, and the heap-leak crash.

TaskTrackers heartbeat to the JobTracker, receive assignments in the
response, execute them (pricing the work on the simulated hardware) and
report completion.  The failure mode the paper describes — student jobs
with "run time errors that created memory leaks on the Java heap memory
and consequently crashed the task tracker and data node daemons" — is a
first-class behaviour here: a heap-leak attempt fails *and* takes the
daemon (and, configurably, the co-located DataNode) down with it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.hardware import Node
from repro.mapreduce.blockio import BlockFetcher
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.counters import C
from repro.mapreduce.inputformat import FetchStats
from repro.mapreduce.outputformat import TextOutputFormat, part_file_name
from repro.mapreduce.runtime import execute_map, execute_reduce
from repro.mapreduce.shuffle import merge_for_reduce, serialized_bytes
from repro.mapreduce.tasks import TaskType
from repro.sim.engine import ScheduledEvent, Simulation
from repro.util.errors import FetchFailedError, HeapExhaustedError, ReproError
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.client import DFSClient
    from repro.hdfs.datanode import DataNode
    from repro.mapreduce.jobtracker import Assignment, JobTracker


class TrackerState(enum.Enum):
    STOPPED = "stopped"
    UP = "up"
    CRASHED = "crashed"


@dataclass
class _RunningAttempt:
    assignment: "Assignment"
    completion: ScheduledEvent


#: The fraction of a heap-leaking task's normal runtime it burns before
#: the JVM dies (students watched tasks run a while, then OOM).
HEAP_LEAK_BURN_FRACTION = 0.6


class TaskTracker:
    """One TaskTracker daemon on one node."""

    def __init__(
        self,
        node: Node,
        sim: Simulation,
        mr_config: MapReduceConfig,
        fetcher: BlockFetcher,
        output_client_factory: Callable[[str | None], "DFSClient"],
        rng: RngStream,
        co_datanode: "DataNode | None" = None,
    ):
        self.node = node
        self.sim = sim
        self.mr_config = mr_config
        self.fetcher = fetcher
        self.output_client_factory = output_client_factory
        self.rng = rng
        self.co_datanode = co_datanode
        self.jobtracker: "JobTracker | None" = None
        self.state = TrackerState.STOPPED
        self.running: dict[str, _RunningAttempt] = {}
        #: Per-node shared memory surviving across tasks — the "global
        #: memory on each node" of the third airline-delay variant, and
        #: the cache behind ``Context.cached_side_file``.
        self.node_cache: dict[str, Any] = {}
        self._cancel_heartbeat: Callable[[], None] | None = None
        self.tasks_run = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_serving(self) -> bool:
        return self.state == TrackerState.UP and self.node.is_up

    def running_of_type(self, task_type: TaskType) -> int:
        return sum(
            1
            for r in self.running.values()
            if r.assignment.task_type == task_type
        )

    @property
    def free_map_slots(self) -> int:
        return self.mr_config.map_slots_per_tracker - self.running_of_type(
            TaskType.MAP
        )

    @property
    def free_reduce_slots(self) -> int:
        return self.mr_config.reduce_slots_per_tracker - self.running_of_type(
            TaskType.REDUCE
        )

    # -- lifecycle -------------------------------------------------------
    def start(self, jobtracker: "JobTracker") -> None:
        self.jobtracker = jobtracker
        self.state = TrackerState.UP
        jobtracker.register_tracker(self)
        self._cancel_heartbeat = self.sim.every(
            self.mr_config.tasktracker_heartbeat, self._heartbeat
        )
        self.sim.bus.publish("mr.tasktracker.up", self.sim.now, tracker=self.name)

    def stop(self) -> None:
        self._halt(TrackerState.STOPPED, "mr.tasktracker.stopped")

    def crash(self) -> None:
        """Abrupt daemon death: running work is silently lost."""
        self.crashes += 1
        self.node_cache.clear()  # the JVM and its memory are gone
        self._halt(TrackerState.CRASHED, "mr.tasktracker.crashed")

    def _halt(self, state: TrackerState, topic: str) -> None:
        if self._cancel_heartbeat is not None:
            self._cancel_heartbeat()
            self._cancel_heartbeat = None
        for running in self.running.values():
            running.completion.cancel()
        self.running.clear()
        self.state = state
        self.sim.bus.publish(topic, self.sim.now, tracker=self.name)

    # -- heartbeat ---------------------------------------------------------
    def _heartbeat(self) -> None:
        if not self.is_serving or self.jobtracker is None:
            return
        assignments = self.jobtracker.heartbeat(self)
        for assignment in assignments:
            self._launch(assignment)

    # -- execution -----------------------------------------------------------
    def _launch(self, assignment: "Assignment") -> None:
        self.tasks_run += 1
        job = self.jobtracker.running_job(assignment.job_id)
        try:
            if assignment.task_type == TaskType.MAP:
                result, duration = self._run_map(job, assignment)
            else:
                result, duration = self._run_reduce(job, assignment)
        except FetchFailedError as exc:
            # Fetch failures are the *map's* fault: the attempt is
            # killed without burning this reduce's failure budget.
            self._schedule_failure(assignment, exc, counts_against=False)
            return
        except ReproError as exc:
            # User-code bugs (TaskFailedError) and infrastructure trouble
            # (e.g. an unreadable block) both surface as attempt failures,
            # as they do in Hadoop.
            self._schedule_failure(assignment, exc)
            return
        heap_leak = self.rng.bernoulli(job.conf.heap_leak_probability)
        if heap_leak:
            self._schedule_heap_leak(assignment, duration, job)
            return
        completion = self.sim.schedule(
            duration, self._complete, assignment, result, duration
        )
        self.running[assignment.attempt_id] = _RunningAttempt(
            assignment=assignment, completion=completion
        )

    def _run_map(self, job, assignment):
        task = job.map_tasks[assignment.task_index]
        tally: dict[str, int] = {}
        fetch = self.fetcher.make_fetch(self.name, tally)
        execution = execute_map(
            job=job.job,
            split=task.split,
            fetch=fetch,
            cost=self.mr_config.cost,
            mr_config=self.mr_config,
            side_reader=self._side_reader,
            node_cache=self.node_cache,
            task_node=self.name,
            disk_write_bw=self.node.spec.disk_write_bw,
        )
        execution.output.node = self.name
        execution.output.task_index = assignment.task_index
        return execution, execution.duration

    def _run_reduce(self, job, assignment):
        partition = assignment.task_index
        outputs = job.completed_map_outputs()
        # Shuffle fetch: map output lives on the node that ran the map.
        # If that node is gone, the fetch fails and the map must re-run
        # (Hadoop's fetch-failure -> map re-execution path).
        dead_sources = [
            output
            for output in outputs
            if output.node
            and self.jobtracker is not None
            and not self.jobtracker.tracker_is_serving(output.node)
        ]
        if dead_sources:
            for output in dead_sources:
                self.jobtracker.map_output_lost(
                    job.job_id, output.task_index, output.node
                )
            nodes = sorted({o.node for o in dead_sources})
            raise FetchFailedError(
                f"could not fetch map output from dead node(s) {nodes}"
            )
        merged = merge_for_reduce(outputs, partition)
        shuffle_time, shuffle_bytes = self._price_shuffle(outputs, partition)
        execution = execute_reduce(
            job=job.job,
            merged_pairs=merged,
            cost=self.mr_config.cost,
            side_reader=self._side_reader,
            node_cache=self.node_cache,
            task_node=self.name,
        )
        execution.counters.increment(C.REDUCE_SHUFFLE_BYTES, shuffle_bytes)
        # Write this partition's output file to HDFS from this node.
        client = self.output_client_factory(self.name)
        text = TextOutputFormat.render(execution.pairs)
        out_path = f"{job.output_path}/{part_file_name(partition)}"
        write = client.put_bytes(out_path, text.encode("utf-8"), overwrite=True)
        execution.counters.increment(C.HDFS_BYTES_WRITTEN, write.length)
        duration = execution.duration + shuffle_time + write.elapsed
        execution.duration = duration
        return execution, duration

    #: Parallel copier threads per reduce (mapred.reduce.parallel.copies).
    PARALLEL_COPIES = 5

    def _price_shuffle(self, outputs, partition: int) -> tuple[float, int]:
        """Network time + bytes to pull one partition from all maps."""
        per_source: list[float] = []
        total_bytes = 0
        for output in outputs:
            nbytes = output.partition_bytes(partition)
            if nbytes == 0:
                continue
            total_bytes += nbytes
            per_source.append(
                self.fetcher.network.transfer_time(output.node, self.name, nbytes)
            )
        if not per_source:
            return 0.0, 0
        elapsed = max(max(per_source), sum(per_source) / self.PARALLEL_COPIES)
        return elapsed, total_bytes

    def _side_reader(self, path: str) -> tuple[str, float]:
        """Read an auxiliary HDFS file from this node, returning cost.

        The cost model's per-byte streaming charge represents the open/
        deserialize overhead students pay per redundant read.
        """
        text, io_elapsed = self.fetcher.read_whole_file(path, self.name)
        cost = self.mr_config.cost
        elapsed = (
            io_elapsed
            + cost.side_open_overhead
            + len(text) * cost.side_read_per_byte
        )
        return text, elapsed

    # -- completion & failure ---------------------------------------------
    def _complete(self, assignment: "Assignment", result, duration: float) -> None:
        self.running.pop(assignment.attempt_id, None)
        if not self.is_serving or self.jobtracker is None:
            return
        self.jobtracker.task_completed(self, assignment, result, duration)

    def _schedule_failure(
        self,
        assignment: "Assignment",
        exc: Exception,
        counts_against: bool = True,
    ) -> None:
        """User-code error: the attempt burns startup time, then fails."""
        duration = self.mr_config.cost.task_startup + 2.0
        completion = self.sim.schedule(
            duration, self._fail, assignment, str(exc), counts_against
        )
        self.running[assignment.attempt_id] = _RunningAttempt(
            assignment=assignment, completion=completion
        )

    def _schedule_heap_leak(self, assignment, duration: float, job) -> None:
        burn = duration * HEAP_LEAK_BURN_FRACTION
        completion = self.sim.schedule(
            burn,
            self._heap_leak_fires,
            assignment,
            job.conf.crash_daemons_on_heap_leak,
        )
        self.running[assignment.attempt_id] = _RunningAttempt(
            assignment=assignment, completion=completion
        )

    def _heap_leak_fires(self, assignment, crash_daemons: bool) -> None:
        self.running.pop(assignment.attempt_id, None)
        error = HeapExhaustedError(
            "java.lang.OutOfMemoryError: Java heap space"
        )
        if self.jobtracker is not None:
            self.jobtracker.task_failed(self, assignment, str(error))
        self.sim.bus.publish(
            "mr.task.heap_leak",
            self.sim.now,
            tracker=self.name,
            attempt=assignment.attempt_id,
        )
        if crash_daemons:
            # The leak kills the shared JVM heap: TaskTracker and the
            # co-located DataNode daemon both die (the paper's cascade).
            self.crash()
            if self.co_datanode is not None and self.co_datanode.is_serving:
                self.co_datanode.crash()

    def _fail(
        self, assignment: "Assignment", reason: str, counts_against: bool = True
    ) -> None:
        self.running.pop(assignment.attempt_id, None)
        if not self.is_serving or self.jobtracker is None:
            return
        self.jobtracker.task_failed(
            self, assignment, reason, counts_against=counts_against
        )

    def kill_attempt(self, attempt_id: str) -> bool:
        """Cancel a running attempt (losing speculative twin)."""
        running = self.running.pop(attempt_id, None)
        if running is None:
            return False
        running.completion.cancel()
        return True

    def __repr__(self) -> str:
        return (
            f"TaskTracker({self.name}, {self.state.value}, "
            f"running={len(self.running)})"
        )
