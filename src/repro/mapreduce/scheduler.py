"""Indexed, pluggable task scheduling for the JobTracker.

Two structures keep campus-scale scheduling O(active) instead of
O(everything):

:class:`PendingMapQueue`
    Locality-indexed pending-map buckets.  The historical
    ``_pick_pending_map`` scanned every pending map and looked up its
    locality per candidate — O(pending × locality) per free slot per
    heartbeat.  The queue maintains per-node and per-rack FIFO heaps
    incrementally on add/launch/requeue, so a pick is O(log pending)
    and provably reproduces the scan's choice (see :meth:`pick_for`).

:class:`FifoScheduler` / :class:`FairScheduler`
    Pluggable job-ordering strategies.  FIFO preserves the historical
    submission-order assignment bit-identically.  Fair share orders
    users by current running-attempt load (fewest first, equal shares)
    and enforces optional per-user quota caps — the multi-tenant
    deadline-crunch policy the campus scenario needs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterable

from repro.cluster.topology import ClusterTopology
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import RunningJob
    from repro.mapreduce.tasks import MapTask


class PendingMapQueue:
    """FIFO of pending map indices with incremental locality buckets.

    Semantics proven equal to the historical scan (first pending map of
    the best achievable rank, in enqueue order):

    - *node bucket hit* → some pending map is node-local; the heap top
      is the enqueue-earliest of them, exactly what the scan's rank-0
      early exit picked.
    - *rack bucket hit* (node bucket empty) → no pending map is
      node-local, so every map in the rack bucket ranks ``rack_local``
      and the top is the enqueue-earliest — the scan's first best-rank
      match.
    - *global head* (both buckets empty) → every pending map ranks
      ``off_rack``; first-in-FIFO wins, which is the global heap top.

    Entries are invalidated lazily: membership maps index → enqueue
    seq, and stale heap entries (launched or re-enqueued since) are
    discarded on pop.  A re-queued map gets a fresh, larger seq — the
    deque-append behaviour of the original.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        map_tasks: "list[MapTask]",
        initial: Iterable[int] = (),
    ):
        self._topology = topology
        #: index -> replica nodes (split locations, stable order).
        self._locations: list[tuple[str, ...]] = [
            tuple(task.split.locations) for task in map_tasks
        ]
        #: index -> racks of those nodes (deduped, sorted).
        self._racks: list[tuple[str, ...]] = [
            tuple(
                sorted({topology.rack_of(n) for n in locs if n in topology})
            )
            for locs in self._locations
        ]
        #: index -> current enqueue seq; insertion order is FIFO order.
        self._membership: dict[int, int] = {}
        self._seq = itertools.count()
        self._by_node: dict[str, list[tuple[int, int]]] = {}
        self._by_rack: dict[str, list[tuple[int, int]]] = {}
        self._all: list[tuple[int, int]] = []
        for index in initial:
            self.add(index)

    # -- container protocol (what the JobTracker relies on) ------------
    def __len__(self) -> int:
        return len(self._membership)

    def __bool__(self) -> bool:
        return bool(self._membership)

    def __contains__(self, index: int) -> bool:
        return index in self._membership

    def __iter__(self):
        """Indices in FIFO order (for reports/tests, not the hot path)."""
        return iter(
            idx
            for _seq, idx in sorted(
                (seq, idx) for idx, seq in self._membership.items()
            )
        )

    # -- mutation ------------------------------------------------------
    def add(self, index: int) -> None:
        """Enqueue a map index (idempotent, like the guarded appends)."""
        if index in self._membership:
            return
        seq = next(self._seq)
        self._membership[index] = seq
        entry = (seq, index)
        heapq.heappush(self._all, entry)
        for node in self._locations[index]:
            heapq.heappush(self._by_node.setdefault(node, []), entry)
        for rack in self._racks[index]:
            heapq.heappush(self._by_rack.setdefault(rack, []), entry)

    def _pop_valid(self, heap: list[tuple[int, int]] | None) -> int | None:
        """Pop stale entries; pop and return the first live index."""
        if heap is None:
            return None
        while heap:
            seq, index = heap[0]
            if self._membership.get(index) != seq:
                heapq.heappop(heap)  # launched or re-enqueued since
                continue
            heapq.heappop(heap)
            return index
        return None

    def pick_for(self, node: str) -> tuple[int, str] | None:
        """Dequeue the best-locality pending map for ``node``."""
        if not self._membership:
            return None
        index = self._pop_valid(self._by_node.get(node))
        if index is not None:
            del self._membership[index]
            return index, "node_local"
        if node in self._topology:
            rack = self._topology.rack_of(node)
            index = self._pop_valid(self._by_rack.get(rack))
            if index is not None:
                del self._membership[index]
                return index, "rack_local"
        index = self._pop_valid(self._all)
        assert index is not None  # membership non-empty ⇒ live global head
        del self._membership[index]
        return index, "off_rack"


class SchedulerStrategy:
    """Job-ordering policy consulted on every assignment round."""

    name = "base"
    #: True if the strategy wants per-user running-attempt loads
    #: computed at the start of each heartbeat wave.
    needs_loads = False

    def wave_loads(
        self, active: "dict[int, RunningJob]"
    ) -> dict[str, int] | None:
        return None

    def job_order(
        self,
        candidates: "list[tuple[int, RunningJob]]",
        loads: dict[str, int] | None,
    ) -> "list[RunningJob]":
        raise NotImplementedError


class FifoScheduler(SchedulerStrategy):
    """Submission order — the historical policy, bit-identical."""

    name = "fifo"

    def job_order(self, candidates, loads):
        return [job for _seq, job in candidates]


class FairScheduler(SchedulerStrategy):
    """Equal per-user shares with optional hard quota caps.

    Users are ordered by current running-attempt count (fewest first,
    name tie-break), their jobs FIFO within each user.  A user at or
    above their quota cap is skipped for this round entirely — capacity
    flows to the others, which is what stops one tenant's 500-job
    deadline binge from starving everyone else.
    """

    name = "fair"
    needs_loads = True

    def __init__(self, quotas: dict[str, int] | None = None):
        self.quotas = dict(quotas or {})

    def wave_loads(self, active):
        loads: dict[str, int] = {}
        for seq in sorted(active):
            job = active[seq]
            user = job.conf.user
            loads[user] = loads.get(user, 0) + job.active_attempts
        return loads

    def job_order(self, candidates, loads):
        loads = loads or {}
        by_user: dict[str, list] = {}
        for _seq, job in candidates:  # already FIFO by seq
            by_user.setdefault(job.conf.user, []).append(job)
        ordered: list = []
        for user in sorted(by_user, key=lambda u: (loads.get(u, 0), u)):
            cap = self.quotas.get(user)
            if cap is not None and loads.get(user, 0) >= cap:
                continue  # over quota: nothing this round
            ordered.extend(by_user[user])
        return ordered


def make_scheduler(name: str, quotas: dict[str, int] | None = None):
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        return FairScheduler(quotas)
    raise ConfigError(f"unknown scheduler {name!r} (want 'fifo' or 'fair')")
