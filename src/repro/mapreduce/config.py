"""Job and framework configuration (the interesting ``mapred-site.xml``)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ConfigError
from repro.util.units import MB


@dataclass
class CostModel:
    """The timing model that turns executed work into simulated seconds.

    Values are calibrated to 2012-era commodity hardware so that the
    *shapes* the paper reports (serial half-hour jobs, order-of-magnitude
    side-file penalties, minutes-long cluster runs) come out at realistic
    magnitudes.  Absolute numbers are not the reproduction target.
    """

    #: JVM/task launch overhead, seconds (Hadoop 1 pays this per task).
    task_startup: float = 1.0
    #: CPU cost per record through map() or reduce().
    cpu_per_record: float = 10e-6
    #: CPU cost per input byte (parsing, decompression).
    cpu_per_byte: float = 4e-9
    #: Cost of one in-memory sort comparison.
    sort_per_record: float = 1.5e-6
    #: Seconds per side-file byte when a mapper re-reads an auxiliary
    #: file (open + stream, no caching).
    side_read_per_byte: float = 12e-9
    #: Per side-file open overhead (NameNode RPC + connection setup).
    side_open_overhead: float = 0.05

    def cpu_time(self, records: int, nbytes: int) -> float:
        return records * self.cpu_per_record + nbytes * self.cpu_per_byte

    def sort_time(self, records: int) -> float:
        if records <= 1:
            return 0.0
        # records * log2(records) comparisons, roughly.
        import math

        return records * math.log2(records) * self.sort_per_record


@dataclass
class MapReduceConfig:
    """Framework-level settings shared by all jobs on a cluster."""

    map_slots_per_tracker: int = 2
    reduce_slots_per_tracker: int = 2
    tasktracker_heartbeat: float = 3.0
    #: Heartbeats missed before the JobTracker declares a tracker lost.
    tracker_miss_limit: int = 10
    #: io.sort.mb — map output buffer before spilling to local disk.
    sort_buffer_bytes: int = 100 * MB
    #: Simulated per-task JVM heap (the thing student jobs leaked).
    task_heap_bytes: int = 200 * MB
    #: Where task attempts' *real* work runs: ``None`` inherits the
    #: process-wide default (see ``repro.mapreduce.backend``), else one
    #: of "serial", "pooled" (process pool), "pooled-threads".
    execution_backend: str | None = None
    #: Pool size for pooled backends; 0 means one worker per host CPU.
    backend_workers: int = 0
    #: How pooled task payloads/results cross the process boundary:
    #: "framed" packs Writable pairs into binary wire blobs
    #: (``repro.mapreduce.wire``) — one ``bytes`` per partition instead
    #: of per-record pickled objects; "object" keeps the historical
    #: pickled-list transport; "shm" frames and then publishes the
    #: blobs into shared-memory segments (``repro.mapreduce.shm``) so
    #: only (segment, offset, length) descriptors cross the pool —
    #: zero-copy on the reduce side.  Results are bit-identical in all
    #: three (property-tested); shm is just fastest.  Serial backends
    #: never frame — nothing crosses a process boundary.
    shuffle_transport: str = "framed"
    #: Segment arena for ``shuffle_transport="shm"``: "posix"
    #: (``multiprocessing.shared_memory``), "file" (mmap-backed temp
    #: files, the spill-run mechanism), or "auto" (posix where the host
    #: has it, else file).
    shm_arena: str = "auto"
    #: Map outputs below this many payload bytes stay framed instead of
    #: getting their own segment (segment create/attach has fixed cost;
    #: tiny outputs ship cheaper through the pipe).  0 publishes all.
    shm_min_bytes: int = 0
    #: Map-side external-sort threshold: when a map task emits more
    #: than this many records, its sort spills IFile-style sorted runs
    #: to host-local disk and heap-merges them (bounding the in-memory
    #: sort working set), instead of one big in-memory sort.  ``None``
    #: disables spilling (the historical behaviour).
    spill_record_limit: int | None = None
    #: Transient shuffle-fetch retries before a reduce escalates to
    #: ``map_output_lost`` (Hadoop: mapreduce.reduce.shuffle.maxfetchfailures).
    shuffle_fetch_retries: int = 3
    #: Exponential-backoff base delay between shuffle-fetch retries, seconds.
    shuffle_retry_base: float = 1.0
    #: Backoff ceiling, seconds.
    shuffle_retry_max: float = 20.0
    #: Jitter fraction applied to each backoff delay (0 = none).
    shuffle_retry_jitter: float = 0.25
    #: Run the runtime sanitizer (``repro.analysis.sanitizer``) around
    #: user task code: detect input mutation, emitted-object aliasing,
    #: and non-monoid combiners dynamically.  Violations surface in the
    #: job counters (group "Sanitizer"); clean runs are bit-identical
    #: to unsanitized runs.
    sanitize: bool = False
    #: Job-ordering policy: "fifo" (submission order, the historical
    #: behaviour, bit-identical) or "fair" (equal per-user shares of
    #: running attempts with optional ``user_quotas`` caps).
    scheduler: str = "fifo"
    #: Per-user cap on concurrently running task attempts, consulted by
    #: the fair scheduler only.  Users absent from the map are uncapped.
    user_quotas: dict[str, int] | None = None
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.map_slots_per_tracker < 1 or self.reduce_slots_per_tracker < 1:
            raise ConfigError("slot counts must be >= 1")
        if self.tasktracker_heartbeat <= 0:
            raise ConfigError("tasktracker_heartbeat must be positive")
        if self.backend_workers < 0:
            raise ConfigError("backend_workers must be >= 0")
        if self.shuffle_transport not in ("framed", "object", "shm"):
            raise ConfigError(
                f"shuffle_transport must be 'framed', 'object' or 'shm', "
                f"got {self.shuffle_transport!r}"
            )
        if self.shm_arena not in ("auto", "posix", "file"):
            raise ConfigError(
                f"shm_arena must be 'auto', 'posix' or 'file', "
                f"got {self.shm_arena!r}"
            )
        if self.shm_min_bytes < 0:
            raise ConfigError("shm_min_bytes must be >= 0")
        if self.spill_record_limit is not None and self.spill_record_limit < 1:
            raise ConfigError("spill_record_limit must be >= 1 (or None)")
        if self.shuffle_fetch_retries < 0:
            raise ConfigError("shuffle_fetch_retries must be >= 0")
        if self.shuffle_retry_base <= 0 or self.shuffle_retry_max <= 0:
            raise ConfigError("shuffle retry delays must be positive")
        if not (0.0 <= self.shuffle_retry_jitter <= 1.0):
            raise ConfigError("shuffle_retry_jitter must be in [0, 1]")
        if self.scheduler not in ("fifo", "fair"):
            raise ConfigError(
                f"scheduler must be 'fifo' or 'fair', got {self.scheduler!r}"
            )
        if self.user_quotas is not None and any(
            cap < 1 for cap in self.user_quotas.values()
        ):
            raise ConfigError("user_quotas entries must be >= 1")

    @property
    def tracker_timeout(self) -> float:
        return self.tasktracker_heartbeat * self.tracker_miss_limit


@dataclass
class JobConf:
    """Per-job configuration, Hadoop ``JobConf`` style."""

    name: str = "job"
    #: Submitting user — the fair scheduler's accounting key.
    user: str = "student"
    num_reduces: int = 1
    max_attempts: int = 4
    speculative_execution: bool = False
    #: Probability that any given task attempt triggers the simulated
    #: Java-heap leak (the paper's student-bug failure mode).  The
    #: classroom simulator sets this on "buggy" submissions.
    heap_leak_probability: float = 0.0
    #: When a heap leak fires, does it take the daemons down with it?
    #: (The paper: leaked heap "crashed the task tracker and data node
    #: daemons".)
    crash_daemons_on_heap_leak: bool = True
    #: Wall-clock (simulated) ceiling for one task attempt; exceeding it
    #: fails the attempt like Hadoop's mapred.task.timeout.  ``None``
    #: disables the check.
    task_timeout: float | None = None
    #: Free-form user parameters readable via ``context.get(...)``.
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_reduces < 1:
            raise ConfigError("num_reduces must be >= 1")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if not (0.0 <= self.heap_leak_probability <= 1.0):
            raise ConfigError("heap_leak_probability must be in [0, 1]")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigError("task_timeout must be positive (or None)")
