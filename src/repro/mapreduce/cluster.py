"""MapReduceCluster: HDFS + JobTracker + TaskTrackers, assembled.

The co-location is the point: every worker node runs *both* a DataNode
and a TaskTracker (Figure 1(b)), which is what makes node-local map
scheduling possible — and what lets one leaky student job take both
daemons down together (Section II.A).
"""

from __future__ import annotations

from repro.cluster.builder import HadoopHardware
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.config import HdfsConfig
from repro.mapreduce.api import Job
from repro.mapreduce.backend import ExecutionBackend, resolve_backend
from repro.mapreduce.blockio import BlockFetcher
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.job import JobReport, RunningJob
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.outputformat import TextOutputFormat
from repro.mapreduce.tasktracker import TaskTracker
from repro.util.errors import JobFailedError
from repro.util.rng import RngStream


class MapReduceCluster:
    """A complete Hadoop-1-style cluster ready to run jobs."""

    def __init__(
        self,
        hdfs: HdfsCluster | None = None,
        num_workers: int = 8,
        hdfs_config: HdfsConfig | None = None,
        mr_config: MapReduceConfig | None = None,
        hardware: HadoopHardware | None = None,
        seed: int = 0,
        backend: ExecutionBackend | None = None,
    ):
        self.hdfs = hdfs or HdfsCluster(
            hardware=hardware,
            num_datanodes=num_workers,
            config=hdfs_config,
            seed=seed,
        )
        self.sim = self.hdfs.sim
        self.mr_config = mr_config or MapReduceConfig()
        self.backend = resolve_backend(
            backend,
            self.mr_config.execution_backend,
            self.mr_config.backend_workers,
        )
        # The engine joins in-flight pooled work before the simulated
        # clock passes its submit time — the determinism barrier.
        self.sim.register_work_joiner(self.backend)
        self.rng = RngStream(seed=seed).child("mapreduce")
        self.fetcher = BlockFetcher(
            namenode=self.hdfs.namenode,
            dn_lookup=self.hdfs.datanode,
            network=self.hdfs.network,
        )
        self.jobtracker = JobTracker(
            sim=self.sim,
            topology=self.hdfs.topology,
            namenode=self.hdfs.namenode,
            fetcher=self.fetcher,
            mr_config=self.mr_config,
            output_client_factory=self._output_client,
            rng=self.rng.child("jobtracker"),
            backend=self.backend,
        )
        self.tasktrackers: dict[str, TaskTracker] = {}
        for node in self.hdfs.topology.nodes():
            tracker = TaskTracker(
                node=node,
                sim=self.sim,
                mr_config=self.mr_config,
                fetcher=self.fetcher,
                output_client_factory=self._output_client,
                rng=self.rng.child("tt", node.name),
                co_datanode=self.hdfs.datanodes.get(node.name),
                backend=self.backend,
            )
            tracker.start(self.jobtracker)
            self.tasktrackers[node.name] = tracker
        # NameNode-only outages (the namenode.crash fault) get the same
        # budget protection restart_cluster has always had: trackers
        # pause for the blackout and resume once recovery clears
        # safemode, so no attempt burns its failure budget on
        # SafeModeException while block reports trickle in.
        self.sim.bus.subscribe("hdfs.namenode.crashed", self._on_namenode_crashed)
        self.sim.bus.subscribe("hdfs.namenode.recovered", self._on_namenode_recovered)

    def close(self) -> None:
        """Join outstanding work and release backend resources (pools)."""
        self.backend.shutdown()

    def __enter__(self) -> "MapReduceCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _output_client(self, node: str | None):
        if node is not None and node not in self.hdfs.topology:
            node = None
        return self.hdfs.client(node=node, charge_time=False)

    def client(self, node: str | None = None):
        return self.hdfs.client(node=node)

    def shell(self, localfs=None):
        return self.hdfs.shell(localfs=localfs)

    # ------------------------------------------------------------------
    def submit(
        self, job: Job, input_paths: list[str] | str, output_path: str
    ) -> RunningJob:
        return self.jobtracker.submit_job(job, input_paths, output_path)

    def wait_for_job(
        self, running: RunningJob, timeout: float = 7 * 24 * 3600.0
    ) -> RunningJob:
        self.hdfs.wait_until(
            lambda: running.finished,
            timeout=timeout,
            step=self.mr_config.tasktracker_heartbeat,
        )
        return running

    def run_job(
        self,
        job: Job,
        input_paths: list[str] | str,
        output_path: str,
        timeout: float = 7 * 24 * 3600.0,
        require_success: bool = False,
    ) -> JobReport:
        """Submit, advance the simulation to completion, return the report."""
        running = self.submit(job, input_paths, output_path)
        self.wait_for_job(running, timeout=timeout)
        report = running.report()
        if require_success and not report.succeeded:
            raise JobFailedError(
                f"{report.job_id} ({report.name}) failed: {report.failure_reason}"
            )
        return report

    # ------------------------------------------------------------------
    def read_output(self, output_path: str) -> list[tuple[str, str]]:
        """Read and parse every ``part-*`` file of a finished job."""
        client = self._output_client(None)
        pairs: list[tuple[str, str]] = []
        for status in client.list_status(output_path):
            name = status.path.rsplit("/", 1)[-1]
            if status.is_dir or not name.startswith("part-"):
                continue
            pairs.extend(TextOutputFormat.parse(client.read_text(status.path)))
        return pairs

    def output_dict(self, output_path: str) -> dict[str, str]:
        return dict(self.read_output(output_path))

    # ------------------------------------------------------------------
    # failure / recovery conveniences
    def crash_worker(self, name: str) -> None:
        """Take a whole worker down: TaskTracker and DataNode together."""
        self.tasktrackers[name].crash()
        datanode = self.hdfs.datanodes.get(name)
        if datanode is not None and datanode.is_serving:
            datanode.crash()

    def restart_worker(self, name: str) -> float:
        tracker = self.tasktrackers[name]
        if not tracker.is_serving:
            tracker.start(self.jobtracker)
        return self.hdfs.restart_datanode(name)

    def live_trackers(self) -> list[str]:
        return sorted(
            name for name, tt in self.tasktrackers.items() if tt.is_serving
        )

    def restart_cluster(self) -> float:
        """The paper's "bounce everything" recovery, MapReduce included.

        TaskTrackers stop *first* (letting in-flight work land), HDFS
        restarts underneath (NameNode safemode + DataNode integrity
        scans), and trackers come back only after the NameNode leaves
        safemode — so no task attempt burns its failure budget on
        ``SafeModeException`` during the outage.  Returns the longest
        DataNode startup-scan time (the paper's "fifteen minutes").
        """
        for tracker in self.tasktrackers.values():
            if tracker.is_serving:
                tracker.stop()
        scan = self.hdfs.restart_cluster()
        self._resume_trackers_when_safe(start_delay=scan)
        return scan

    # -- NameNode-only outage ride-out ---------------------------------
    def _on_namenode_crashed(self, event) -> None:
        # Deferred one tick: the crash publishes from inside whatever
        # event killed the NameNode (often a heartbeat), and stopping
        # trackers reentrantly from a bus callback would mutate state
        # the in-flight event still holds.
        self.sim.schedule(0.0, self._pause_trackers)

    def _on_namenode_recovered(self, event) -> None:
        self._resume_trackers_when_safe()

    def _pause_trackers(self) -> None:
        if not self.hdfs.namenode.down:
            return  # recovered within the same tick; nothing to pause
        for tracker in self.tasktrackers.values():
            if tracker.is_serving:
                tracker.stop()

    def _resume_trackers_when_safe(self, start_delay: float | None = None) -> None:
        """Restart stopped trackers once the NameNode is up and out of
        safemode (shared by restart_cluster and NameNode recovery)."""

        def tick() -> None:
            namenode = self.hdfs.namenode
            if namenode.down or namenode.safemode.active:
                return
            for tracker in self.tasktrackers.values():
                if not tracker.is_serving and tracker.node.is_up:
                    tracker.start(self.jobtracker)
            cancel()

        cancel = self.sim.every(
            self.mr_config.tasktracker_heartbeat, tick, start_delay=start_delay
        )
