"""The user-facing MapReduce programming model.

This is the API the course's first assignment exercises *without any
cluster at all* — "develop and test MapReduce code on the standard Linux
command line interface without using a supporting HDFS/MapReduce
infrastructure" — and the second assignment reruns unchanged over HDFS.

A job is a :class:`Mapper` (required), an optional :class:`Reducer`, an
optional combiner (usually the reducer itself, or a custom class), and a
:class:`~repro.mapreduce.config.JobConf`.  User code interacts with the
framework only through the :class:`Context`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import Writable, wrap
from repro.util.errors import MapReduceError


class Context:
    """What the framework hands to ``setup``/``map``/``reduce``/``cleanup``.

    Notable teaching hooks:

    - :meth:`read_side_file` — stream an auxiliary file *every call*
      (the inefficient pattern the movie-genre assignment punishes);
    - :meth:`cached_side_file` — read once per node and reuse (the
      "Java object that reads the additional file once and stores the
      content in memory" pattern that is an order of magnitude faster);
    - :attr:`node_cache` — per-node shared memory surviving across tasks
      on the same TaskTracker, used by the third airline-delay variant
      ("global memory on each node to implement a combining mechanism
      without implementing a combiner class").
    """

    def __init__(
        self,
        conf: JobConf,
        counters: Counters,
        side_reader: Callable[[str], tuple[str, float]] | None = None,
        node_cache: dict[str, Any] | None = None,
        task_node: str | None = None,
        input_path: str | None = None,
    ):
        self.conf = conf
        self.counters = counters
        self.node_cache = node_cache if node_cache is not None else {}
        self.task_node = task_node
        #: The HDFS path of the split a map task is reading, None in
        #: reduce tasks.  Multi-input jobs (the sparklite/Hive planners'
        #: tagged-union joins) use it to pick the per-source mapper
        #: behaviour, like Hadoop's MultipleInputs/TaggedInputSplit.
        self.input_path = input_path
        self._side_reader = side_reader
        self._collected: list[tuple[Writable, Writable]] = []
        #: Simulated seconds of extra I/O charged by user-code helpers
        #: (side-file reads); folded into the task's duration.
        self.extra_time = 0.0

    # -- emission --------------------------------------------------------
    def write(self, key: Any, value: Any) -> None:
        """Emit one key/value pair (plain values are auto-wrapped)."""
        self._collected.append((wrap(key), wrap(value)))

    def drain(self) -> list[tuple[Writable, Writable]]:
        pairs, self._collected = self._collected, []
        return pairs

    # -- configuration & counters ----------------------------------------
    def get(self, param: str, default: Any = None) -> Any:
        """Read a job parameter (``JobConf.params``)."""
        return self.conf.params.get(param, default)

    def increment(self, counter: tuple[str, str], amount: int = 1) -> None:
        self.counters.increment(counter, amount)

    # -- side files --------------------------------------------------------
    def read_side_file(self, path: str) -> str:
        """Read an auxiliary file, paying full streaming cost this call."""
        if self._side_reader is None:
            raise MapReduceError(
                "no side-file reader configured for this job/runner"
            )
        text, elapsed = self._side_reader(path)
        self.extra_time += elapsed
        return text

    def cached_side_file(self, path: str) -> str:
        """Read an auxiliary file once per node, then serve from memory."""
        key = f"sidefile:{path}"
        if key not in self.node_cache:
            self.node_cache[key] = self.read_side_file(path)
        return self.node_cache[key]


class Mapper:
    """Override :meth:`map`; optionally :meth:`setup`/:meth:`cleanup`."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def map(self, key: Writable, value: Writable, context: Context) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class Reducer:
    """Override :meth:`reduce`; optionally :meth:`setup`/:meth:`cleanup`.

    Also the contract for combiners.  A combiner must be a *monoid*
    (associative, emits the same key) for the job's answer to be
    independent of how many times it runs — the property Lin's
    "Monoidify!" reading assigns, and which the property-based tests in
    this repository check mechanically.
    """

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def reduce(
        self, key: Writable, values: Iterable[Writable], context: Context
    ) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class Job:
    """A runnable MapReduce program: classes + configuration.

    Subclass and set the class attributes (the style of the course's
    ``main()``-with-``JobConf`` Java skeletons)::

        class WordCountJob(Job):
            mapper = TokenizerMapper
            reducer = SumReducer
            combiner = SumReducer
    """

    mapper: type[Mapper] | None = None
    reducer: type[Reducer] | None = None
    combiner: type[Reducer] | None = None
    #: Partitioner instance or None for the default hash partitioner.
    partitioner = None
    #: Input format class; None means TextInputFormat.
    input_format = None
    #: Declare True when the job's tasks read or mutate state shared
    #: across tasks — ``Context.node_cache``, ``read_side_file`` /
    #: ``cached_side_file`` — so parallel execution backends run its
    #: attempts inline (serial semantics) instead of on the pool, where
    #: per-node shared state and side-file cost accounting would not be
    #: reproduced bit-identically.  Side-file readers are simply absent
    #: on the pool, so an undeclared job fails loudly, not subtly.
    shares_node_state: bool = False

    def __init__(self, conf: JobConf | None = None, **params: Any):
        if self.mapper is None:
            raise MapReduceError(f"{type(self).__name__} defines no mapper")
        self.conf = conf or JobConf(name=type(self).__name__)
        self.conf.params.update(params)

    @property
    def name(self) -> str:
        return self.conf.name

    def describe(self) -> str:
        pieces = [f"mapper={self.mapper.__name__}"]
        if self.combiner is not None:
            pieces.append(f"combiner={self.combiner.__name__}")
        if self.reducer is not None:
            pieces.append(f"reducer={self.reducer.__name__}")
        pieces.append(f"reduces={self.conf.num_reduces}")
        return f"{self.name}({', '.join(pieces)})"
