"""Job counters — the "final MapReduce job report" the course reads.

The combiner lecture has students observe "the tradeoff between
increased map task run time ... versus reduced network traffic (observed
through final MapReduce job report)"; these counters are that report.
Names follow Hadoop 1.x so the output reads like the real thing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


class C:
    """Standard counter names (group, name), Hadoop-1 style."""

    MAP_INPUT_RECORDS = ("Map-Reduce Framework", "Map input records")
    MAP_OUTPUT_RECORDS = ("Map-Reduce Framework", "Map output records")
    MAP_OUTPUT_BYTES = ("Map-Reduce Framework", "Map output bytes")
    COMBINE_INPUT_RECORDS = ("Map-Reduce Framework", "Combine input records")
    COMBINE_OUTPUT_RECORDS = ("Map-Reduce Framework", "Combine output records")
    REDUCE_INPUT_GROUPS = ("Map-Reduce Framework", "Reduce input groups")
    REDUCE_INPUT_RECORDS = ("Map-Reduce Framework", "Reduce input records")
    REDUCE_OUTPUT_RECORDS = ("Map-Reduce Framework", "Reduce output records")
    REDUCE_SHUFFLE_BYTES = ("Map-Reduce Framework", "Reduce shuffle bytes")
    SPILLED_RECORDS = ("Map-Reduce Framework", "Spilled Records")

    HDFS_BYTES_READ = ("FileSystemCounters", "HDFS_BYTES_READ")
    HDFS_BYTES_WRITTEN = ("FileSystemCounters", "HDFS_BYTES_WRITTEN")
    FILE_BYTES_READ = ("FileSystemCounters", "FILE_BYTES_READ")
    FILE_BYTES_WRITTEN = ("FileSystemCounters", "FILE_BYTES_WRITTEN")

    # Runtime-sanitizer violations (MapReduceConfig.sanitize=True); zero
    # on a clean run, so the group is absent unless something is wrong.
    SANITIZER_INPUT_MUTATIONS = ("Sanitizer", "Input mutations")
    SANITIZER_EMIT_ALIASING = ("Sanitizer", "Emitted-object aliasing")
    SANITIZER_COMBINER_VIOLATIONS = ("Sanitizer", "Combiner contract violations")

    TOTAL_LAUNCHED_MAPS = ("Job Counters", "Launched map tasks")
    TOTAL_LAUNCHED_REDUCES = ("Job Counters", "Launched reduce tasks")
    DATA_LOCAL_MAPS = ("Job Counters", "Data-local map tasks")
    RACK_LOCAL_MAPS = ("Job Counters", "Rack-local map tasks")
    OFF_RACK_MAPS = ("Job Counters", "Off-rack map tasks")
    FAILED_MAPS = ("Job Counters", "Failed map tasks")
    FAILED_REDUCES = ("Job Counters", "Failed reduce tasks")
    KILLED_SPECULATIVE = ("Job Counters", "Killed speculative attempts")


def _group_counters() -> defaultdict:
    """One counter group.  Module-level so Counters instances pickle
    (a ``defaultdict`` pickles its factory by reference), which pooled
    execution backends rely on to ship task results between processes.
    """
    return defaultdict(int)


@dataclass
class Counters:
    """Hierarchical ``group -> name -> int`` counters."""

    _data: dict[str, dict[str, int]] = field(
        default_factory=lambda: defaultdict(_group_counters)
    )

    def increment(self, counter: tuple[str, str], amount: int = 1) -> None:
        group, name = counter
        self._data[group][name] += amount

    def get(self, counter: tuple[str, str]) -> int:
        group, name = counter
        return self._data.get(group, {}).get(name, 0)

    def set(self, counter: tuple[str, str], value: int) -> None:
        group, name = counter
        self._data[group][name] = value

    def groups(self) -> list[str]:
        return sorted(self._data)

    def items(self, group: str) -> list[tuple[str, int]]:
        return sorted(self._data.get(group, {}).items())

    def merge(self, other: "Counters") -> None:
        for group, names in other._data.items():
            for name, value in names.items():
                self._data[group][name] += value

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {g: dict(ns) for g, ns in self._data.items()}

    def render(self) -> str:
        """Render like the tail of a ``hadoop jar`` run."""
        lines = ["Counters:"]
        for group in self.groups():
            lines.append(f"  {group}")
            for name, value in self.items(group):
                lines.append(f"    {name}={value}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
