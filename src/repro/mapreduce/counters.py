"""Job counters — the "final MapReduce job report" the course reads.

The combiner lecture has students observe "the tradeoff between
increased map task run time ... versus reduced network traffic (observed
through final MapReduce job report)"; these counters are that report.
Names follow Hadoop 1.x so the output reads like the real thing.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field, fields


class C:
    """Standard counter names (group, name), Hadoop-1 style."""

    MAP_INPUT_RECORDS = ("Map-Reduce Framework", "Map input records")
    MAP_OUTPUT_RECORDS = ("Map-Reduce Framework", "Map output records")
    MAP_OUTPUT_BYTES = ("Map-Reduce Framework", "Map output bytes")
    COMBINE_INPUT_RECORDS = ("Map-Reduce Framework", "Combine input records")
    COMBINE_OUTPUT_RECORDS = ("Map-Reduce Framework", "Combine output records")
    REDUCE_INPUT_GROUPS = ("Map-Reduce Framework", "Reduce input groups")
    REDUCE_INPUT_RECORDS = ("Map-Reduce Framework", "Reduce input records")
    REDUCE_OUTPUT_RECORDS = ("Map-Reduce Framework", "Reduce output records")
    REDUCE_SHUFFLE_BYTES = ("Map-Reduce Framework", "Reduce shuffle bytes")
    SPILLED_RECORDS = ("Map-Reduce Framework", "Spilled Records")

    HDFS_BYTES_READ = ("FileSystemCounters", "HDFS_BYTES_READ")
    HDFS_BYTES_WRITTEN = ("FileSystemCounters", "HDFS_BYTES_WRITTEN")
    FILE_BYTES_READ = ("FileSystemCounters", "FILE_BYTES_READ")
    FILE_BYTES_WRITTEN = ("FileSystemCounters", "FILE_BYTES_WRITTEN")

    # Runtime-sanitizer violations (MapReduceConfig.sanitize=True); zero
    # on a clean run, so the group is absent unless something is wrong.
    SANITIZER_INPUT_MUTATIONS = ("Sanitizer", "Input mutations")
    SANITIZER_EMIT_ALIASING = ("Sanitizer", "Emitted-object aliasing")
    SANITIZER_COMBINER_VIOLATIONS = ("Sanitizer", "Combiner contract violations")

    TOTAL_LAUNCHED_MAPS = ("Job Counters", "Launched map tasks")
    TOTAL_LAUNCHED_REDUCES = ("Job Counters", "Launched reduce tasks")
    DATA_LOCAL_MAPS = ("Job Counters", "Data-local map tasks")
    RACK_LOCAL_MAPS = ("Job Counters", "Rack-local map tasks")
    OFF_RACK_MAPS = ("Job Counters", "Off-rack map tasks")
    FAILED_MAPS = ("Job Counters", "Failed map tasks")
    FAILED_REDUCES = ("Job Counters", "Failed reduce tasks")
    KILLED_SPECULATIVE = ("Job Counters", "Killed speculative attempts")


def _group_counters() -> defaultdict:
    """One counter group.  Module-level so Counters instances pickle
    (a ``defaultdict`` pickles its factory by reference), which pooled
    execution backends rely on to ship task results between processes.
    """
    return defaultdict(int)


@dataclass
class Counters:
    """Hierarchical ``group -> name -> int`` counters."""

    _data: dict[str, dict[str, int]] = field(
        default_factory=lambda: defaultdict(_group_counters)
    )

    def increment(self, counter: tuple[str, str], amount: int = 1) -> None:
        group, name = counter
        self._data[group][name] += amount

    def get(self, counter: tuple[str, str]) -> int:
        group, name = counter
        return self._data.get(group, {}).get(name, 0)

    def set(self, counter: tuple[str, str], value: int) -> None:
        group, name = counter
        self._data[group][name] = value

    def groups(self) -> list[str]:
        return sorted(self._data)

    def items(self, group: str) -> list[tuple[str, int]]:
        return sorted(self._data.get(group, {}).items())

    def merge(self, other: "Counters") -> None:
        for group, names in other._data.items():
            for name, value in names.items():
                self._data[group][name] += value

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {g: dict(ns) for g, ns in self._data.items()}

    def render(self) -> str:
        """Render like the tail of a ``hadoop jar`` run."""
        lines = ["Counters:"]
        for group in self.groups():
            lines.append(f"  {group}")
            for name, value in self.items(group):
                lines.append(f"    {name}={value}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


# ---------------------------------------------------------------------------
# Host-side performance attribution (NOT part of the job report).
#
# These numbers measure where *host wall-clock* goes in the framed
# shuffle transport (serialize, decode, merge, spill) so the benchmark
# can attribute its speedup.  They are deliberately kept outside
# :class:`Counters`: job counters are part of the deterministic,
# bit-identical-across-backends contract, and wall-clock timings (and
# transport-specific byte tallies) would break both the run-to-run and
# the framed-vs-object equality the property tests assert.


def _perf_clock() -> float:
    """Host wall-clock for PerfStats attribution.

    The sole sanctioned wall-clock read in this package: values feed
    host-side profiling output only, never simulated time, counters, or
    any other deterministic state.
    """
    return time.perf_counter()  # repro: lint-ok[MRE102] host-side profiling; result never reaches simulated state


@dataclass
class PerfStats:
    """Per-stage host timings and byte tallies for the shuffle transport.

    ``Perf.map_serialize_ms`` / ``shuffle_decode_ms`` / ``merge_ms`` are
    the stage breakdown the parallelism benchmark reports; the byte
    fields compare the framed codec against what pickling the same
    pairs would have cost.
    """

    #: Framing map output partitions into wire blobs (worker-side).
    map_serialize_ms: float = 0.0
    #: Framing reduce output for the trip back (worker-side).
    reduce_serialize_ms: float = 0.0
    #: Decoding fetched map-output blobs on the reduce side.
    shuffle_decode_ms: float = 0.0
    #: K-way merging the decoded (pre-sorted) per-map streams.
    merge_ms: float = 0.0
    #: Writing + reading spill runs during external map-side sorts.
    spill_ms: float = 0.0
    #: Total wire-blob bytes produced by the codec.
    bytes_framed: int = 0
    #: Bytes pickle would have used for the same payloads (filled by
    #: the benchmark, which prices both; 0 when not measured).
    bytes_pickled: int = 0
    #: Blobs encoded / decoded.
    blobs_encoded: int = 0
    blobs_decoded: int = 0
    #: Spill runs written by external sorts.
    spill_runs: int = 0
    #: Shuffle-plane shared memory: bytes published into segments.
    shm_bytes: int = 0
    #: Segments created (one per published map output).
    segments_created: int = 0
    #: First-time attaches (per process; cache hits don't count).
    segments_attached: int = 0
    #: Blob bytes decoded straight from a shared view instead of being
    #: pickled/copied across the pool — the zero-copy win.
    copy_avoided_bytes: int = 0
    #: HDFS data-path sidecar (merged from per-DataNode BlockCache
    #: tallies by benchmarks — the hdfs package stays import-free of
    #: mapreduce, so it never writes these itself).
    hdfs_cache_hits: int = 0
    hdfs_cache_misses: int = 0
    hdfs_cache_evictions: int = 0

    def merge(self, other: "PerfStats | dict") -> None:
        data = other.as_dict() if isinstance(other, PerfStats) else other
        for name, value in data.items():
            if value:
                setattr(self, name, getattr(self, name) + value)

    def as_dict(self) -> dict[str, float | int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, float | int]:
        """Freeze the current tallies (for :meth:`delta_since`)."""
        return self.as_dict()

    def delta_since(self, snapshot: dict[str, float | int]) -> dict:
        """What accumulated since ``snapshot`` — the per-stage rollup
        the workload planners record for each compiled stage.  Only
        fields that moved are included, so rollups stay readable."""
        out: dict[str, float | int] = {}
        for name, value in self.as_dict().items():
            moved = value - snapshot.get(name, 0)
            if moved:
                out[name] = moved
        return out

    def render(self) -> str:
        lines = ["Perf (host-side, non-deterministic):"]
        for name, value in self.as_dict().items():
            if isinstance(value, float):
                lines.append(f"  {name}={value:.3f}")
            else:
                lines.append(f"  {name}={value}")
        return "\n".join(lines)


#: Process-wide accumulator: runner/tracker callbacks merge each task's
#: worker-side PerfStats into this after the work resolves.
PERF = PerfStats()


def perf_stats() -> PerfStats:
    """The process-wide host-side transport timing accumulator."""
    return PERF
