"""Output formats: rendering reduce output into ``part-NNNNN`` files."""

from __future__ import annotations

from repro.mapreduce.types import NullWritable, Text, Writable


class TextOutputFormat:
    """``key<TAB>value`` lines, Hadoop's default."""

    SEPARATOR = "\t"

    @classmethod
    def format_pair(cls, key: Writable, value: Writable) -> str:
        if isinstance(key, NullWritable):
            return value.encode()
        if isinstance(value, NullWritable):
            return key.encode()
        return f"{key.encode()}{cls.SEPARATOR}{value.encode()}"

    @classmethod
    def render(cls, pairs: list[tuple[Writable, Writable]]) -> str:
        if not pairs:
            return ""
        return "\n".join(cls.format_pair(k, v) for k, v in pairs) + "\n"

    @classmethod
    def parse_line(cls, line: str) -> tuple[str, str]:
        """Split an output line back into (key, value) strings."""
        tab = line.find(cls.SEPARATOR)
        if tab == -1:
            return line, ""
        return line[:tab], line[tab + 1 :]

    @classmethod
    def parse(cls, text: str) -> list[tuple[str, str]]:
        return [cls.parse_line(line) for line in text.splitlines() if line]


def part_file_name(partition: int) -> str:
    """Hadoop's reduce-output naming: ``part-00000``, ``part-00001``…"""
    return f"part-{partition:05d}"
