"""Input formats: from HDFS blocks to (key, value) records.

One input split per HDFS block — the mapping that makes data locality
*possible*: the JobTracker "assigns work and facilitates map/reduce on
TaskTrackers based on block location information from NameNode"
(Figure 2).  The line-reassembly logic at block boundaries is
implemented faithfully: a record that straddles two blocks is read by
the split owning its first byte, which fetches just enough of the next
block to finish the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.mapreduce.types import LongWritable, Text, Writable
from repro.util.errors import MapReduceError

#: ``fetch(path, block_index, max_bytes, offset=0) -> (data, elapsed_seconds)``.
#: Reads the range ``[offset, offset+max_bytes)`` of one block;
#: ``max_bytes=None`` reads from ``offset`` to the block's end, and
#: ``offset`` must default to 0 so whole-block callers can omit it.
#: Implementations charge the correct disk/network cost for the bytes
#: actually moved (ranged reads pay only for their range).
BlockFetch = Callable[..., tuple[bytes, float]]


@dataclass
class InputSplit:
    """One unit of map-task work: a single block of one file."""

    path: str
    block_index: int
    start_offset: int  # byte offset of this block within the file
    length: int
    locations: tuple[str, ...] = ()  # DataNodes holding the block
    is_first: bool = True
    is_last: bool = True

    @property
    def split_id(self) -> str:
        return f"{self.path}:{self.block_index}"


@dataclass
class FetchStats:
    """I/O accounting for one map task's input."""

    bytes_read: int = 0
    elapsed: float = 0.0


@dataclass
class PrefetchedSplit:
    """One split's input bytes, fully fetched and boundary-trimmed.

    Produced by :meth:`TextInputFormat.prefetch` in the simulation
    thread (where block fetches may touch DataNode/network state) and
    consumed by :meth:`TextInputFormat.parse_records` anywhere — in
    particular inside a pooled execution backend's worker, which must
    not call back into simulation state.
    """

    data: bytes
    position: int  # byte offset of data[0] within the file


class TextInputFormat:
    """Lines as records: key = byte offset (LongWritable), value = Text.

    The format is split into an I/O half (:meth:`prefetch` — every
    ``fetch`` call, boundary-line reassembly, byte/second accounting)
    and a CPU half (:meth:`parse_records` — record iteration over the
    prefetched bytes).  :meth:`read_records` composes the two; parallel
    execution backends run them on different threads of control.
    Formats overriding :meth:`read_records` wholesale should set
    ``supports_prefetch = False`` so backends fall back to inline
    execution.
    """

    supports_prefetch = True

    @staticmethod
    def splits_for_file(
        path: str, block_lengths: list[int], locations: list[tuple[str, ...]]
    ) -> list[InputSplit]:
        """Build splits from a file's block layout."""
        if len(block_lengths) != len(locations):
            raise MapReduceError("block_lengths and locations length mismatch")
        splits = []
        offset = 0
        for index, (length, locs) in enumerate(zip(block_lengths, locations)):
            splits.append(
                InputSplit(
                    path=path,
                    block_index=index,
                    start_offset=offset,
                    length=length,
                    locations=tuple(locs),
                    is_first=(index == 0),
                    is_last=(index == len(block_lengths) - 1),
                )
            )
            offset += length
        return splits

    # ------------------------------------------------------------------
    @classmethod
    def read_records(
        cls, split: InputSplit, fetch: BlockFetch, stats: FetchStats | None = None
    ) -> Iterator[tuple[Writable, Writable]]:
        """Yield ``(LongWritable offset, Text line)`` for one split."""
        stats = stats if stats is not None else FetchStats()
        yield from cls.parse_records(cls.prefetch(split, fetch, stats))

    @classmethod
    def prefetch(
        cls, split: InputSplit, fetch: BlockFetch, stats: FetchStats
    ) -> PrefetchedSplit:
        """Perform all of this split's block I/O; return the raw bytes."""
        data, elapsed = fetch(split.path, split.block_index, None)
        stats.bytes_read += len(data)
        stats.elapsed += elapsed

        position = split.start_offset
        if not split.is_first:
            # The first (possibly partial) line belongs to the previous
            # split, which reads past its end to finish it.
            newline = data.find(b"\n")
            if newline == -1:
                # Entire block is the middle of one huge line: no
                # records, and (matching the historical fetch pattern)
                # no continuation read either.
                return PrefetchedSplit(data=b"", position=position)
            position += newline + 1
            data = data[newline + 1 :]

        if not split.is_last:
            data += cls._read_continuation(split, fetch, stats)
        return PrefetchedSplit(data=data, position=position)

    @classmethod
    def parse_records(
        cls, prefetched: PrefetchedSplit
    ) -> Iterator[tuple[Writable, Writable]]:
        """CPU half: iterate records over already-fetched bytes."""
        data = prefetched.data
        position = prefetched.position
        start = 0
        while start < len(data):
            end = data.find(b"\n", start)
            if end == -1:
                line = data[start:]
                consumed = len(data) - start
            else:
                line = data[start:end]
                consumed = end - start + 1
            if line or end != -1:
                yield (
                    LongWritable(position),
                    Text(line.decode("utf-8", errors="replace")),
                )
            position += consumed
            start += consumed

    #: Bytes fetched per probe while completing a boundary-straddling line.
    CONTINUATION_CHUNK = 8 * 1024

    @classmethod
    def _read_continuation(
        cls, split: InputSplit, fetch: BlockFetch, stats: FetchStats
    ) -> bytes:
        """Read from the next block(s) until the trailing line completes.

        Probes are *ranged*: each deeper probe resumes at the offset
        where the last one ended, so a long boundary line never re-reads
        block prefixes it already holds (the redundancy the historical
        prefix-read fetch paid).  A line can span any number of whole
        blocks.
        """
        pieces: list[bytes] = []
        block_index = split.block_index + 1
        while block_index - split.block_index <= 4096:  # defensive bound
            offset = 0
            budget = cls.CONTINUATION_CHUNK
            while True:
                try:
                    chunk, elapsed = fetch(split.path, block_index, budget, offset)
                except IndexError:
                    return b"".join(pieces)  # no further blocks
                chunk = bytes(chunk)  # ranged fetches may hand back views
                stats.bytes_read += len(chunk)
                stats.elapsed += elapsed
                if not chunk:
                    if offset == 0:
                        return b"".join(pieces)  # zero-length block
                    block_index += 1
                    break  # block ended exactly at the probe boundary
                newline = chunk.find(b"\n")
                if newline != -1:
                    pieces.append(chunk[: newline + 1])
                    return b"".join(pieces)
                pieces.append(chunk)
                offset += len(chunk)
                if len(chunk) < budget:
                    # Block exhausted mid-line: move to the next block.
                    block_index += 1
                    break
                # Line longer than the probe: continue where we stopped.
                budget *= 4
        raise MapReduceError(
            f"unterminated record spanning blocks in {split.path}"
        )


class KeyValueTextInputFormat(TextInputFormat):
    """Lines of ``key<TAB>value``: key = Text before the first tab."""

    @classmethod
    def parse_records(
        cls, prefetched: PrefetchedSplit
    ) -> Iterator[tuple[Writable, Writable]]:
        for _offset, line in TextInputFormat.parse_records(prefetched):
            text = line.value
            tab = text.find("\t")
            if tab == -1:
                yield Text(text), Text("")
            else:
                yield Text(text[:tab]), Text(text[tab + 1 :])
